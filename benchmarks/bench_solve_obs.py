"""EXP-OBS: traced-solve smoke benchmark and perf record.

Runs one Solver 1 solve of a 48-variable LP with a recording tracer
attached, round-trips the trace through the JSONL sink, and checks
that replaying the spans/counters reconciles *exactly* with the
result's :class:`~repro.core.result.CrossbarCounters` and iteration
count.  With ``REPRO_BENCH_OUT`` set, the trace, the Prometheus
snapshot, and a machine-readable ``BENCH_*.json`` perf record land in
that directory (CI uploads them as artifacts).
"""

import numpy as np
import pytest

from repro.analysis import reconcile_with_counters, span_totals
from repro.core.crossbar_solver import CrossbarPDIPSolver
from repro.core.result import SolveStatus
from repro.obs import (
    RecordingTracer,
    read_trace_jsonl,
    write_metrics_textfile,
    write_trace_jsonl,
)
from repro.workloads import random_feasible_lp

from conftest import bench_out_dir


@pytest.mark.benchmark(group="observability")
def test_traced_solve_reconciles(benchmark, perf_record, tmp_path):
    problem = random_feasible_lp(
        48, 48, rng=np.random.default_rng(2016)
    )
    tracer = RecordingTracer()

    def run():
        solver = CrossbarPDIPSolver(
            problem, rng=np.random.default_rng(7), tracer=tracer
        )
        return solver.solve()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.status is SolveStatus.OPTIMAL

    out = bench_out_dir() or tmp_path
    trace_path = write_trace_jsonl(tracer, out / "trace.jsonl")
    write_metrics_textfile(tracer, out / "metrics.prom")

    # The acceptance check: the on-disk trace replays to totals that
    # reconcile exactly with the solver's own counters.
    events = read_trace_jsonl(trace_path)
    rows = reconcile_with_counters(events, result)
    mismatched = [row.name for row in rows if not row.matches]
    assert not mismatched, mismatched

    totals = span_totals(events)
    perf_record.update(
        {
            "bench": "traced_solve_48",
            "constraints": int(problem.A.shape[0]),
            "variables": int(problem.A.shape[1]),
            "status": result.status.value,
            "iterations": result.iterations,
            "elapsed_seconds": result.elapsed_seconds,
            "reconciled": True,
            "spans": {
                name: {"calls": calls, "seconds": seconds}
                for name, (calls, seconds) in sorted(totals.items())
            },
        }
    )
