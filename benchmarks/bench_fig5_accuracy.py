"""FIG5a / FIG5b: accuracy of the crossbar solvers vs software truth.

Regenerates the series of Fig. 5: mean relative error of the optimal
value against scipy (the Matlab-linprog stand-in), for every
(constraint count, variation) cell, for Solver 1 (Fig. 5a) and
Solver 2 (Fig. 5b).  Shape targets from the paper:

- inaccuracy between ~0.2% and ~10% across the sweep;
- errors grow with variation at fixed size;
- both solvers stay reliable ("can always give a reliable optimal
  solution") — here: the large majority of trials return OPTIMAL.
"""

import pytest

from repro.experiments import accuracy_sweep, render_accuracy


def _run(solver, config):
    rows = accuracy_sweep(solver, config)
    print()
    print(f"=== Fig. 5 ({solver}) ===")
    print(render_accuracy(rows))
    return rows


@pytest.mark.benchmark(group="fig5-accuracy")
def test_fig5a_solver1_accuracy(benchmark, sweep_config):
    rows = benchmark.pedantic(
        _run, args=("crossbar", sweep_config), rounds=1, iterations=1
    )
    solved = sum(row.solved for row in rows)
    attempted = sum(row.trials for row in rows)
    assert solved >= 0.8 * attempted
    errors = [row.error.mean for row in rows if row.error.count]
    assert max(errors) < 0.15          # paper band: up to ~10%
    benchmark.extra_info["mean_error"] = float(
        sum(errors) / len(errors)
    )


@pytest.mark.benchmark(group="fig5-accuracy")
def test_fig5b_solver2_accuracy(benchmark, sweep_config):
    rows = benchmark.pedantic(
        _run, args=("large_scale", sweep_config), rounds=1, iterations=1
    )
    solved = sum(row.solved for row in rows)
    attempted = sum(row.trials for row in rows)
    assert solved >= 0.8 * attempted
    errors = [row.error.mean for row in rows if row.error.count]
    assert max(errors) < 0.15
    benchmark.extra_info["mean_error"] = float(
        sum(errors) / len(errors)
    )


@pytest.mark.benchmark(group="fig5-accuracy")
def test_fig5_variation_trend(benchmark, small_sweep_config):
    """Errors must grow with the variation level at fixed size."""

    def run():
        return accuracy_sweep("crossbar", small_sweep_config)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by_size = {}
    for row in rows:
        by_size.setdefault(row.constraints, {})[
            row.variation_percent
        ] = row.error.mean
    grew = sum(
        1
        for cells in by_size.values()
        if cells[max(cells)] > cells[min(cells)]
    )
    assert grew >= len(by_size) / 2
