"""Microbenchmarks of the analog primitives.

Measures the *simulator's* wall-clock for the three primitives —
multiply, solve, O(N) coefficient update — across array sizes.  These
are the operations whose *modeled hardware* costs are O(1), O(1), and
O(N); the simulator itself pays O(N^2), O(N^3), O(N), which is what
the timings here show.  The modeled-cost assertions live in the cost
model; this bench guards the simulator's own scalability.
"""

import numpy as np
import pytest

from repro.crossbar import AnalogMatrixOperator
from repro.devices import YAKOPCIC_NAECON14


def make_operator(n, seed=0):
    rng = np.random.default_rng(seed)
    matrix = rng.uniform(0.1, 1.0, size=(n, n)) + np.eye(n)
    return (
        AnalogMatrixOperator(
            matrix,
            params=YAKOPCIC_NAECON14,
            rng=rng,
            scale_headroom=2.0,
        ),
        rng,
    )


@pytest.mark.benchmark(group="ops-multiply")
@pytest.mark.parametrize("n", [64, 256])
def test_multiply(benchmark, n):
    op, rng = make_operator(n)
    x = rng.uniform(-1, 1, size=n)
    y = benchmark(op.multiply, x)
    assert y.shape == (n,)


@pytest.mark.benchmark(group="ops-solve")
@pytest.mark.parametrize("n", [64, 256])
def test_solve(benchmark, n):
    op, rng = make_operator(n)
    b = rng.uniform(-1, 1, size=n)
    x = benchmark(op.solve, b)
    assert x.shape == (n,)


@pytest.mark.benchmark(group="ops-update")
@pytest.mark.parametrize("n", [64, 256])
def test_diagonal_update(benchmark, n):
    op, rng = make_operator(n)
    idx = np.arange(n)

    def update():
        values = rng.uniform(0.5, 1.5, size=n)
        op.update_coefficients(
            idx, idx, values, floor_to_representable=True
        )

    benchmark(update)
    assert op.write_report.cells_written > 0
