"""EXP-ITER: iteration counts and detection iterations.

Section 4.3-4.5 discuss how process variation affects iteration
counts (Solver 1's latency grows with variation through iterations;
Solver 2's constant-step iteration count barely moves).  This bench
regenerates those series plus the infeasibility-detection iteration
counts.
"""

import numpy as np
import pytest

from repro.core import (
    SolveStatus,
    solve_crossbar,
    solve_crossbar_large_scale,
)
from repro.experiments import (
    accuracy_sweep,
    infeasibility_sweep,
    render_accuracy,
    render_infeasibility,
)
from repro.workloads import random_feasible_lp


@pytest.mark.benchmark(group="iterations")
def test_iteration_counts_by_variation(benchmark, small_sweep_config):
    def run():
        s1 = accuracy_sweep("crossbar", small_sweep_config)
        s2 = accuracy_sweep("large_scale", small_sweep_config)
        print()
        print("=== iteration counts (Solver 1) ===")
        print(render_accuracy(s1))
        print("=== iteration counts (Solver 2) ===")
        print(render_accuracy(s2))
        return s1, s2

    s1_rows, s2_rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for row in s1_rows + s2_rows:
        if row.iterations.count:
            assert row.iterations.mean < 300

    # Solver 2 (small split arrays + capped-constant step) uses fewer
    # iterations than Solver 1 at the same cells in most cells.
    wins = sum(
        1
        for r1, r2 in zip(s1_rows, s2_rows)
        if r1.iterations.count
        and r2.iterations.count
        and r2.iterations.mean <= r1.iterations.mean
    )
    assert wins >= len(s1_rows) / 2


def _steady_state_cells(trace):
    """Median per-iteration cell writes from a cumulative-counter trace."""
    cumulative = [record.cells_written for record in trace]
    diffs = np.diff(cumulative)
    return float(np.median(diffs)) if diffs.size else 0.0


@pytest.mark.benchmark(group="hotpath")
def test_hotpath_cells_per_iteration_scale_linearly(benchmark, perf_record):
    """The PR's hard perf gate: steady-state per-iteration writes are
    O(N) on both solvers (the paper's Section 3.5 claim), asserted on
    the ``crossbar.cells_written`` counters of a medium LP solve.

    Each iteration rewrites only diagonal cells: 2(n+m) on Solver 1's
    augmented array, n+m on each of Solver 2's M2/D diagonals — never
    the O(N²) structural blocks.  Remap/rescale events may exceed the
    per-iteration bound occasionally, which is why the gate is on the
    *median* (steady state), with a small multiple for headroom.
    """
    m = 48
    problem = random_feasible_lp(m, rng=np.random.default_rng(5))
    n = problem.A.shape[1]

    def run():
        r1 = solve_crossbar(
            problem, rng=np.random.default_rng(7), trace=True
        )
        r2 = solve_crossbar_large_scale(
            problem, rng=np.random.default_rng(7), trace=True
        )
        return r1, r2

    r1, r2 = benchmark.pedantic(run, rounds=1, iterations=1)
    assert r1.status is SolveStatus.OPTIMAL
    assert r2.status is SolveStatus.OPTIMAL

    # Solver 1: trace counters cover the one augmented array.
    s1_cells = _steady_state_cells(r1.trace)
    assert 0 < s1_cells <= 2 * (n + m)
    # Solver 2: trace counters cover the M2 diagonal array.
    s2_cells = _steady_state_cells(r2.trace)
    assert 0 < s2_cells <= n + m

    perf_record.update(
        constraints=m,
        variables=n,
        s1_elapsed_seconds=r1.elapsed_seconds,
        s1_iterations=r1.iterations,
        s1_cells_written=r1.crossbar.cells_written,
        s1_cells_per_iteration_median=s1_cells,
        s1_cells_bound=2 * (n + m),
        s2_elapsed_seconds=r2.elapsed_seconds,
        s2_iterations=r2.iterations,
        s2_cells_written=r2.crossbar.cells_written,
        s2_cells_per_iteration_median=s2_cells,
        s2_cells_bound=n + m,
    )


@pytest.mark.benchmark(group="iterations")
def test_detection_iterations(benchmark, small_sweep_config):
    def run():
        rows = infeasibility_sweep("crossbar", small_sweep_config)
        print()
        print("=== infeasibility detection ===")
        print(render_infeasibility(rows))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    total = sum(row.trials for row in rows)
    detected = sum(row.detected for row in rows)
    assert detected >= 0.75 * total
    for row in rows:
        if row.iterations.count:
            # Detection is fast: well under the iteration cap.
            assert row.iterations.mean < 100
