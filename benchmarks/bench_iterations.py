"""EXP-ITER: iteration counts and detection iterations.

Section 4.3-4.5 discuss how process variation affects iteration
counts (Solver 1's latency grows with variation through iterations;
Solver 2's constant-step iteration count barely moves).  This bench
regenerates those series plus the infeasibility-detection iteration
counts.
"""

import pytest

from repro.experiments import (
    accuracy_sweep,
    infeasibility_sweep,
    render_accuracy,
    render_infeasibility,
)


@pytest.mark.benchmark(group="iterations")
def test_iteration_counts_by_variation(benchmark, small_sweep_config):
    def run():
        s1 = accuracy_sweep("crossbar", small_sweep_config)
        s2 = accuracy_sweep("large_scale", small_sweep_config)
        print()
        print("=== iteration counts (Solver 1) ===")
        print(render_accuracy(s1))
        print("=== iteration counts (Solver 2) ===")
        print(render_accuracy(s2))
        return s1, s2

    s1_rows, s2_rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for row in s1_rows + s2_rows:
        if row.iterations.count:
            assert row.iterations.mean < 300

    # Solver 2 (small split arrays + capped-constant step) uses fewer
    # iterations than Solver 1 at the same cells in most cells.
    wins = sum(
        1
        for r1, r2 in zip(s1_rows, s2_rows)
        if r1.iterations.count
        and r2.iterations.count
        and r2.iterations.mean <= r1.iterations.mean
    )
    assert wins >= len(s1_rows) / 2


@pytest.mark.benchmark(group="iterations")
def test_detection_iterations(benchmark, small_sweep_config):
    def run():
        rows = infeasibility_sweep("crossbar", small_sweep_config)
        print()
        print("=== infeasibility detection ===")
        print(render_infeasibility(rows))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    total = sum(row.trials for row in rows)
    detected = sum(row.detected for row in rows)
    assert detected >= 0.75 * total
    for row in rows:
        if row.iterations.count:
            # Detection is fast: well under the iteration cap.
            assert row.iterations.mean < 100
