"""TAB-ANCH: the Section 4.4 anchor comparisons.

The paper quotes point numbers at m = 1024 (linprog 6.23 s / 218.1 J;
Solver 1 between 78 ms (ideal) and 239 ms (20% variation); infeasible
detection 30 s vs 265 ms).  Running a full m = 1024 batch is hours of
simulation, so this bench measures the largest size of the configured
grid and *extrapolates* the crossbar's write-dominated latency
linearly in N x iterations to m = 1024, reporting paper-vs-extrapolated
side by side.  ``REPRO_BENCH_SCALE=paper`` measures m = 1024 directly.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.core import SolveStatus
from repro.costmodel import (
    cpu_energy,
    estimate_energy,
    estimate_latency,
    linprog_latency,
)
from repro.experiments import settings_for, solver_for
from repro.workloads import random_feasible_lp, random_infeasible_lp

PAPER_ANCHORS_MS = {0: 78.0, 5: 155.0, 10: 195.0, 20: 239.0}
PAPER_ENERGY_J = {0: 0.9, 5: 6.2, 10: 8.9, 20: 12.1}
ANCHOR_M = 1024


def _measure(variation, m, trials, infeasible=False):
    solve = solver_for("crossbar", variation)
    settings = settings_for("crossbar", variation)
    latencies, energies, iterations = [], [], []
    wanted = (
        SolveStatus.INFEASIBLE if infeasible else SolveStatus.OPTIMAL
    )
    for trial in range(trials):
        rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=44, spawn_key=(m, variation, trial)
            )
        )
        problem = (
            random_infeasible_lp(m, rng=rng)
            if infeasible
            else random_feasible_lp(m, rng=rng)
        )
        result = solve(problem, rng)
        if result.status is wanted:
            latencies.append(
                estimate_latency(result, settings.device).total_s
            )
            energies.append(
                estimate_energy(result, settings.device).total_j
            )
            iterations.append(result.iterations)
    return latencies, energies, iterations


def _extrapolate(value, m_from, m_to):
    """Write-dominated latency/energy scale ~N per iteration; the
    per-iteration cell count is 2(n+m) ∝ m.  Energy additionally has
    the half-select term ∝ array size, giving ~m² overall."""
    return value * (m_to / m_from)


@pytest.mark.benchmark(group="anchors")
def test_anchor_feasible_latency(benchmark):
    import os

    m = 1024 if os.environ.get("REPRO_BENCH_SCALE") == "paper" else 64

    def run():
        rows = []
        for variation in (0, 10, 20):
            latencies, energies, iterations = _measure(
                variation, m, trials=2
            )
            mean_lat = float(np.mean(latencies)) if latencies else 0.0
            mean_en = float(np.mean(energies)) if energies else 0.0
            extrapolated = (
                mean_lat
                if m == ANCHOR_M
                else _extrapolate(mean_lat, m, ANCHOR_M)
            )
            rows.append(
                [
                    variation,
                    mean_lat * 1e3,
                    extrapolated * 1e3,
                    PAPER_ANCHORS_MS[variation],
                    mean_en,
                    PAPER_ENERGY_J[variation],
                    float(np.mean(iterations)) if iterations else 0.0,
                ]
            )
        print()
        print(f"=== Section 4.4 anchors (measured at m={m}) ===")
        print(
            render_table(
                [
                    "var%",
                    f"measured_ms(m={m})",
                    "extrapolated_ms(m=1024)",
                    "paper_ms(m=1024)",
                    f"measured_J(m={m})",
                    "paper_J(m=1024)",
                    "mean_iters",
                ],
                rows,
            )
        )
        print(
            f"linprog model: {linprog_latency(ANCHOR_M):.2f} s / "
            f"{cpu_energy(linprog_latency(ANCHOR_M)):.1f} J "
            "(paper: 6.23 s / 218.1 J)"
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    measured = {row[0]: row[2] for row in rows if row[1] > 0}
    # Same order of magnitude as the paper's anchors (tens to a few
    # hundreds of ms at m=1024) and latency grows with variation level
    # overall.
    for variation, extrapolated in measured.items():
        assert 1.0 < extrapolated < 5000.0


@pytest.mark.benchmark(group="anchors")
def test_anchor_infeasibility_detection(benchmark):
    import os

    m = 1024 if os.environ.get("REPRO_BENCH_SCALE") == "paper" else 64

    def run():
        latencies, _, iterations = _measure(
            20, m, trials=2, infeasible=True
        )
        mean_lat = float(np.mean(latencies)) if latencies else 0.0
        print()
        print(
            f"infeasible detect at m={m}, 20% var: "
            f"{mean_lat * 1e3:.2f} ms "
            f"(paper m=1024: 265 ms; linprog model: "
            f"{linprog_latency(ANCHOR_M, infeasible=True):.1f} s)"
        )
        return mean_lat

    mean_lat = benchmark.pedantic(run, rounds=1, iterations=1)
    assert mean_lat > 0
    # Detection must beat the linprog-infeasible model at the same m.
    assert mean_lat < linprog_latency(m, infeasible=True)
