"""FIG6a / FIG6b: estimated computation latency.

Regenerates Fig. 6: crossbar-solver latency (measured counters priced
with the device model) against the anchored Matlab-linprog and
PDIP-in-Matlab CPU models.  Shape targets from the paper:

- the crossbar solvers win at scale (26x-110x at m = 1024); at the
  scaled-down default grid the CPU's fixed overhead still dominates,
  so the check is that the speedup *grows with problem size*;
- crossbar latency grows roughly linearly in N per iteration (write-
  dominated), vs the CPU's cubic growth.
"""

import pytest

from repro.experiments import latency_sweep, render_latency


def _run(solver, config):
    rows = latency_sweep(solver, config)
    print()
    print(f"=== Fig. 6 ({solver}) ===")
    print(render_latency(rows))
    return rows


@pytest.mark.benchmark(group="fig6-latency")
def test_fig6a_solver1_latency(benchmark, sweep_config):
    rows = benchmark.pedantic(
        _run, args=("crossbar", sweep_config), rounds=1, iterations=1
    )
    for row in rows:
        if row.crossbar.count:
            assert row.crossbar.mean > 0
            assert row.pdip_matlab_s > row.linprog_s
    # Shape check: crossbar latency grows sub-cubically in m (write-
    # dominated ~N per iteration), so extrapolated to the paper's
    # m=1024 anchor it beats the cubic CPU model by a wide margin.
    zero_var = [r for r in rows if r.variation_percent == 0
                and r.crossbar.count]
    small, large = zero_var[0], zero_var[-1]
    size_ratio = large.constraints / small.constraints
    growth = large.crossbar.mean / small.crossbar.mean
    assert growth < size_ratio**2  # far below the CPU's cubic growth
    from repro.costmodel import linprog_latency

    # Linear-in-m extrapolation of the crossbar latency to m=1024.
    extrapolated = large.crossbar.mean * (1024 / large.constraints)
    assert linprog_latency(1024) / extrapolated > 10.0


@pytest.mark.benchmark(group="fig6-latency")
def test_fig6b_solver2_latency(benchmark, sweep_config):
    rows = benchmark.pedantic(
        _run,
        args=("large_scale", sweep_config),
        rounds=1,
        iterations=1,
    )
    solved = [r for r in rows if r.crossbar.count]
    assert solved
    for row in solved:
        assert row.crossbar.mean > 0


@pytest.mark.benchmark(group="fig6-latency")
def test_fig6_solver2_scales_better(benchmark, small_sweep_config):
    """Fig. 6(b) vs 6(a): the split solver's latency grows more slowly
    with problem size (smaller arrays, fewer iterations at scale)."""

    def run():
        s1 = latency_sweep("crossbar", small_sweep_config)
        s2 = latency_sweep("large_scale", small_sweep_config)
        return s1, s2

    s1_rows, s2_rows = benchmark.pedantic(run, rounds=1, iterations=1)
    s1_zero = [r for r in s1_rows if r.variation_percent == 0
               and r.crossbar.count]
    s2_zero = [r for r in s2_rows if r.variation_percent == 0
               and r.crossbar.count]
    assert len(s1_zero) >= 2 and len(s2_zero) >= 2
    s1_growth = s1_zero[-1].crossbar.mean / s1_zero[0].crossbar.mean
    s2_growth = s2_zero[-1].crossbar.mean / s2_zero[0].crossbar.mean
    assert s2_growth <= s1_growth * 1.5
