"""Shared benchmark configuration.

The paper's full grid (constraints to 1024, 100 trials per cell, four
variation levels) takes hours of simulation; the benchmark suite runs
a scaled-down grid by default so ``pytest benchmarks/
--benchmark-only`` completes in minutes while preserving every
figure's *shape* (who wins, how errors trend with size/variation).

Set ``REPRO_BENCH_SCALE=paper`` to run the full Section 4.2 grid.

Set ``REPRO_BENCH_OUT=<dir>`` to have benches that use the
``perf_record`` fixture drop machine-readable ``BENCH_<name>.json``
performance records (plus any trace/metrics artifacts) there — CI
uploads that directory.
"""

import json
import os
import pathlib

import pytest

from repro.experiments import SweepConfig, paper_scale


def bench_config() -> SweepConfig:
    """The sweep grid benchmarks run (env-switchable)."""
    if os.environ.get("REPRO_BENCH_SCALE") == "paper":
        return paper_scale()
    return SweepConfig(
        sizes=(8, 16, 32, 64),
        variations=(0, 5, 10, 20),
        trials=3,
    )


def quick_config() -> SweepConfig:
    """A minimal grid for the heavier per-cell experiments."""
    if os.environ.get("REPRO_BENCH_SCALE") == "paper":
        return paper_scale()
    return SweepConfig(sizes=(16, 48), variations=(0, 10), trials=3)


@pytest.fixture(scope="session")
def sweep_config():
    return bench_config()


@pytest.fixture(scope="session")
def small_sweep_config():
    return quick_config()


def bench_out_dir() -> pathlib.Path | None:
    """The artifact directory, or ``None`` when REPRO_BENCH_OUT unset."""
    out = os.environ.get("REPRO_BENCH_OUT")
    if not out:
        return None
    path = pathlib.Path(out)
    path.mkdir(parents=True, exist_ok=True)
    return path


@pytest.fixture
def perf_record(request):
    """Fill the yielded dict; it lands in BENCH_<test>.json on teardown.

    A no-op (the dict is discarded) when ``REPRO_BENCH_OUT`` is unset,
    so local runs leave no files behind.
    """
    record: dict = {}
    yield record
    out = bench_out_dir()
    if out is None or not record:
        return
    name = request.node.name.replace("/", "_")
    path = out / f"BENCH_{name}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
