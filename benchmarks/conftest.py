"""Shared benchmark configuration.

The paper's full grid (constraints to 1024, 100 trials per cell, four
variation levels) takes hours of simulation; the benchmark suite runs
a scaled-down grid by default so ``pytest benchmarks/
--benchmark-only`` completes in minutes while preserving every
figure's *shape* (who wins, how errors trend with size/variation).

Set ``REPRO_BENCH_SCALE=paper`` to run the full Section 4.2 grid.
"""

import os

import pytest

from repro.experiments import SweepConfig, paper_scale


def bench_config() -> SweepConfig:
    """The sweep grid benchmarks run (env-switchable)."""
    if os.environ.get("REPRO_BENCH_SCALE") == "paper":
        return paper_scale()
    return SweepConfig(
        sizes=(8, 16, 32, 64),
        variations=(0, 5, 10, 20),
        trials=3,
    )


def quick_config() -> SweepConfig:
    """A minimal grid for the heavier per-cell experiments."""
    if os.environ.get("REPRO_BENCH_SCALE") == "paper":
        return paper_scale()
    return SweepConfig(sizes=(16, 48), variations=(0, 10), trials=3)


@pytest.fixture(scope="session")
def sweep_config():
    return bench_config()


@pytest.fixture(scope="session")
def small_sweep_config():
    return quick_config()
