"""Shared benchmark configuration.

The paper's full grid (constraints to 1024, 100 trials per cell, four
variation levels) takes hours of simulation; the benchmark suite runs
a scaled-down grid by default so ``pytest benchmarks/
--benchmark-only`` completes in minutes while preserving every
figure's *shape* (who wins, how errors trend with size/variation).

Set ``REPRO_BENCH_SCALE=paper`` to run the full Section 4.2 grid.

Set ``REPRO_BENCH_OUT=<dir>`` to have benches that use the
``perf_record`` fixture drop machine-readable ``BENCH_<name>.json``
performance records (plus any trace/metrics artifacts) there — CI
uploads that directory.
"""

import json
import os
import pathlib
import time

import pytest

from repro.experiments import SweepConfig, paper_scale


def bench_config() -> SweepConfig:
    """The sweep grid benchmarks run (env-switchable)."""
    if os.environ.get("REPRO_BENCH_SCALE") == "paper":
        return paper_scale()
    return SweepConfig(
        sizes=(8, 16, 32, 64),
        variations=(0, 5, 10, 20),
        trials=3,
    )


def quick_config() -> SweepConfig:
    """A minimal grid for the heavier per-cell experiments."""
    if os.environ.get("REPRO_BENCH_SCALE") == "paper":
        return paper_scale()
    return SweepConfig(sizes=(16, 48), variations=(0, 10), trials=3)


@pytest.fixture(scope="session")
def sweep_config():
    return bench_config()


@pytest.fixture(scope="session")
def small_sweep_config():
    return quick_config()


def bench_out_dir() -> pathlib.Path | None:
    """The artifact directory, or ``None`` when REPRO_BENCH_OUT unset."""
    out = os.environ.get("REPRO_BENCH_OUT")
    if not out:
        return None
    path = pathlib.Path(out)
    path.mkdir(parents=True, exist_ok=True)
    return path


@pytest.fixture(autouse=True)
def perf_record(request):
    """Fill the yielded dict; it lands in BENCH_<test>.json on teardown.

    Autouse: *every* benchmark emits a record uniformly.  The fixture
    stamps the common envelope (bench name, benchmark group, fixture
    wall-clock, and — when the test used the ``benchmark`` fixture —
    its timing stats); tests add their own metrics on top.  A no-op
    (the dict is discarded) when ``REPRO_BENCH_OUT`` is unset, so
    local runs leave no files behind.
    """
    record: dict = {}
    bench = (
        request.getfixturevalue("benchmark")
        if "benchmark" in request.fixturenames
        else None
    )
    start = time.perf_counter()
    yield record
    out = bench_out_dir()
    if out is None:
        return
    record.setdefault("bench", request.node.name)
    marker = request.node.get_closest_marker("benchmark")
    if marker is not None and "group" in marker.kwargs:
        record.setdefault("group", marker.kwargs["group"])
    record.setdefault(
        "elapsed_seconds", round(time.perf_counter() - start, 6)
    )
    stats = getattr(getattr(bench, "stats", None), "stats", None)
    if stats is not None and stats.data:
        record.setdefault("wall_seconds_mean", float(stats.mean))
        record.setdefault("wall_seconds_min", float(stats.min))
        record.setdefault("rounds", len(stats.data))
    name = request.node.name.replace("/", "_")
    path = out / f"BENCH_{name}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
