"""Throughput of the batched analog engine vs. the serial loop.

The batched engine's reason to exist: evaluating a fleet of K
same-shape operators as one ``(K, n, m)`` tensor op instead of K
python-level round-trips.  This bench stands up a 16-member fleet of
64x64 operators twice — once as serial
:class:`~repro.crossbar.ops.AnalogMatrixOperator` instances, once as
one :class:`~repro.crossbar.opstack.AnalogOperatorStack` — and times
the composite PDIP fleet iteration (diagonal update + analog multiply
+ analog solve) plus each primitive on its own.

The recorded headline is the composite-iteration speedup; the
assertion gates at 2x (CI machines are noisy), while the local target
the engine was built against is 3x.
"""

import time

import numpy as np
import pytest

from repro.crossbar.ops import AnalogMatrixOperator
from repro.crossbar.opstack import AnalogOperatorStack
from repro.devices.variation import UniformVariation

K = 16
N = 64
ROUNDS = 30


def make_fleet():
    """K serial operators and one stack holding identical matrices."""
    gen = np.random.default_rng(7)
    matrices = gen.uniform(0.1, 1.0, size=(K, N, N)) + 2.0 * np.eye(N)
    serial = [
        AnalogMatrixOperator(
            matrices[k],
            variation=UniformVariation(0.05),
            rng=np.random.default_rng(100 + k),
        )
        for k in range(K)
    ]
    stack = AnalogOperatorStack(
        matrices,
        variation=UniformVariation(0.05),
        rngs=[np.random.default_rng(100 + k) for k in range(K)],
    )
    return serial, stack, gen


def timed(fn, rounds=ROUNDS):
    """Best-of-rounds wall-clock of ``fn`` (after one warmup call)."""
    fn()
    best = np.inf
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.benchmark(group="batched-engine")
def test_fleet_iteration_speedup(perf_record):
    serial, stack, gen = make_fleet()
    rows = np.arange(N)
    cols = np.arange(N)
    # Diagonal values below the initial coefficient peak, so neither
    # arm ever remaps mid-bench and both do identical work.
    values = gen.uniform(0.2, 0.9, size=(K, N))
    state = gen.uniform(-1.0, 1.0, size=(K, N))
    rhs = gen.uniform(-1.0, 1.0, size=(K, N))

    def serial_iteration():
        for k, op in enumerate(serial):
            op.update_coefficients(
                rows, cols, values[k], floor_to_representable=True
            )
            op.multiply(state[k])
            op.solve(rhs[k])

    def batched_iteration():
        stack.update_coefficients(
            rows, cols, values, floor_to_representable=True
        )
        stack.multiply(state)
        stack.solve(rhs)

    serial_s = timed(serial_iteration)
    batched_s = timed(batched_iteration)
    speedup = serial_s / batched_s

    perf_record.update(
        group="batched-engine",
        members=K,
        size=N,
        serial_iteration_us=round(serial_s * 1e6, 1),
        batched_iteration_us=round(batched_s * 1e6, 1),
        speedup=round(speedup, 2),
    )
    assert speedup >= 2.0, (
        f"batched fleet iteration only {speedup:.2f}x the serial loop "
        f"({batched_s * 1e6:.0f}us vs {serial_s * 1e6:.0f}us)"
    )


@pytest.mark.benchmark(group="batched-engine")
def test_primitive_speedups(perf_record):
    serial, stack, gen = make_fleet()
    rows = np.arange(N)
    cols = np.arange(N)
    values = gen.uniform(0.2, 0.9, size=(K, N))
    state = gen.uniform(-1.0, 1.0, size=(K, N))
    rhs = gen.uniform(-1.0, 1.0, size=(K, N))

    ratios = {}
    arms = {
        "update": (
            lambda: [
                op.update_coefficients(
                    rows, cols, values[k], floor_to_representable=True
                )
                for k, op in enumerate(serial)
            ],
            lambda: stack.update_coefficients(
                rows, cols, values, floor_to_representable=True
            ),
        ),
        "multiply": (
            lambda: [op.multiply(state[k]) for k, op in enumerate(serial)],
            lambda: stack.multiply(state),
        ),
        "solve": (
            lambda: [op.solve(rhs[k]) for k, op in enumerate(serial)],
            lambda: stack.solve(rhs),
        ),
    }
    for name, (serial_fn, batched_fn) in arms.items():
        serial_s = timed(serial_fn)
        batched_s = timed(batched_fn)
        ratios[name] = serial_s / batched_s
        perf_record[f"{name}_serial_us"] = round(serial_s * 1e6, 1)
        perf_record[f"{name}_batched_us"] = round(batched_s * 1e6, 1)
        perf_record[f"{name}_speedup"] = round(ratios[name], 2)
    perf_record.update(group="batched-engine", members=K, size=N)
    # Every primitive must at least break even; multiply is the
    # strongest (pure BLAS batching), solve the weakest (LAPACK is
    # already vectorized per member).
    assert all(ratio >= 1.0 for ratio in ratios.values()), ratios
