"""RESOLVE: warm parameter-streaming re-solves vs cold re-programming.

One benchmark: ``test_warm_resolve_stream_vs_cold`` runs the same
20-step rolling-horizon parameter stream (fixed constraint matrix,
drifting ``b``/``c``) through the solver service twice:

- **warm** — the re-solve tier as shipped: the structural program is
  paid once by the base job, every step lands on the pool member
  already holding the structure's fingerprint (zero programming-cell
  writes, counter-asserted) and warm-starts its interior-point
  iterates from the base optimum.
- **cold** — the control arm with the programming cache and warm
  starts disabled: every step re-programs the full array and runs the
  cold iteration trajectory, which is what a solver without the
  re-solve tier would pay.

Gates: warm re-solves write exactly **0** programming cells, and the
warm stream completes at least **3x** faster wall-clock than the cold
stream.  Drops a machine-readable ``BENCH_*.json`` perf record under
``REPRO_BENCH_OUT`` with the measured cells-saved figures.
"""

import pytest

from repro.obs.clock import Stopwatch
from repro.obs.tracer import RecordingTracer
from repro.service import ServiceConfig, SolverService
from repro.workloads import rolling_horizon_stream

STEPS = 20
CONSTRAINTS = 24
SEED = 13
DRIFT = 0.02


def run_stream(*, warm: bool):
    """One pass over the stream; returns (records, summary, tracer, s)."""
    tracer = RecordingTracer()
    service = SolverService(
        ServiceConfig(
            pool_size=1,
            base_seed=SEED,
            cache_enabled=warm,
            warm_start=warm,
        ),
        tracer=tracer,
    )
    _, specs = rolling_horizon_stream(
        STEPS, constraints=CONSTRAINTS, seed=SEED, drift=DRIFT
    )
    with Stopwatch() as clock:
        records, summary = service.batch(specs)
    assert summary.failed == 0
    assert len(records) == STEPS + 1
    return records, summary, tracer, clock.elapsed_seconds


@pytest.mark.benchmark(group="resolve")
def test_warm_resolve_stream_vs_cold(benchmark, perf_record):
    cold_records, _, cold_tracer, cold_s = run_stream(warm=False)

    def run():
        return run_stream(warm=True)

    records, summary, tracer, warm_s = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    resolves = [
        r for r in records if getattr(r.spec, "base_job_id", None)
    ]
    assert len(resolves) == STEPS

    # Gate 1: the warm tier pays zero programming cells per re-solve.
    resolve_program_cells = sum(
        attempt.program_cells
        for record in resolves
        for attempt in record.attempts
    )
    assert resolve_program_cells == 0, (
        f"warm re-solves wrote {resolve_program_cells} programming "
        f"cells; the re-solve tier must write none"
    )
    assert tracer.counters["service.resolve.program_cells"] == 0.0
    assert (
        tracer.counters["service.resolve.warm_placements"] == STEPS
    )

    # Gate 2: the warm stream is at least 3x faster wall-clock.
    speedup = cold_s / warm_s
    assert speedup >= 3.0, (
        f"warm stream only {speedup:.2f}x faster than cold "
        f"({warm_s:.3f}s vs {cold_s:.3f}s)"
    )

    # Cells the cold arm wrote for the same work (program + iteration
    # diagonals) vs the warm arm's iteration-only writes.
    warm_cells = tracer.counters["crossbar.cells_written"]
    cold_cells = cold_tracer.counters["crossbar.cells_written"]
    cold_program_cells = sum(
        attempt.program_cells
        for record in cold_records
        for attempt in record.attempts
        if getattr(record.spec, "base_job_id", None)
    )
    warm_iters = [
        r.result.iterations
        for r in records
        if getattr(r.spec, "base_job_id", None)
    ]
    cold_iters = [
        r.result.iterations
        for r in cold_records
        if getattr(r.spec, "base_job_id", None)
    ]
    perf_record.update(
        {
            "bench": "resolve_stream",
            "steps": STEPS,
            "constraints": CONSTRAINTS,
            "drift": DRIFT,
            "warm_elapsed_s": round(warm_s, 4),
            "cold_elapsed_s": round(cold_s, 4),
            "speedup": round(speedup, 2),
            "resolve_program_cells_warm": resolve_program_cells,
            "resolve_program_cells_cold": cold_program_cells,
            "cells_written_warm_total": warm_cells,
            "cells_written_cold_total": cold_cells,
            "cells_saved_fraction": 1.0 - warm_cells / cold_cells,
            "mean_iterations_warm": round(
                sum(warm_iters) / len(warm_iters), 2
            ),
            "mean_iterations_cold": round(
                sum(cold_iters) / len(cold_iters), 2
            ),
        }
    )
