"""EXP-ENGINE: serial vs parallel sweep engine benchmark.

Runs the accuracy sweep once inline (``workers=1``) and once through
the process pool (``workers=4``) on the benchmark grid, asserts the
two produce byte-identical rendered tables (the engine's determinism
contract), and records both wall-clock times plus the measured
speedup in a ``BENCH_*.json`` perf record.

The speedup is bounded by the host: on a single-core container the
pool adds fork overhead and the ratio sits near (or below) 1.0, while
on the 4-vCPU CI runners the embarrassingly parallel grid approaches
the worker count.  ``cpu_count`` is recorded alongside the timings so
the number can be judged in context.
"""

import os

import pytest

from repro.experiments import run_sweep
from repro.experiments.engine import resolve_spec
from repro.obs.clock import monotonic

from conftest import bench_config

WORKERS = 4


@pytest.mark.benchmark(group="sweep-engine")
def test_parallel_sweep_identical_and_timed(benchmark, perf_record):
    config = bench_config()
    spec = resolve_spec("accuracy")

    started = monotonic()
    serial = run_sweep("accuracy", "crossbar", config, workers=1)
    serial_s = monotonic() - started

    def run():
        return run_sweep(
            "accuracy", "crossbar", config, workers=WORKERS
        )

    parallel = benchmark.pedantic(run, rounds=1, iterations=1)
    parallel_s = parallel.elapsed_seconds

    # Determinism contract: rows and rendered tables are
    # byte-identical at any worker count.
    assert serial.rows == parallel.rows
    assert spec.render(serial.rows) == spec.render(parallel.rows)
    assert not serial.failures and not parallel.failures

    perf_record.update(
        {
            "bench": "sweep_engine_accuracy",
            "grid": {
                "sizes": list(config.sizes),
                "variations": list(config.variations),
                "trials": config.trials,
            },
            "cells": serial.executed,
            "workers": WORKERS,
            "cpu_count": os.cpu_count(),
            "serial_seconds": serial_s,
            "parallel_seconds": parallel_s,
            "speedup": serial_s / parallel_s if parallel_s else None,
            "identical_rows": True,
            "fingerprint": serial.fingerprint,
        }
    )
