"""EXP-PARASITICS: the IR-drop tile-size study.

Supports the Section 3.4 motivation for the NoC: one crossbar cannot
grow arbitrarily because wire IR drop corrupts the analog read-out.
Regenerates the error-vs-size-vs-wire-resistance table and the
maximum usable tile size under an error budget.
"""

import numpy as np
import pytest

from repro.experiments import (
    max_usable_tile,
    parasitics_sweep,
    render_parasitics,
)


@pytest.mark.benchmark(group="parasitics")
def test_ir_drop_tile_size_study(benchmark):
    def run():
        rows = parasitics_sweep(
            sizes=(8, 16, 32),
            wire_resistances=(0.5, 2.0, 5.0),
            samples=3,
            rng=np.random.default_rng(0),
        )
        print()
        print("=== IR-drop study (Section 3.4 motivation) ===")
        print(render_parasitics(rows))
        budget = max_usable_tile(rows, 0.02)
        print("max tile within 2% error budget:", budget)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # Error grows with both size and wire resistance.
    by_key = {
        (row.size, row.wire_resistance): row.ir_drop_error
        for row in rows
    }
    assert by_key[(32, 2.0)] > by_key[(8, 2.0)]
    assert by_key[(16, 5.0)] > by_key[(16, 0.5)]
    # The budget shrinks as wires worsen.
    budgets = max_usable_tile(rows, 0.02)
    assert budgets[0.5] >= budgets[5.0]
