"""SERVICE-CHAOS: fault-campaign benchmark of the resilience layer.

Runs the service benchmark batch (50 jobs / 5 structure groups) under
three seeded chaos scenarios — a stuck-cell storm, a member-death
wave, and a queue-saturation pulse train — and reports, per scenario:

- **success rate** (conclusive answers / jobs) and lost-job count
  (always asserted zero: admission-accepted jobs are never dropped);
- **latency** p50 / p99 over per-job ``elapsed_seconds`` (first
  dispatch to completion — wall-clock, so reported here and *not* in
  the deterministic JSONL records);
- **time-to-recover**: dispatch steps from the first chaos event until
  the service next completes ``RECOVER_RUN`` consecutive jobs without
  a requeue or fallback.

Also carries the resilience perf gate: with no faults, a service with
the full resilience stack enabled must write *exactly* as many
crossbar cells as one with breakers/degradation/backoff disabled —
the fault-tolerance wiring must cost nothing on the no-fault path.
"""

import pytest

from repro.obs.metrics import exact_quantile
from repro.obs.tracer import RecordingTracer
from repro.service import (
    FaultCampaign,
    FaultEvent,
    ServiceConfig,
    ServiceTelemetry,
    SolverService,
    synthesize_jobs,
)
from repro.service.resilience import stuck_storm

JOBS = 50
GROUPS = 5
POOL = 5
CONSTRAINTS = 12
RECOVER_RUN = 5


def scenario_stuck_storm() -> FaultCampaign:
    """One full-row stuck-OFF hit per pool member, staggered."""
    return FaultCampaign(
        stuck_storm(range(POOL), start=5, stride=3, row_fraction=1.0),
        name="stuck-storm",
        seed=7,
    )


def scenario_member_death() -> FaultCampaign:
    """Two members die permanently mid-batch."""
    return FaultCampaign(
        [
            FaultEvent(at_job=10, kind="member_death", member=1),
            FaultEvent(at_job=25, kind="member_death", member=3),
        ],
        name="member-death",
        seed=7,
    )


def scenario_queue_pulse() -> FaultCampaign:
    """Saturation pulses against a tight admission bound."""
    return FaultCampaign(
        [
            FaultEvent(
                at_job=at,
                kind="queue_pulse",
                jobs=6,
                constraints=CONSTRAINTS,
            )
            for at in (8, 24, 40)
        ],
        name="queue-pulse",
        seed=7,
    )


SCENARIOS = {
    "stuck_storm": scenario_stuck_storm,
    "member_death": scenario_member_death,
    "queue_pulse": scenario_queue_pulse,
}


def run_campaign(
    campaign: FaultCampaign | None,
    *,
    telemetry: ServiceTelemetry | None = None,
    **overrides,
):
    config = ServiceConfig(
        pool_size=POOL,
        queue_depth=16,
        base_seed=7,
        digital_fallback="reference",
        campaign=campaign,
        **overrides,
    )
    tracer = RecordingTracer()
    service = SolverService(config, tracer=tracer, telemetry=telemetry)
    specs = synthesize_jobs(JOBS, groups=GROUPS, constraints=CONSTRAINTS)
    records, summary = service.batch(specs)
    return service, specs, records, summary, tracer


def time_to_recover(campaign: FaultCampaign, records) -> int | None:
    """Dispatch steps from first chaos event to a clean-run streak.

    Records are in completion order, which for the serial scheduler is
    dispatch order; "recovered" means ``RECOVER_RUN`` consecutive jobs
    finished first-try (no requeue, no fallback) after the first event
    fired.  ``None`` means the batch ended before the streak.
    """
    first_event = min(e.at_job for e in campaign.events)
    streak = 0
    for position, record in enumerate(records):
        if position < first_event:
            continue
        if record.requeues == 0 and not record.fallback:
            streak += 1
            if streak >= RECOVER_RUN:
                return position - first_event + 1
        else:
            streak = 0
    return None


@pytest.mark.benchmark(group="service-chaos")
@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_service_under_chaos(benchmark, perf_record, scenario):
    campaign = SCENARIOS[scenario]()

    def run():
        return run_campaign(campaign)

    service, specs, records, summary, tracer = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    # Zero lost jobs: every accepted job produced exactly one record.
    submitted = {spec.job_id for spec in specs}
    finished = [record.spec.job_id for record in records]
    assert submitted <= set(finished)
    assert len(finished) == len(set(finished))
    # The campaign fully fired (no events scheduled past the batch).
    assert campaign.fired == len(campaign)

    success_rate = summary.succeeded / summary.jobs
    assert success_rate >= 0.9  # fallback-backed: chaos never routs it

    latencies = [record.elapsed_seconds for record in records]
    recover = time_to_recover(campaign, records)
    record_fields = {
        "bench": f"service_chaos_{scenario}",
        "scenario": scenario,
        "jobs": JOBS,
        "chaos_events": len(campaign),
        "records": len(records),
        "success_rate": round(success_rate, 4),
        "requeues": summary.requeues,
        "fallbacks": summary.fallbacks,
        "retired_members": POOL - service.pool.active_members(),
        "latency_p50_ms": round(1e3 * exact_quantile(latencies, 0.50), 3),
        "latency_p99_ms": round(1e3 * exact_quantile(latencies, 0.99), 3),
        "energy_j": summary.energy_j,
        "time_to_recover_jobs": recover,
        "breaker_opens": tracer.counters.get("pool.breaker.opened", 0),
        "degradation_sheds": tracer.counters.get(
            "service.degradation.sheds", 0
        ),
        "jobs_per_second": summary.jobs_per_second,
    }
    # Schema guard: downstream tooling greps these exact keys, so the
    # shared-quantile swap must not rename or drop any of them.
    assert {
        "bench", "scenario", "jobs", "chaos_events", "records",
        "success_rate", "requeues", "fallbacks", "retired_members",
        "latency_p50_ms", "latency_p99_ms", "time_to_recover_jobs",
        "breaker_opens", "degradation_sheds", "jobs_per_second",
    } <= set(record_fields)
    perf_record.update(record_fields)


@pytest.mark.benchmark(group="service-chaos")
def test_resilience_no_fault_overhead(perf_record):
    """Perf gate: resilience + telemetry wiring is free of writes.

    The no-fault batch must write the identical number of crossbar
    cells with the full resilience stack (breakers, degradation,
    backoff — the defaults) as with all of it disabled; any extra
    write means the wiring leaked into the hot path.  A third arm
    attaches full live telemetry (registry + SLO + flight recorder) —
    observability must also cost zero cells.
    """
    _, _, _, on_summary, on_tracer = run_campaign(None)
    _, _, _, off_summary, off_tracer = run_campaign(
        None, breaker=None, degradation=None, backoff=None
    )
    telemetry = ServiceTelemetry()
    _, _, _, telem_summary, telem_tracer = run_campaign(
        None, telemetry=telemetry
    )
    on_cells = on_tracer.counters["crossbar.cells_written"]
    off_cells = off_tracer.counters["crossbar.cells_written"]
    telem_cells = telem_tracer.counters["crossbar.cells_written"]
    assert on_summary.failed == 0 and off_summary.failed == 0
    assert telem_summary.failed == 0
    assert on_cells == off_cells
    assert telem_cells == on_cells
    assert on_summary.cache_hit_rate == off_summary.cache_hit_rate
    assert telemetry.jobs == JOBS  # the hooks actually fired
    perf_record.update(
        {
            "bench": "resilience_no_fault_overhead",
            "jobs": JOBS,
            "cells_written_resilience_on": on_cells,
            "cells_written_resilience_off": off_cells,
            "cells_written_telemetry_on": telem_cells,
            "cache_hit_rate": on_summary.cache_hit_rate,
        }
    )
