"""ABL-*: ablations of the design choices DESIGN.md calls out.

- ABL-LITERAL   — the literal Eqns. 16c/17a/17b (constant coupling,
  paper rhs, uncoupled recovery, constant step) against the functional
  defaults: demonstrates the divergence analyzed in
  ``repro.core.scalable_system``.
- ABL-QUANT     — per-entry vs per-vector 8-bit quantization, and bit
  depths 4/6/8/12/ideal.
- ABL-OFFSTATE  — 1T1R zero off-state vs leaky passive array (with and
  without dummy-row compensation).
- ABL-DELTA     — centering parameter delta.
- ABL-RETRY     — value of the paper's "double checking scheme".
- ABL-RELIABILITY — recovery-ladder rungs under stuck-at faults:
  retry-only (the paper's scheme) vs probe+remap vs the full ladder
  with a digital fallback.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.baselines import solve_scipy
from repro.core import (
    CrossbarSolverSettings,
    ScalableSolverSettings,
    SolveStatus,
    solve_crossbar,
    solve_crossbar_large_scale,
)
from repro.devices import UniformVariation
from repro.workloads import random_feasible_lp

TRIALS = 4
SIZE = 24


def _problems():
    rng = np.random.default_rng(99)
    problems = [random_feasible_lp(SIZE, rng=rng) for _ in range(TRIALS)]
    truths = [solve_scipy(p).objective for p in problems]
    return problems, truths


def _score(solve_fn, problems, truths):
    solved, errors = 0, []
    for i, (problem, truth) in enumerate(zip(problems, truths)):
        result = solve_fn(problem, np.random.default_rng(1000 + i))
        if result.status is SolveStatus.OPTIMAL:
            solved += 1
            errors.append(abs(result.objective - truth) / abs(truth))
    mean_error = float(np.mean(errors)) if errors else float("nan")
    return solved, mean_error


@pytest.mark.benchmark(group="ablations")
def test_abl_literal_paper_equations(benchmark):
    problems, truths = _problems()

    def run():
        rows = []
        configs = [
            ("functional (default)", ScalableSolverSettings(retries=0)),
            (
                "literal 16c/17a/17b",
                ScalableSolverSettings(
                    coupling="constant",
                    rhs_mode="paper",
                    recovery="paper",
                    step_policy="constant",
                    retries=0,
                ),
            ),
            (
                "paper rhs only",
                ScalableSolverSettings(rhs_mode="paper", retries=0),
            ),
            (
                "uncoupled recovery only",
                ScalableSolverSettings(recovery="paper", retries=0),
            ),
        ]
        for label, settings in configs:
            solved, mean_error = _score(
                lambda p, rng, s=settings: solve_crossbar_large_scale(
                    p, s, rng=rng
                ),
                problems,
                truths,
            )
            rows.append([label, f"{solved}/{TRIALS}", mean_error])
        print()
        print("=== ABL-LITERAL: Solver 2 equation variants ===")
        print(render_table(["variant", "solved", "mean_rel_err"], rows))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    default_solved = int(rows[0][1].split("/")[0])
    literal_solved = int(rows[1][1].split("/")[0])
    assert default_solved >= TRIALS - 1
    assert literal_solved < default_solved  # the printed equations fail


@pytest.mark.benchmark(group="ablations")
def test_abl_quantization(benchmark):
    problems, truths = _problems()

    def run():
        rows = []
        for label, bits in (
            ("4-bit", 4),
            ("6-bit", 6),
            ("8-bit (paper)", 8),
            ("12-bit", 12),
            ("ideal", None),
        ):
            settings = CrossbarSolverSettings(
                dac_bits=bits, adc_bits=bits
            )
            solved, mean_error = _score(
                lambda p, rng, s=settings: solve_crossbar(p, s, rng=rng),
                problems,
                truths,
            )
            rows.append([label, f"{solved}/{TRIALS}", mean_error])
        print()
        print("=== ABL-QUANT: converter resolution ===")
        print(render_table(["bits", "solved", "mean_rel_err"], rows))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    errors = {row[0]: row[2] for row in rows if row[2] == row[2]}
    assert errors["ideal"] <= errors["8-bit (paper)"] + 1e-6
    assert errors["8-bit (paper)"] <= errors["4-bit"] + 1e-6


@pytest.mark.benchmark(group="ablations")
def test_abl_off_state(benchmark):
    problems, truths = _problems()

    def run():
        rows = []
        for label, overrides in (
            ("1T1R zero (default)", dict(off_state="zero")),
            ("leaky passive", dict(off_state="leak")),
        ):
            settings = CrossbarSolverSettings(**overrides)
            solved, mean_error = _score(
                lambda p, rng, s=settings: solve_crossbar(p, s, rng=rng),
                problems,
                truths,
            )
            rows.append([label, f"{solved}/{TRIALS}", mean_error])
        print()
        print("=== ABL-OFFSTATE: array technology ===")
        print(render_table(["mode", "solved", "mean_rel_err"], rows))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # Both technologies must solve; exact error ordering may vary.
    for row in rows:
        assert int(row[1].split("/")[0]) >= TRIALS - 1


@pytest.mark.benchmark(group="ablations")
def test_abl_centering_delta(benchmark):
    problems, truths = _problems()

    def run():
        rows = []
        for delta in (0.05, 0.1, 0.3, 0.6):
            settings = CrossbarSolverSettings(delta=delta)
            solved, mean_error = _score(
                lambda p, rng, s=settings: solve_crossbar(p, s, rng=rng),
                problems,
                truths,
            )
            rows.append([delta, f"{solved}/{TRIALS}", mean_error])
        print()
        print("=== ABL-DELTA: centering parameter ===")
        print(render_table(["delta", "solved", "mean_rel_err"], rows))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    solved_counts = [int(row[1].split("/")[0]) for row in rows]
    assert max(solved_counts) >= TRIALS - 1


@pytest.mark.benchmark(group="ablations")
def test_abl_stuck_at_faults(benchmark):
    """Extension study: hard faults on top of soft variation.

    Solve rate degrades gracefully with fault rate; the retry scheme
    (fresh physical mapping per attempt) recovers most failures at
    realistic (sub-percent) rates.
    """
    from repro.devices import YAKOPCIC_NAECON14, StuckAtFaults

    problems, truths = _problems()

    def run():
        rows = []
        for rate in (0.0, 0.001, 0.005, 0.02):
            settings = CrossbarSolverSettings(
                variation=StuckAtFaults(
                    YAKOPCIC_NAECON14,
                    stuck_off_rate=rate,
                    base=UniformVariation(0.05),
                ),
                retries=4,
            )
            solved, mean_error = _score(
                lambda p, rng, s=settings: solve_crossbar(p, s, rng=rng),
                problems,
                truths,
            )
            rows.append([rate, f"{solved}/{TRIALS}", mean_error])
        print()
        print("=== ABL-FAULTS: stuck-at fault rate ===")
        print(
            render_table(
                ["stuck_off_rate", "solved", "mean_rel_err"], rows
            )
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    fault_free = int(rows[0][1].split("/")[0])
    assert fault_free >= TRIALS - 1
    worst = int(rows[-1][1].split("/")[0])
    assert worst <= fault_free


@pytest.mark.benchmark(group="ablations")
def test_abl_retry_scheme(benchmark):
    # Under heavy variation, retries rescue runs that stall (the
    # paper's "double checking scheme", Section 4.5).
    problems, truths = _problems()

    def run():
        rows = []
        for retries in (0, 2):
            settings = CrossbarSolverSettings(
                variation=UniformVariation(0.2), retries=retries
            )
            solved, mean_error = _score(
                lambda p, rng, s=settings: solve_crossbar(p, s, rng=rng),
                problems,
                truths,
            )
            rows.append([retries, f"{solved}/{TRIALS}", mean_error])
        print()
        print("=== ABL-RETRY: double checking scheme ===")
        print(render_table(["retries", "solved", "mean_rel_err"], rows))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    no_retry = int(rows[0][1].split("/")[0])
    with_retry = int(rows[1][1].split("/")[0])
    assert with_retry >= no_retry


@pytest.mark.benchmark(group="ablations")
def test_abl_reliability_ladder(benchmark):
    """Recovery-ladder rungs under 2% stuck-OFF faults.

    The paper's retry scheme alone leaves a fraction of runs failed;
    probing + remapping recovers more, and the full ladder with a
    digital fallback terminates every run.
    """
    from repro.core import CrossbarPDIPSolver
    from repro.devices import YAKOPCIC_NAECON14, StuckAtFaults
    from repro.reliability import ProbePolicy, RecoveryPolicy

    problems, truths = _problems()
    settings = CrossbarSolverSettings(
        variation=StuckAtFaults(
            YAKOPCIC_NAECON14,
            stuck_off_rate=0.02,
            base=UniformVariation(0.05),
        ),
    )
    ladders = [
        (
            "retry-only (paper 4.5)",
            RecoveryPolicy(reprograms=2, remaps=0, probe=None),
        ),
        (
            "probe + remap",
            RecoveryPolicy(reprograms=2, remaps=2, probe=ProbePolicy()),
        ),
        (
            "full ladder + fallback",
            RecoveryPolicy(
                reprograms=2,
                remaps=2,
                probe=ProbePolicy(),
                digital_fallback="scipy",
            ),
        ),
    ]

    def run():
        rows = []
        for label, policy in ladders:
            solved, mean_error = _score(
                lambda p, rng, pol=policy: CrossbarPDIPSolver(
                    p, settings, rng=rng, recovery=pol
                ).solve(),
                problems,
                truths,
            )
            rows.append([label, f"{solved}/{TRIALS}", mean_error])
        print()
        print("=== ABL-RELIABILITY: recovery ladder rungs ===")
        print(render_table(["ladder", "solved", "mean_rel_err"], rows))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    retry_only = int(rows[0][1].split("/")[0])
    full = int(rows[2][1].split("/")[0])
    assert full >= retry_only
    assert full == TRIALS  # the fallback terminates every run
