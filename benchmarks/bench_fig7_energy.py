"""FIG7a / FIG7b: estimated energy consumption.

Regenerates Fig. 7: crossbar-solver energy (measured counters priced
with the device model) against the CPU models at the paper-implied
~35 W package power.  Shape targets: the crossbar wins at scale (24x
feasible / 113x infeasible / up to 273x for Solver 2 at m = 1024),
and the energy gain grows with problem size.
"""

import pytest

from repro.experiments import energy_sweep, render_energy


def _run(solver, config):
    rows = energy_sweep(solver, config)
    print()
    print(f"=== Fig. 7 ({solver}) ===")
    print(render_energy(rows))
    return rows


@pytest.mark.benchmark(group="fig7-energy")
def test_fig7a_solver1_energy(benchmark, sweep_config):
    rows = benchmark.pedantic(
        _run, args=("crossbar", sweep_config), rounds=1, iterations=1
    )
    solved = [r for r in rows if r.crossbar.count]
    assert solved
    for row in solved:
        assert row.crossbar.mean > 0
        assert row.linprog_j > 0
    # Crossbar energy at the benchmark grid stays far below the CPU's
    # at the same sizes.
    zero_var = [r for r in solved if r.variation_percent == 0]
    assert all(r.gain_vs_linprog > 1.0 for r in zero_var)


@pytest.mark.benchmark(group="fig7-energy")
def test_fig7b_solver2_energy(benchmark, sweep_config):
    rows = benchmark.pedantic(
        _run,
        args=("large_scale", sweep_config),
        rounds=1,
        iterations=1,
    )
    solved = [r for r in rows if r.crossbar.count]
    assert solved


@pytest.mark.benchmark(group="fig7-energy")
def test_fig7_solver2_more_efficient(benchmark, small_sweep_config):
    """The paper reports a larger average energy gain for Solver 2
    (273x vs 30x at scale)."""

    def run():
        s1 = energy_sweep("crossbar", small_sweep_config)
        s2 = energy_sweep("large_scale", small_sweep_config)
        return s1, s2

    s1_rows, s2_rows = benchmark.pedantic(run, rounds=1, iterations=1)
    wins = 0
    cells = 0
    for r1, r2 in zip(s1_rows, s2_rows):
        if r1.crossbar.count and r2.crossbar.count:
            cells += 1
            if r2.crossbar.mean < r1.crossbar.mean:
                wins += 1
    assert cells > 0
    assert wins >= cells / 2
