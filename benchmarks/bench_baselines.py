"""Complexity comparison of the solving substrates (Section 3.5).

The paper's complexity table: per PDIP iteration, a software direct
solve costs O(N^3), an iterative (Gauss-Seidel) sweep O(N^2), and the
crossbar O(N) (only the coefficient writes scale with N; the analog
evaluation is O(1)).  This bench measures the software baselines'
wall-clock scaling and the crossbar's *modeled* per-iteration cost
side by side.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.baselines import gauss_seidel, solve_simplex
from repro.costmodel import estimate_latency
from repro.experiments import settings_for, solver_for
from repro.workloads import random_feasible_lp


def dominant_system(rng, n):
    A = rng.uniform(-1, 1, size=(n, n))
    A += np.diag(np.abs(A).sum(axis=1) + 1.0)
    return A, rng.uniform(-1, 1, size=n)


@pytest.mark.benchmark(group="baselines-linear-solve")
@pytest.mark.parametrize("n", [64, 256])
def test_dense_lu_solve(benchmark, n):
    rng = np.random.default_rng(0)
    A, b = dominant_system(rng, n)
    x = benchmark(np.linalg.solve, A, b)
    np.testing.assert_allclose(A @ x, b, rtol=1e-8)


@pytest.mark.benchmark(group="baselines-linear-solve")
@pytest.mark.parametrize("n", [64, 256])
def test_gauss_seidel_solve(benchmark, n):
    rng = np.random.default_rng(0)
    A, b = dominant_system(rng, n)
    result = benchmark(gauss_seidel, A, b)
    assert result.converged


@pytest.mark.benchmark(group="baselines-simplex")
@pytest.mark.parametrize("m", [16, 48])
def test_simplex_scaling(benchmark, m):
    rng = np.random.default_rng(1)
    problem = random_feasible_lp(m, rng=rng)
    result = benchmark(solve_simplex, problem)
    assert result.is_optimal


@pytest.mark.benchmark(group="baselines-complexity")
def test_modeled_per_iteration_cost_is_linear(benchmark):
    """The crossbar's modeled per-iteration latency grows ~linearly in
    N (write-dominated), unlike the software baselines."""

    def run():
        rows = []
        for m in (16, 32, 64):
            solve = solver_for("crossbar", 0)
            settings = settings_for("crossbar", 0)
            problem = random_feasible_lp(
                m, rng=np.random.default_rng(m)
            )
            result = solve(problem, np.random.default_rng(0))
            breakdown = estimate_latency(result, settings.device)
            per_iteration = breakdown.total_s / max(result.iterations, 1)
            rows.append([m, result.iterations, per_iteration * 1e6])
        print()
        print("=== modeled crossbar per-iteration latency ===")
        print(render_table(["m", "iters", "per_iter_us"], rows))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # Quadrupling m must raise the per-iteration cost far less than a
    # cubic software solve would (64x): ~linear means <= ~10x.
    ratio = rows[-1][2] / rows[0][2]
    assert ratio < 16.0
