"""EXP-NOC: Fig. 3 architecture comparison.

The paper sketches hierarchical and mesh analog NoCs without measured
data; this bench generates the architectural comparison the figure
implies: communication cost of a tiled multiply under each topology as
the tile grid grows, plus tiled-vs-monolithic accuracy.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.devices import YAKOPCIC_NAECON14
from repro.noc import HierarchicalNoc, MeshNoc, TiledMatrixOperator


def run_tiled(n, tile, topology_cls, seed=0):
    rng = np.random.default_rng(seed)
    matrix = rng.uniform(0.1, 1.0, size=(n, n))
    grid = -(-n // tile)
    op = TiledMatrixOperator(
        matrix,
        tile,
        params=YAKOPCIC_NAECON14,
        rng=rng,
        topology=topology_cls(grid, grid),
    )
    x = rng.uniform(-1, 1, size=n)
    y = op.multiply(x)
    error = float(
        np.max(np.abs(y - matrix @ x)) / np.max(np.abs(matrix @ x))
    )
    return op, error


@pytest.mark.benchmark(group="noc")
def test_topology_comparison(benchmark):
    def run():
        rows = []
        for n in (32, 64, 128):
            for name, cls in (
                ("mesh", MeshNoc),
                ("hierarchical", HierarchicalNoc),
            ):
                op, error = run_tiled(n, 16, cls)
                rows.append(
                    [
                        name,
                        n,
                        op.n_tiles,
                        op.noc_transfers,
                        op.noc_latency_s * 1e9,
                        op.noc_energy_j * 1e12,
                        error,
                    ]
                )
        print()
        print("=== Fig. 3 NoC comparison (one tiled multiply) ===")
        print(
            render_table(
                [
                    "topology",
                    "N",
                    "tiles",
                    "transfers",
                    "latency_ns",
                    "energy_pJ",
                    "rel_err",
                ],
                rows,
            )
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # Accuracy is preserved under tiling regardless of topology.
    for row in rows:
        assert row[-1] < 0.02
    # The hierarchy's log-diameter beats the mesh's linear diameter on
    # the largest grid.
    mesh_large = [r for r in rows if r[0] == "mesh" and r[1] == 128][0]
    hier_large = [
        r for r in rows if r[0] == "hierarchical" and r[1] == 128
    ][0]
    assert hier_large[4] <= mesh_large[4]


@pytest.mark.benchmark(group="noc")
def test_tiled_multiply_scales(benchmark):
    op, _ = run_tiled(128, 16, MeshNoc)
    x = np.random.default_rng(1).uniform(-1, 1, size=128)
    y = benchmark(op.multiply, x)
    assert y.shape == (128,)
