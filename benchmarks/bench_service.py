"""SERVICE: throughput and programming-cache benchmark.

Runs the same 50-job / 5-group batch through the solver service twice
— cache enabled and cache disabled (every placement cold) — asserts
the cache measurably reduces ``crossbar.cells_written``, and records
jobs/sec, the cache hit rate, and the measured write saving in a
``BENCH_*.json`` perf record (dropped under ``REPRO_BENCH_OUT``).
"""

import pytest

from repro.obs.metrics import exact_quantile
from repro.obs.tracer import RecordingTracer
from repro.service import ServiceConfig, SolverService, synthesize_jobs

JOBS = 50
GROUPS = 5
POOL = 5
CONSTRAINTS = 12


def run_batch(cache_enabled: bool):
    tracer = RecordingTracer()
    service = SolverService(
        ServiceConfig(
            pool_size=POOL, base_seed=7, cache_enabled=cache_enabled
        ),
        tracer=tracer,
    )
    specs = synthesize_jobs(JOBS, groups=GROUPS, constraints=CONSTRAINTS)
    records, summary = service.batch(specs)
    return records, summary, tracer


@pytest.mark.benchmark(group="service")
def test_service_throughput_and_cache_saving(benchmark, perf_record):
    _, cold_summary, cold_tracer = run_batch(cache_enabled=False)

    def run():
        return run_batch(cache_enabled=True)

    records, summary, tracer = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    assert summary.failed == 0 and cold_summary.failed == 0
    cached_cells = tracer.counters["crossbar.cells_written"]
    cold_cells = cold_tracer.counters["crossbar.cells_written"]
    assert cached_cells < cold_cells

    latencies = [record.elapsed_seconds for record in records]
    record_fields = {
        "bench": "service_batch",
        "jobs": JOBS,
        "groups": GROUPS,
        "pool_size": POOL,
        "constraints": CONSTRAINTS,
        "jobs_per_second": summary.jobs_per_second,
        "cache_hit_rate": summary.cache_hit_rate,
        "warm_acquires": summary.warm_acquires,
        "cold_acquires": summary.cold_acquires,
        "cells_written_cached": cached_cells,
        "cells_written_cold": cold_cells,
        "write_saving_fraction": 1.0 - cached_cells / cold_cells,
        "elapsed_seconds": summary.elapsed_seconds,
        "latency_p50_ms": round(1e3 * exact_quantile(latencies, 0.50), 3),
        "latency_p99_ms": round(1e3 * exact_quantile(latencies, 0.99), 3),
        "energy_j": summary.energy_j,
    }
    # Schema guard: the pre-telemetry keys must all survive.
    assert {
        "bench", "jobs", "groups", "pool_size", "constraints",
        "jobs_per_second", "cache_hit_rate", "warm_acquires",
        "cold_acquires", "cells_written_cached", "cells_written_cold",
        "write_saving_fraction", "elapsed_seconds",
    } <= set(record_fields)
    perf_record.update(record_fields)
