"""SERVICE: throughput, programming-cache, and sustained-load benchmarks.

Two benchmarks:

- ``test_service_throughput_and_cache_saving`` runs the same 50-job /
  5-group batch through the solver service twice — cache enabled and
  cache disabled (every placement cold) — asserts the cache measurably
  reduces ``crossbar.cells_written``, and records jobs/sec, the cache
  hit rate, and the measured write saving.
- ``test_sustained_load_worker_scaling`` drives a two-tenant burst
  through the concurrent dispatcher at 1 / 2 / 4 workers on a 4-member
  pool with hardware-in-the-loop pacing (``device_latency_s``: each
  attempt occupies its member for the emulated analog settle/readout
  window, the regime the paper's fleet actually serves in — host
  blocked on array, not on CPU) and asserts 4 workers deliver at least
  2.5x the jobs/s of 1 worker.  Pure-compute simulation cannot show
  fleet overlap on a single-core CI host (the GIL-free solve is still
  one CPU's work); the paced workload measures exactly what a real
  deployment would: scheduler overhead against fixed hardware latency.

Both drop machine-readable ``BENCH_*.json`` perf records (plus any
trace/metrics artifacts) under ``REPRO_BENCH_OUT``.
"""

import pytest

from repro.obs.clock import Stopwatch
from repro.obs.metrics import exact_quantile
from repro.obs.tracer import RecordingTracer
from repro.service import (
    ServiceConfig,
    SolverService,
    TenantPolicy,
    synthesize_jobs,
)

JOBS = 50
GROUPS = 5
POOL = 5
CONSTRAINTS = 12


def run_batch(cache_enabled: bool):
    tracer = RecordingTracer()
    service = SolverService(
        ServiceConfig(
            pool_size=POOL, base_seed=7, cache_enabled=cache_enabled
        ),
        tracer=tracer,
    )
    specs = synthesize_jobs(JOBS, groups=GROUPS, constraints=CONSTRAINTS)
    records, summary = service.batch(specs)
    return records, summary, tracer


@pytest.mark.benchmark(group="service")
def test_service_throughput_and_cache_saving(benchmark, perf_record):
    _, cold_summary, cold_tracer = run_batch(cache_enabled=False)

    def run():
        return run_batch(cache_enabled=True)

    records, summary, tracer = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    assert summary.failed == 0 and cold_summary.failed == 0
    cached_cells = tracer.counters["crossbar.cells_written"]
    cold_cells = cold_tracer.counters["crossbar.cells_written"]
    assert cached_cells < cold_cells

    latencies = [record.elapsed_seconds for record in records]
    record_fields = {
        "bench": "service_batch",
        "jobs": JOBS,
        "groups": GROUPS,
        "pool_size": POOL,
        "constraints": CONSTRAINTS,
        "jobs_per_second": summary.jobs_per_second,
        "cache_hit_rate": summary.cache_hit_rate,
        "warm_acquires": summary.warm_acquires,
        "cold_acquires": summary.cold_acquires,
        "cells_written_cached": cached_cells,
        "cells_written_cold": cold_cells,
        "write_saving_fraction": 1.0 - cached_cells / cold_cells,
        "elapsed_seconds": summary.elapsed_seconds,
        "latency_p50_ms": round(1e3 * exact_quantile(latencies, 0.50), 3),
        "latency_p99_ms": round(1e3 * exact_quantile(latencies, 0.99), 3),
        "energy_j": summary.energy_j,
    }
    # Schema guard: the pre-telemetry keys must all survive.
    assert {
        "bench", "jobs", "groups", "pool_size", "constraints",
        "jobs_per_second", "cache_hit_rate", "warm_acquires",
        "cold_acquires", "cells_written_cached", "cells_written_cold",
        "write_saving_fraction", "elapsed_seconds",
    } <= set(record_fields)
    perf_record.update(record_fields)


SUSTAINED_JOBS = 40
SUSTAINED_POOL = 4
SUSTAINED_CONSTRAINTS = 8
#: Emulated analog settle/readout occupancy per attempt (see module
#: note): long enough to dominate the ~15 ms simulated solve, so the
#: measurement reflects dispatcher overlap, not GIL contention.
DEVICE_LATENCY_S = 0.05


def run_sustained(workers: int):
    """One paced two-tenant burst; returns (summary, max queue depth)."""
    service = SolverService(
        ServiceConfig(
            pool_size=SUSTAINED_POOL,
            queue_depth=16,
            base_seed=7,
            workers=workers,
            device_latency_s=DEVICE_LATENCY_S,
            tenants=(
                TenantPolicy(tenant="tenant-00", weight=2.0),
                TenantPolicy(tenant="tenant-01", weight=1.0),
            ),
        )
    )
    specs = synthesize_jobs(
        SUSTAINED_JOBS,
        groups=4,
        constraints=SUSTAINED_CONSTRAINTS,
        tenants=2,
    )
    max_depth = 0

    def on_record(record):
        nonlocal max_depth
        max_depth = max(max_depth, len(service.queue))

    with Stopwatch() as clock:
        records, summary = service.batch(specs, on_record=on_record)
    assert summary.failed == 0
    assert len(records) == SUSTAINED_JOBS
    return summary, clock.elapsed_seconds, max_depth, records


@pytest.mark.benchmark(group="service")
def test_sustained_load_worker_scaling(benchmark, perf_record):
    curve = {}
    depths = {}
    latencies = {}
    for workers in (1, 2):
        summary, elapsed, depth, _ = run_sustained(workers)
        curve[workers] = SUSTAINED_JOBS / elapsed
        depths[workers] = depth

    def run():
        return run_sustained(4)

    summary, elapsed, depth, records = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    curve[4] = SUSTAINED_JOBS / elapsed
    depths[4] = depth
    latency = [r.elapsed_seconds for r in records if r.elapsed_seconds > 0]
    latencies = {
        "p50_ms": round(1e3 * exact_quantile(latency, 0.50), 3),
        "p99_ms": round(1e3 * exact_quantile(latency, 0.99), 3),
    }

    speedup = curve[4] / curve[1]
    assert speedup >= 2.5, (
        f"4-worker paced throughput only {speedup:.2f}x the 1-worker "
        f"baseline (curve: {curve})"
    )
    perf_record.update(
        {
            "bench": "service_sustained_load",
            "jobs": SUSTAINED_JOBS,
            "pool_size": SUSTAINED_POOL,
            "constraints": SUSTAINED_CONSTRAINTS,
            "device_latency_s": DEVICE_LATENCY_S,
            "tenants": 2,
            "jobs_per_second_by_workers": {
                str(k): round(v, 2) for k, v in curve.items()
            },
            "speedup_4x_vs_1x": round(speedup, 2),
            "max_queue_depth_by_workers": {
                str(k): v for k, v in depths.items()
            },
            "latency_at_4_workers": latencies,
            "energy_j": summary.energy_j,
        }
    )
