"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that output aligned and diff-friendly.
"""

from __future__ import annotations


def format_cell(value) -> str:
    """Human formatting: floats get 4 significant digits."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e4 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_table(headers: list[str], rows: list[list]) -> str:
    """Render an aligned monospace table with a header rule."""
    if not headers:
        raise ValueError("need at least one column")
    cells = [[format_cell(v) for v in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells))
        if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    def line(values: list[str]) -> str:
        return "  ".join(v.rjust(w) for v, w in zip(values, widths))

    rule = "  ".join("-" * w for w in widths)
    body = [line(headers), rule]
    body.extend(line(row) for row in cells)
    return "\n".join(body)
