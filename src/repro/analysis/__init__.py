"""Metrics and report rendering."""

from repro.analysis.export import (
    attempt_records,
    rows_to_records,
    write_csv,
    write_json,
)
from repro.analysis.metrics import SampleStats, relative_error
from repro.analysis.spans import (
    ReconcileRow,
    reconcile_with_counters,
    render_reconciliation,
    render_span_summary,
    replay_counters,
    replay_gauges,
    replay_histograms,
    span_totals,
)
from repro.analysis.tables import format_cell, render_table

__all__ = [
    "relative_error",
    "SampleStats",
    "render_table",
    "format_cell",
    "rows_to_records",
    "attempt_records",
    "write_csv",
    "write_json",
    "span_totals",
    "replay_counters",
    "replay_gauges",
    "replay_histograms",
    "render_span_summary",
    "ReconcileRow",
    "reconcile_with_counters",
    "render_reconciliation",
]
