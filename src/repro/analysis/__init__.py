"""Metrics and report rendering."""

from repro.analysis.export import (
    attempt_records,
    rows_to_records,
    write_csv,
    write_json,
)
from repro.analysis.metrics import SampleStats, relative_error
from repro.analysis.tables import format_cell, render_table

__all__ = [
    "relative_error",
    "SampleStats",
    "render_table",
    "format_cell",
    "rows_to_records",
    "attempt_records",
    "write_csv",
    "write_json",
]
