"""Trace replay: span summaries and counter reconciliation.

Consumes the event stream of a :class:`~repro.obs.tracer.
RecordingTracer` (live, or re-read from a JSONL trace via
:func:`repro.obs.sinks.read_trace_jsonl`) and produces:

- :func:`span_totals` — per-span-name call counts and cumulative
  seconds (the "where did the wall clock go" table);
- :func:`replay_counters` / :func:`replay_gauges` /
  :func:`replay_histograms` — counter totals, final gauge values, and
  per-name streaming histograms recomputed purely from the event
  stream, optionally restricted to one span's subtree (the offline
  check that live telemetry — summed ``service.energy_j``, histogram
  p50/p99 — matches what the trace says happened);
- :func:`reconcile_with_counters` — checks the replayed analog-op
  totals of the *final* solve attempt against the run's
  :class:`~repro.core.result.CrossbarCounters` and iteration count.
  The two are maintained independently (tracer events inside the
  crossbar simulator vs. the solver's own tallies), so agreement is a
  strong end-to-end consistency check on the instrumentation.
"""

from __future__ import annotations

import dataclasses
import math

from repro.analysis.tables import render_table
from repro.obs.metrics import StreamingHistogram

#: Tracer counter name -> CrossbarCounters field carrying the same
#: total.  Integer fields must match exactly; float fields (latency /
#: energy) are compared with a relative tolerance.
COUNTER_FIELDS = {
    "analog.multiplies": "multiplies",
    "analog.solves": "solves",
    "crossbar.cells_written": "cells_written",
    "crossbar.write_pulses": "write_pulses",
    "crossbar.write_latency_s": "write_latency_s",
    "crossbar.write_energy_j": "write_energy_j",
    "crossbar.verify_reads": "verify_reads",
    "crossbar.verify_repulsed": "verify_repulsed",
    "crossbar.verify_unverified": "verify_unverified",
}

_FLOAT_FIELDS = frozenset({"write_latency_s", "write_energy_j"})


def _as_dicts(events) -> list[dict]:
    """Accept tracer event objects or already-plain dicts."""
    return [
        event if isinstance(event, dict) else event.to_dict()
        for event in events
    ]


def _subtree_ids(events: list[dict], root_id: int) -> set[int]:
    """Span ids inside ``root_id``'s subtree (including the root)."""
    parents = {
        e["span_id"]: e["parent_id"] for e in events if e["kind"] == "span"
    }
    members = set()
    for span_id in parents:
        probe: int | None = span_id
        seen = set()
        while probe is not None and probe not in seen:
            if probe == root_id:
                members.add(span_id)
                break
            seen.add(probe)
            probe = parents.get(probe)
    members.add(root_id)
    return members


def _scope_ids(events: list[dict], within: str | None) -> set[int] | None:
    """Span-id filter for ``within``; ``None`` means no restriction.

    ``within`` selects the subtree of the *last* span with that name
    (e.g. the final recovery attempt).
    """
    if within is None:
        return None
    roots = [
        e["span_id"]
        for e in events
        if e["kind"] == "span" and e["name"] == within
    ]
    if not roots:
        raise ValueError(f"trace contains no span named {within!r}")
    return _subtree_ids(events, max(roots))


def span_totals(events) -> dict[str, tuple[int, float]]:
    """``span name -> (calls, cumulative seconds)`` over the trace."""
    events = _as_dicts(events)
    totals: dict[str, tuple[int, float]] = {}
    for event in events:
        if event["kind"] != "span":
            continue
        calls, seconds = totals.get(event["name"], (0, 0.0))
        totals[event["name"]] = (calls + 1, seconds + event["duration_s"])
    return totals


def replay_counters(events, *, within: str | None = None) -> dict[str, float]:
    """Counter totals recomputed from the event stream.

    With ``within`` (a span name), only count events attributed to the
    *last* such span's subtree are summed.
    """
    events = _as_dicts(events)
    scope = _scope_ids(events, within)
    totals: dict[str, float] = {}
    for event in events:
        if event["kind"] != "count":
            continue
        if scope is not None and event["span_id"] not in scope:
            continue
        totals[event["name"]] = totals.get(event["name"], 0.0) + event["value"]
    return totals


def replay_gauges(events, *, within: str | None = None) -> dict[str, float]:
    """Final gauge values from the event stream (last write wins)."""
    events = _as_dicts(events)
    scope = _scope_ids(events, within)
    values: dict[str, float] = {}
    for event in events:
        if event["kind"] != "gauge":
            continue
        if scope is not None and event["span_id"] not in scope:
            continue
        values[event["name"]] = event["value"]
    return values


def replay_histograms(
    events, *, within: str | None = None
) -> dict[str, StreamingHistogram]:
    """Per-name streaming histograms rebuilt from ``hist`` events.

    Replaying every observation reproduces the live tracer's
    aggregates exactly (same bucket scheme, same fold), so a batch's
    streamed p50/p99 can be audited offline against its own trace.
    With ``within`` (a span name), only observations attributed to the
    *last* such span's subtree are folded.
    """
    events = _as_dicts(events)
    scope = _scope_ids(events, within)
    histograms: dict[str, StreamingHistogram] = {}
    for event in events:
        if event["kind"] != "hist":
            continue
        if scope is not None and event["span_id"] not in scope:
            continue
        hist = histograms.get(event["name"])
        if hist is None:
            hist = histograms[event["name"]] = StreamingHistogram()
        hist.observe(event["value"])
    return histograms


def render_span_summary(events) -> str:
    """Per-span table: calls, total seconds, mean milliseconds."""
    totals = span_totals(events)
    rows = [
        [
            name,
            calls,
            seconds,
            (seconds / calls) * 1e3 if calls else 0.0,
        ]
        for name, (calls, seconds) in sorted(
            totals.items(), key=lambda item: -item[1][1]
        )
    ]
    return render_table(["span", "calls", "total_s", "mean_ms"], rows)


@dataclasses.dataclass(frozen=True)
class ReconcileRow:
    """One reconciled quantity: trace replay vs. solver counters."""

    name: str
    traced: float
    counted: float
    matches: bool


def reconcile_with_counters(events, result) -> list[ReconcileRow]:
    """Reconcile a trace against a result's analog-op counters.

    Replays the count events of the final ``attempt`` span (falling
    back to the whole trace when no attempt spans exist) and compares
    each total in :data:`COUNTER_FIELDS` with the corresponding
    :class:`~repro.core.result.CrossbarCounters` field, plus the
    ``solver.iterations`` gauge against ``result.iterations``.

    Raises ``ValueError`` when the result carries no crossbar counters
    (software solvers have nothing to reconcile).
    """
    counters = result.crossbar
    if counters is None:
        raise ValueError("result has no crossbar counters to reconcile")
    events = _as_dicts(events)
    has_attempts = any(
        e["kind"] == "span" and e["name"] == "attempt" for e in events
    )
    within = "attempt" if has_attempts else None
    replayed = replay_counters(events, within=within)
    gauges = replay_gauges(events, within=within)

    rows = []
    for name, field in COUNTER_FIELDS.items():
        traced = replayed.get(name, 0.0)
        counted = float(getattr(counters, field))
        if field in _FLOAT_FIELDS:
            matches = math.isclose(
                traced, counted, rel_tol=1e-9, abs_tol=1e-30
            )
        else:
            matches = traced == counted
        rows.append(
            ReconcileRow(
                name=name, traced=traced, counted=counted, matches=matches
            )
        )
    iterations = gauges.get("solver.iterations", 0.0)
    rows.append(
        ReconcileRow(
            name="solver.iterations",
            traced=iterations,
            counted=float(result.iterations),
            matches=iterations == float(result.iterations),
        )
    )
    return rows


def render_reconciliation(rows: list[ReconcileRow]) -> str:
    """Text table for a reconciliation report."""
    return render_table(
        ["quantity", "traced", "counted", "ok"],
        [
            [row.name, row.traced, row.counted, "yes" if row.matches else "NO"]
            for row in rows
        ],
    )
