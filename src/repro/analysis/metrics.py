"""Metrics and summary statistics for experiment results."""

from __future__ import annotations

import dataclasses
import math


def relative_error(value: float, reference: float) -> float:
    """Scaled error ``|value - reference| / (1 + |reference|)``.

    The accuracy measure of Fig. 5: optimal values from the crossbar
    solvers compared against the software ground truth.  The ``1 +``
    in the denominator is the standard LP-benchmarking guard: tiny
    problems can have a true optimum of exactly zero, where a plain
    relative error is undefined and a near-zero answer would otherwise
    explode the statistic.
    """
    return abs(value - reference) / (1.0 + abs(reference))


@dataclasses.dataclass(frozen=True)
class SampleStats:
    """Summary statistics of a sample.

    Attributes
    ----------
    count:
        Number of samples.
    mean / std / minimum / maximum:
        The usual moments; all 0 for an empty sample.
    """

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: list[float]) -> "SampleStats":
        """Compute statistics (population std) from a list."""
        if not samples:
            return cls(count=0, mean=0.0, std=0.0, minimum=0.0, maximum=0.0)
        count = len(samples)
        mean = sum(samples) / count
        variance = sum((s - mean) ** 2 for s in samples) / count
        return cls(
            count=count,
            mean=mean,
            std=math.sqrt(variance),
            minimum=min(samples),
            maximum=max(samples),
        )
