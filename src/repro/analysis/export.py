"""Export experiment rows to CSV/JSON for external plotting.

The experiment sweeps return lists of frozen dataclasses (possibly
containing nested :class:`~repro.analysis.metrics.SampleStats`); these
helpers flatten them into plain records and write standard formats so
the figures can be re-plotted outside Python.
"""

from __future__ import annotations

import csv
import dataclasses
import enum
import json
from pathlib import Path


def _flatten(record: dict, prefix: str = "") -> dict:
    flat: dict = {}
    for key, value in record.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            nested = _flatten(value, prefix=f"{name}.")
            collisions = flat.keys() & nested.keys()
            if collisions:
                raise ValueError(
                    "flattening produced colliding keys: "
                    f"{sorted(collisions)}"
                )
            flat.update(nested)
        elif isinstance(value, enum.Enum):
            flat[name] = value.value
        else:
            if name in flat:
                raise ValueError(
                    f"flattening produced colliding keys: [{name!r}]"
                )
            flat[name] = value
    return flat


def attempt_records(result) -> list[dict]:
    """Flatten a :class:`SolverResult`'s recovery attempt history.

    One record per :class:`~repro.reliability.telemetry.AttemptRecord`
    with enum fields rendered to their string values — ready for
    :func:`write_csv` / :func:`write_json` via plain dict rows, or for
    a dataframe.  Empty when the result carries no attempt history.
    """
    records = []
    for attempt in getattr(result, "attempts", ()):
        record = _flatten(dataclasses.asdict(attempt))
        records.append(record)
    return records


def rows_to_records(rows: list) -> list[dict]:
    """Flatten a list of experiment rows to plain dicts.

    Rows may be dataclasses or plain dicts (e.g. the output of
    :func:`attempt_records`); both are flattened the same way.  Nested
    mappings/dataclasses (e.g. ``error: SampleStats``) become dotted
    columns (``error.mean``); computed properties that the row classes
    expose (speedups, rates) are not included — recompute them from
    the flattened fields or read them off the rendered tables.
    """
    records = []
    for row in rows:
        if dataclasses.is_dataclass(row) and not isinstance(row, type):
            record = dataclasses.asdict(row)
        elif isinstance(row, dict):
            record = row
        else:
            raise TypeError(
                f"expected a dataclass or dict row, got {type(row)}"
            )
        records.append(_flatten(record))
    return records


def write_csv(rows: list, path: str | Path) -> Path:
    """Write experiment rows as CSV; returns the path written."""
    records = rows_to_records(rows)
    if not records:
        raise ValueError("no rows to write")
    # Rows may have heterogeneous shapes (e.g. a probe-rejected attempt
    # carries probe.* columns later attempts lack): take the union of
    # keys in first-seen order and leave absent cells empty.
    fieldnames: list[str] = []
    for record in records:
        for key in record:
            if key not in fieldnames:
                fieldnames.append(key)
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames, restval="")
        writer.writeheader()
        writer.writerows(records)
    return path


def write_json(rows: list, path: str | Path) -> Path:
    """Write experiment rows as a JSON array; returns the path."""
    records = rows_to_records(rows)
    path = Path(path)
    path.write_text(json.dumps(records, indent=2, sort_keys=True))
    return path
