"""Export experiment rows to CSV/JSON for external plotting.

The experiment sweeps return lists of frozen dataclasses (possibly
containing nested :class:`~repro.analysis.metrics.SampleStats`); these
helpers flatten them into plain records and write standard formats so
the figures can be re-plotted outside Python.
"""

from __future__ import annotations

import csv
import dataclasses
import enum
import json
from pathlib import Path


def _flatten(record: dict, prefix: str = "") -> dict:
    flat: dict = {}
    for key, value in record.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten(value, prefix=f"{name}."))
        elif isinstance(value, enum.Enum):
            flat[name] = value.value
        else:
            flat[name] = value
    return flat


def attempt_records(result) -> list[dict]:
    """Flatten a :class:`SolverResult`'s recovery attempt history.

    One record per :class:`~repro.reliability.telemetry.AttemptRecord`
    with enum fields rendered to their string values — ready for
    :func:`write_csv` / :func:`write_json` via plain dict rows, or for
    a dataframe.  Empty when the result carries no attempt history.
    """
    records = []
    for attempt in getattr(result, "attempts", ()):
        record = _flatten(dataclasses.asdict(attempt))
        records.append(record)
    return records


def rows_to_records(rows: list) -> list[dict]:
    """Flatten a list of experiment dataclasses to plain dicts.

    Nested dataclasses (e.g. ``error: SampleStats``) become dotted
    columns (``error.mean``); computed properties that the row classes
    expose (speedups, rates) are not included — recompute them from
    the flattened fields or read them off the rendered tables.
    """
    records = []
    for row in rows:
        if not dataclasses.is_dataclass(row):
            raise TypeError(f"expected a dataclass row, got {type(row)}")
        records.append(_flatten(dataclasses.asdict(row)))
    return records


def write_csv(rows: list, path: str | Path) -> Path:
    """Write experiment rows as CSV; returns the path written."""
    records = rows_to_records(rows)
    if not records:
        raise ValueError("no rows to write")
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(records[0]))
        writer.writeheader()
        writer.writerows(records)
    return path


def write_json(rows: list, path: str | Path) -> Path:
    """Write experiment rows as a JSON array; returns the path."""
    records = rows_to_records(rows)
    path = Path(path)
    path.write_text(json.dumps(records, indent=2, sort_keys=True))
    return path
