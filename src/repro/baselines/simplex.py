"""Revised simplex method (Dantzig) with Bland anti-cycling.

The paper's background section contrasts interior-point methods with
the simplex algorithm, "extremely efficient in practice, but has
exponential running time in the worst case".  This implementation
serves as an independent software comparator: maximization problems in
the package's standard form (max c'x, Ax <= b, x >= 0) are solved by
adding slack variables and running the revised simplex method on the
resulting equality form.

Phase handling: the standard form here always admits the slack basis
when ``b >= 0``; when some ``b_i < 0`` a Phase-I run with artificial
variables finds a feasible basis first (or proves infeasibility).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.problem import LinearProgram
from repro.core.result import SolverResult, SolveStatus
from repro.obs.clock import Stopwatch


class _SimplexOutcome:
    """Internal simplex verdicts."""

    OPTIMAL = "optimal"
    UNBOUNDED = "unbounded"
    INFEASIBLE = "infeasible"
    CYCLING_LIMIT = "cycling_limit"


def _revised_simplex(
    A: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    basis: np.ndarray,
    *,
    max_pivots: int,
    bland: bool = True,
) -> tuple[str, np.ndarray, np.ndarray, int]:
    """Core revised simplex on max c'v s.t. A v = b, v >= 0.

    Parameters
    ----------
    A, b, c:
        Equality-form data; ``b`` must be >= 0 relative to the starting
        basis (i.e. the basis must be primal feasible).
    basis:
        Indices of the starting basic variables (len m).
    max_pivots:
        Pivot cap; hitting it returns ``CYCLING_LIMIT``.
    bland:
        Use Bland's smallest-index rule (anti-cycling).  When False, a
        most-positive reduced-cost (Dantzig) rule is used.

    Returns
    -------
    (outcome, v, basis, pivots)
    """
    m, n_total = A.shape
    basis = np.array(basis, dtype=int)
    pivots = 0
    while pivots < max_pivots:
        B = A[:, basis]
        try:
            x_b = np.linalg.solve(B, b)
            lam = np.linalg.solve(B.T, c[basis])
        except np.linalg.LinAlgError:
            # Degenerate basis matrix; treat as a cycling failure.
            return _SimplexOutcome.CYCLING_LIMIT, np.zeros(n_total), basis, (
                pivots
            )
        reduced = c - A.T @ lam
        reduced[basis] = 0.0
        candidates = np.flatnonzero(reduced > 1e-10)
        if candidates.size == 0:
            v = np.zeros(n_total)
            v[basis] = x_b
            return _SimplexOutcome.OPTIMAL, v, basis, pivots
        if bland:
            entering = int(candidates[0])
        else:
            entering = int(candidates[np.argmax(reduced[candidates])])
        direction = np.linalg.solve(B, A[:, entering])
        positive = direction > 1e-12
        if not np.any(positive):
            v = np.zeros(n_total)
            v[basis] = x_b
            return _SimplexOutcome.UNBOUNDED, v, basis, pivots
        ratios = np.full(m, np.inf)
        ratios[positive] = x_b[positive] / direction[positive]
        leaving_row = int(np.argmin(ratios))
        if bland:
            # Among ties, pick the basic variable with smallest index.
            tie = np.flatnonzero(
                np.isclose(ratios, ratios[leaving_row], rtol=0, atol=1e-12)
            )
            leaving_row = int(tie[np.argmin(basis[tie])])
        basis[leaving_row] = entering
        pivots += 1
    return _SimplexOutcome.CYCLING_LIMIT, np.zeros(n_total), basis, pivots


def solve_simplex(
    problem: LinearProgram,
    *,
    max_pivots: int | None = None,
) -> SolverResult:
    """Solve an LP with the revised simplex method.

    Parameters
    ----------
    problem:
        max c'x s.t. Ax <= b, x >= 0.
    max_pivots:
        Pivot cap per phase; defaults to ``50 * (n + m)``.

    Returns
    -------
    SolverResult
        OPTIMAL with primal x (duals y from the final basis multiplier,
        slacks filled in), INFEASIBLE, or NUMERICAL_FAILURE for
        unbounded problems / pivot-cap hits (with an explanatory
        message — the standard form cannot express "unbounded" in
        :class:`SolveStatus`, which mirrors the paper's solver
        statuses).  ``elapsed_seconds`` covers both phases.
    """
    with Stopwatch() as clock:
        result = _solve_simplex(problem, max_pivots=max_pivots)
    return dataclasses.replace(
        result, elapsed_seconds=clock.elapsed_seconds
    )


def _solve_simplex(
    problem: LinearProgram,
    *,
    max_pivots: int | None = None,
) -> SolverResult:
    A = problem.A
    b = problem.b
    c = problem.c
    m, n = A.shape
    if max_pivots is None:
        max_pivots = 50 * (n + m)

    # Equality form: [A I][x; s] = b.
    A_eq = np.hstack([A, np.eye(m)])
    c_eq = np.concatenate([c, np.zeros(m)])

    if np.all(b >= 0):
        basis = np.arange(n, n + m)
    else:
        # Phase I: minimize sum of artificials.  Flip rows with b < 0 so
        # the artificial basis is feasible.
        signs = np.where(b < 0, -1.0, 1.0)
        A1 = np.hstack([A_eq * signs[:, None], np.eye(m)])
        b1 = b * signs
        c1 = np.concatenate([np.zeros(n + m), -np.ones(m)])
        basis1 = np.arange(n + m, n + 2 * m)
        outcome, v1, basis1, pivots1 = _revised_simplex(
            A1, b1, c1, basis1, max_pivots=max_pivots
        )
        if outcome != _SimplexOutcome.OPTIMAL:
            return _failure(problem, f"phase-1 {outcome}")
        if v1[n + m:].sum() > 1e-7:
            return SolverResult(
                status=SolveStatus.INFEASIBLE,
                x=np.zeros(n),
                y=np.zeros(m),
                w=np.zeros(m),
                z=np.zeros(n),
                objective=0.0,
                iterations=pivots1,
                message="phase-1 optimum leaves artificials basic",
            )
        if np.any(basis1 >= n + m):
            # Drive leftover (zero-valued) artificials out of the basis
            # where possible; rows where we cannot are redundant.
            for row, var in enumerate(basis1):
                if var < n + m:
                    continue
                B = A1[:, basis1]
                candidates = [
                    j
                    for j in range(n + m)
                    if j not in basis1
                    and abs(np.linalg.solve(B, A1[:, j])[row]) > 1e-9
                ]
                if candidates:
                    basis1[row] = candidates[0]
        if np.any(basis1 >= n + m):
            return _failure(problem, "redundant rows left artificials basic")
        basis = basis1
        # Undo the row sign flips for phase II.
        A_eq = A_eq
    outcome, v, basis, pivots = _revised_simplex(
        A_eq, b, c_eq, basis, max_pivots=max_pivots
    )
    if outcome == _SimplexOutcome.OPTIMAL:
        x = v[:n]
        slack = v[n:]
        lam = np.linalg.solve(A_eq[:, basis].T, c_eq[basis])
        y = np.maximum(lam, 0.0)
        z = np.maximum(A.T @ y - c, 0.0)
        return SolverResult(
            status=SolveStatus.OPTIMAL,
            x=x,
            y=y,
            w=slack,
            z=z,
            objective=problem.objective(x),
            iterations=pivots,
        )
    if outcome == _SimplexOutcome.UNBOUNDED:
        return _failure(problem, "objective unbounded above")
    return _failure(problem, outcome)


def _failure(problem: LinearProgram, message: str) -> SolverResult:
    m, n = problem.A.shape
    return SolverResult(
        status=SolveStatus.NUMERICAL_FAILURE,
        x=np.zeros(n),
        y=np.zeros(m),
        w=np.zeros(m),
        z=np.zeros(n),
        objective=0.0,
        iterations=0,
        message=message,
    )
