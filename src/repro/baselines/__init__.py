"""Software comparators: simplex, iterative linear solvers, scipy."""

from repro.baselines.gauss_seidel import (
    IterativeSolveResult,
    gauss_seidel,
    jacobi,
)
from repro.baselines.scipy_linprog import solve_scipy, timed_solve_scipy
from repro.baselines.simplex import solve_simplex

__all__ = [
    "solve_simplex",
    "solve_scipy",
    "timed_solve_scipy",
    "jacobi",
    "gauss_seidel",
    "IterativeSolveResult",
]
