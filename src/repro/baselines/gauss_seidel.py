"""Iterative linear-system solvers (Jacobi / Gauss–Seidel / SOR).

Section 3.5 of the paper compares the crossbar's O(1) analog solve
against software alternatives: direct methods at O(N^3) per solve and
"iterative method such as Gauss-Seidel method" at O(N^2) per sweep.
These implementations back the complexity-comparison benchmarks.

All solvers target ``A x = b`` for square A and report the number of
sweeps used; convergence is only guaranteed for suitable matrices
(diagonally dominant / SPD), so callers must check ``converged``.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class IterativeSolveResult:
    """Outcome of an iterative linear solve.

    Attributes
    ----------
    x:
        Final iterate.
    sweeps:
        Number of full sweeps performed.
    residual_norm:
        Final ``max |A x - b|``.
    converged:
        Whether the residual tolerance was met within the sweep cap.
    """

    x: np.ndarray
    sweeps: int
    residual_norm: float
    converged: bool


def _validate(A: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    A = np.asarray(A, dtype=float)
    b = np.asarray(b, dtype=float)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValueError(f"A must be square, got shape {A.shape}")
    if b.shape != (A.shape[0],):
        raise ValueError(f"b has shape {b.shape}, expected ({A.shape[0]},)")
    if np.any(np.abs(np.diag(A)) < 1e-300):
        raise ValueError("zero diagonal entry; cannot sweep")
    return A, b


def jacobi(
    A: np.ndarray,
    b: np.ndarray,
    *,
    tolerance: float = 1e-10,
    max_sweeps: int = 10_000,
    x0: np.ndarray | None = None,
) -> IterativeSolveResult:
    """Jacobi iteration: ``x_{k+1} = D^{-1} (b - (A - D) x_k)``."""
    A, b = _validate(A, b)
    n = A.shape[0]
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=float)
    diag = np.diag(A)
    off = A - np.diag(diag)
    residual = float(np.max(np.abs(A @ x - b)))
    sweeps = 0
    while residual > tolerance and sweeps < max_sweeps:
        x = (b - off @ x) / diag
        if not np.all(np.isfinite(x)):
            return IterativeSolveResult(x, sweeps + 1, np.inf, False)
        residual = float(np.max(np.abs(A @ x - b)))
        sweeps += 1
    return IterativeSolveResult(x, sweeps, residual, residual <= tolerance)


def gauss_seidel(
    A: np.ndarray,
    b: np.ndarray,
    *,
    tolerance: float = 1e-10,
    max_sweeps: int = 10_000,
    x0: np.ndarray | None = None,
    relaxation: float = 1.0,
) -> IterativeSolveResult:
    """Gauss–Seidel (or SOR for ``relaxation != 1``) iteration.

    Each sweep updates components in place using the freshest values —
    the O(N^2)-per-sweep method the paper cites.  ``relaxation`` is the
    SOR factor omega in (0, 2).
    """
    A, b = _validate(A, b)
    if not 0.0 < relaxation < 2.0:
        raise ValueError(f"relaxation must lie in (0, 2), got {relaxation}")
    n = A.shape[0]
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=float)
    diag = np.diag(A)
    residual = float(np.max(np.abs(A @ x - b)))
    sweeps = 0
    while residual > tolerance and sweeps < max_sweeps:
        for i in range(n):
            sigma = A[i, :] @ x - A[i, i] * x[i]
            gs_value = (b[i] - sigma) / diag[i]
            x[i] = (1 - relaxation) * x[i] + relaxation * gs_value
        if not np.all(np.isfinite(x)):
            return IterativeSolveResult(x, sweeps + 1, np.inf, False)
        residual = float(np.max(np.abs(A @ x - b)))
        sweeps += 1
    return IterativeSolveResult(x, sweeps, residual, residual <= tolerance)
