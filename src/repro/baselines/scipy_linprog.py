"""Adapter around ``scipy.optimize.linprog`` (HiGHS).

This is the repo's stand-in for the paper's Matlab ``linprog``
comparator: a mature software LP solver whose optimal values serve as
ground truth for the accuracy experiments (Fig. 5) and whose measured
wall-clock anchors the CPU latency model.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.core.problem import LinearProgram
from repro.core.result import SolverResult, SolveStatus
from repro.obs.clock import Stopwatch


def solve_scipy(
    problem: LinearProgram, *, method: str = "highs"
) -> SolverResult:
    """Solve max c'x s.t. Ax <= b, x >= 0 with scipy (minimizes -c'x).

    Returns a :class:`SolverResult` with the scipy status mapped onto
    the package's statuses (HiGHS "infeasible" -> INFEASIBLE, anything
    else unsuccessful -> NUMERICAL_FAILURE) and ``elapsed_seconds``
    measured on the shared monotonic clock.
    """
    m, n = problem.A.shape
    with Stopwatch() as clock:
        outcome = optimize.linprog(
            -problem.c,
            A_ub=problem.A,
            b_ub=problem.b,
            bounds=[(0, None)] * n,
            method=method,
        )
    if outcome.status == 0:
        x = np.asarray(outcome.x, dtype=float)
        w = problem.b - problem.A @ x
        # HiGHS marginals: ineqlin duals are <= 0 for a minimization.
        try:
            y = np.abs(np.asarray(outcome.ineqlin.marginals, dtype=float))
        except AttributeError:  # older scipy
            y = np.zeros(m)
        z = np.maximum(problem.A.T @ y - problem.c, 0.0)
        return SolverResult(
            status=SolveStatus.OPTIMAL,
            x=x,
            y=y,
            w=w,
            z=z,
            objective=problem.objective(x),
            iterations=int(getattr(outcome, "nit", 0)),
            elapsed_seconds=clock.elapsed_seconds,
        )
    status = (
        SolveStatus.INFEASIBLE
        if outcome.status == 2
        else SolveStatus.NUMERICAL_FAILURE
    )
    return SolverResult(
        status=status,
        x=np.zeros(n),
        y=np.zeros(m),
        w=np.zeros(m),
        z=np.zeros(n),
        objective=0.0,
        iterations=int(getattr(outcome, "nit", 0)),
        message=str(outcome.message),
        elapsed_seconds=clock.elapsed_seconds,
    )


def timed_solve_scipy(
    problem: LinearProgram, *, method: str = "highs"
) -> tuple[SolverResult, float]:
    """Solve and return (result, wall_clock_seconds).

    Used to calibrate the CPU cost model against this machine.  The
    elapsed time is the result's own ``elapsed_seconds``; the tuple
    form survives for callers of the original API.
    """
    result = solve_scipy(problem, method=method)
    return result, result.elapsed_seconds
