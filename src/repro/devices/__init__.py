"""Memristor device models.

This subpackage simulates individual memristor devices: their
conductance states, switching dynamics under write pulses, and
manufacturing (process) variation.  The crossbar simulator in
:mod:`repro.crossbar` is built on top of these models.

Public API
----------
- :class:`~repro.devices.memristor.Memristor` — a single linear
  ion-drift (HP TiO2) device with threshold switching.
- :class:`~repro.devices.models.DeviceParameters` — physical parameter
  bundle; presets :data:`~repro.devices.models.HP_TIO2` and
  :data:`~repro.devices.models.YAKOPCIC_NAECON14`.
- :class:`~repro.devices.variation.UniformVariation` /
  :class:`~repro.devices.variation.LognormalVariation` — process
  variation models (Eqn. 18 of the paper).
"""

from repro.devices.faults import StuckAtFaults
from repro.devices.memristor import Memristor, MemristorState
from repro.devices.models import (
    HP_TIO2,
    YAKOPCIC_NAECON14,
    DeviceParameters,
)
from repro.devices.variation import (
    LognormalVariation,
    NoVariation,
    UniformVariation,
    VariationModel,
    variation_from_percent,
)

__all__ = [
    "Memristor",
    "MemristorState",
    "DeviceParameters",
    "HP_TIO2",
    "YAKOPCIC_NAECON14",
    "VariationModel",
    "NoVariation",
    "UniformVariation",
    "LognormalVariation",
    "variation_from_percent",
    "StuckAtFaults",
]
