"""Process-variation models for memristor crossbars.

Section 4.1 of the paper models process variation as a uniform
perturbation applied elementwise to the programmed matrix:

.. math::

   M' = M + M \\circ (var \\cdot R_d)   \\qquad   (Eqn. 18)

where ``var`` is the maximum variation percentage (typically 5–20%)
and ``R_d`` has i.i.d. entries uniform in (-1, 1).

The paper notes that "process variation differs from each time of
writing" (Section 4.3) — a fresh perturbation must be drawn on every
reprogramming of the array.  All models therefore take the RNG at
*sample time*, not construction time, and every sample is independent.

A lognormal alternative is provided because device literature (e.g.
Hu et al., ASPDAC 2011, cited as [22]) often reports multiplicative,
skewed resistance variation; it is used in ablation studies only.
"""

from __future__ import annotations

import abc

import numpy as np


class VariationModel(abc.ABC):
    """Interface: perturb a programmed conductance/coefficient matrix."""

    @abc.abstractmethod
    def perturb(
        self, matrix: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Return a perturbed copy of ``matrix``.

        Implementations must not mutate the input and must return an
        array of the same shape.  Conductances are physical quantities,
        so implementations must keep non-negative entries non-negative.
        """

    @property
    @abc.abstractmethod
    def relative_magnitude(self) -> float:
        """Worst-case relative per-cell deviation this model can cause.

        Controllers use this *specification* value to budget their
        acceptance tests: a solution computed on hardware with x%
        variation can violate the nominal constraints by the
        corresponding propagated amount without being wrong.
        """

    def reperturb(
        self,
        matrix: np.ndarray,
        previous: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Redraw after a corrective re-pulse (write–verify loop).

        ``previous`` is the realized conductance the read-back found
        out of tolerance.  The default is a fresh independent draw —
        soft variation is re-rolled by every pulse train.  Models with
        *persistent* deviations (e.g. stuck-at faults) override this:
        re-pulsing a hard-faulted cell cannot move it.
        """
        return self.perturb(matrix, rng)

    def perturb_stack(
        self,
        stack: np.ndarray,
        rngs: "list[np.random.Generator]",
    ) -> np.ndarray:
        """Perturb a ``(K, ...)`` stack, one member per generator.

        The batched engine's determinism rule: member ``k``'s draws
        come from ``rngs[k]`` alone, in member order, consuming exactly
        the variates ``perturb(stack[k], rngs[k])`` would — so a stack
        member stays bitwise-identical to a serial array driven by the
        same generator.  Cross-member order is irrelevant (each member
        owns its stream), which is what lets callers batch the
        surrounding tensor math freely.

        Models whose draw is elementwise can override this with a
        vectorized implementation *only if* it preserves the
        per-member stream contract; the default loop is the reference
        semantics.
        """
        stack = np.asarray(stack, dtype=float)
        if stack.ndim < 1 or stack.shape[0] != len(rngs):
            raise ValueError(
                f"stack of {stack.shape[0] if stack.ndim else 0} members "
                f"needs as many generators, got {len(rngs)}"
            )
        return np.stack(
            [self.perturb(stack[k], rngs[k]) for k in range(len(rngs))]
        )

    def __call__(
        self, matrix: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return self.perturb(matrix, rng)


class NoVariation(VariationModel):
    """Ideal hardware: the programmed matrix is realized exactly."""

    def perturb(
        self, matrix: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return np.array(matrix, dtype=float, copy=True)

    @property
    def relative_magnitude(self) -> float:
        return 0.0

    def perturb_stack(
        self,
        stack: np.ndarray,
        rngs: "list[np.random.Generator]",
    ) -> np.ndarray:
        """One copy, no draws — ideal hardware consumes no variates."""
        stack = np.asarray(stack, dtype=float)
        if stack.ndim < 1 or stack.shape[0] != len(rngs):
            raise ValueError(
                f"stack of {stack.shape[0] if stack.ndim else 0} members "
                f"needs as many generators, got {len(rngs)}"
            )
        return np.array(stack, dtype=float, copy=True)

    def __repr__(self) -> str:
        return "NoVariation()"


class UniformVariation(VariationModel):
    """The paper's Eqn. 18: ``M' = M + M ∘ (var · Rd)``, Rd ~ U(-1, 1).

    Parameters
    ----------
    max_fraction:
        Maximum relative deviation ``var`` (e.g. ``0.10`` for "up to
        10% process variation").  Must lie in [0, 1): a variation of
        100% or more could flip the sign of a conductance, which is
        physically impossible.
    """

    def __init__(self, max_fraction: float) -> None:
        if not 0.0 <= max_fraction < 1.0:
            raise ValueError(
                f"max_fraction must lie in [0, 1), got {max_fraction}"
            )
        self.max_fraction = float(max_fraction)

    def perturb(
        self, matrix: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        matrix = np.asarray(matrix, dtype=float)
        if self.max_fraction == 0.0:
            return matrix.copy()
        rd = rng.uniform(-1.0, 1.0, size=matrix.shape)
        return matrix * (1.0 + self.max_fraction * rd)

    @property
    def relative_magnitude(self) -> float:
        return self.max_fraction

    def __repr__(self) -> str:
        return f"UniformVariation(max_fraction={self.max_fraction})"


class LognormalVariation(VariationModel):
    """Multiplicative lognormal variation: ``M' = M · exp(sigma · N)``.

    A skewed, strictly-positive multiplicative model closer to measured
    TiO2 geometry variation [22].  Used for ablations; the headline
    experiments use :class:`UniformVariation` to match the paper.

    Parameters
    ----------
    sigma:
        Standard deviation of the underlying normal in log space.
    """

    def __init__(self, sigma: float) -> None:
        if sigma < 0.0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        self.sigma = float(sigma)

    def perturb(
        self, matrix: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        matrix = np.asarray(matrix, dtype=float)
        if self.sigma == 0.0:
            return matrix.copy()
        factors = np.exp(rng.normal(0.0, self.sigma, size=matrix.shape))
        return matrix * factors

    @property
    def relative_magnitude(self) -> float:
        # Two-sigma multiplicative deviation as the spec value.
        return float(np.expm1(2.0 * self.sigma))

    def __repr__(self) -> str:
        return f"LognormalVariation(sigma={self.sigma})"


def variation_from_percent(percent: float) -> VariationModel:
    """Convenience: build the paper's model from a percent figure.

    ``variation_from_percent(10)`` is the paper's "up to 10% process
    variation"; ``variation_from_percent(0)`` is ideal hardware.
    """
    if percent < 0:
        raise ValueError(f"percent must be non-negative, got {percent}")
    if percent == 0:
        return NoVariation()
    return UniformVariation(percent / 100.0)
