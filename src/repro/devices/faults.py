"""Hard-fault models for memristor crossbars (extension study).

Beyond the paper's analog process variation (Eqn. 18), fabricated
arrays exhibit *hard* faults: cells stuck at the low-resistance state
(stuck-ON: shorted filament) or at the high-resistance/open state
(stuck-OFF).  Yield studies in the RRAM literature put combined fault
rates at a few tenths of a percent to a few percent.

:class:`StuckAtFaults` composes with the paper's variation model: the
soft variation perturbs every programmed cell, then the stuck cells
override their targets entirely.  Fault positions are redrawn per
programming event with the supplied probability — modeling the fact
that a logical matrix is remapped onto (possibly different) physical
arrays between runs, which is also what makes the paper's retry scheme
effective against faults.
"""

from __future__ import annotations

import numpy as np

from repro.devices.models import DeviceParameters
from repro.devices.variation import NoVariation, VariationModel


class StuckAtFaults(VariationModel):
    """Stuck-ON / stuck-OFF cell faults on top of soft variation.

    Parameters
    ----------
    params:
        Device preset supplying the stuck conductance levels (``g_on``
        for stuck-ON, 0 for stuck-OFF — a blown cell conducts nothing).
    stuck_on_rate / stuck_off_rate:
        Per-cell fault probabilities (each in [0, 0.5)).
    base:
        Soft variation applied before the fault overrides; defaults to
        ideal (faults only).
    """

    def __init__(
        self,
        params: DeviceParameters,
        *,
        stuck_on_rate: float = 0.0,
        stuck_off_rate: float = 0.0,
        base: VariationModel | None = None,
    ) -> None:
        for label, rate in (
            ("stuck_on_rate", stuck_on_rate),
            ("stuck_off_rate", stuck_off_rate),
        ):
            if not 0.0 <= rate < 0.5:
                raise ValueError(f"{label} must lie in [0, 0.5)")
        self.params = params
        self.stuck_on_rate = float(stuck_on_rate)
        self.stuck_off_rate = float(stuck_off_rate)
        self.base = base if base is not None else NoVariation()

    def perturb(
        self, matrix: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        perturbed = self.base.perturb(matrix, rng)
        draw = rng.uniform(size=perturbed.shape)
        stuck_on = draw < self.stuck_on_rate
        stuck_off = (draw >= self.stuck_on_rate) & (
            draw < self.stuck_on_rate + self.stuck_off_rate
        )
        perturbed = np.where(stuck_on, self.params.g_on, perturbed)
        perturbed = np.where(stuck_off, 0.0, perturbed)
        return perturbed

    def reperturb(
        self,
        matrix: np.ndarray,
        previous: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Re-pulse within one programming event: hard faults persist.

        A fresh fault draw models mapping onto a *different* physical
        array (see the class docstring); the write–verify loop instead
        re-pulses the *same* cells, which trims soft variation but
        cannot move a shorted or open device.  Cells whose previous
        read-back sits exactly at the stuck levels while commanded
        elsewhere are kept stuck; all other cells re-roll their soft
        deviation.
        """
        matrix = np.asarray(matrix, dtype=float)
        previous = np.asarray(previous, dtype=float)
        fresh = self.base.reperturb(matrix, previous, rng)
        stuck_on = (previous == self.params.g_on) & (
            matrix != self.params.g_on
        )
        stuck_off = (previous == 0.0) & (matrix > 0.0)
        fresh = np.where(stuck_on, self.params.g_on, fresh)
        fresh = np.where(stuck_off, 0.0, fresh)
        return fresh

    @property
    def relative_magnitude(self) -> float:
        """Spec value for acceptance budgeting.

        Hard faults are not a bounded relative deviation, so the spec
        reports only the *soft* component; fault tolerance is achieved
        through the retry scheme (fresh arrays), not wider acceptance.
        """
        return self.base.relative_magnitude

    def __repr__(self) -> str:
        return (
            f"StuckAtFaults(on={self.stuck_on_rate}, "
            f"off={self.stuck_off_rate}, base={self.base!r})"
        )
