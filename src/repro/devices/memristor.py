"""Single-device memristor model.

Implements the linear ion-drift (HP TiO2) memristor of Strukov et al.
(Nature 2008), the device described in Section 2.2 of the paper:

.. math::

   M(q(t)) = R_{OFF}\\,\\Bigl(1 - \\frac{\\mu_v R_{ON}}{D^2}\\,q(t)\\Bigr)

together with threshold switching: a voltage whose magnitude stays
below ``V_th`` does not move the internal state, so analog computation
(read voltages) leaves the programmed matrix intact, while programming
pulses above threshold move the doped-region boundary.

The internal state variable is the normalized doped-region width
``x = w / D`` in [0, 1]; memristance interpolates linearly between
``R_OFF`` (x = 0) and ``R_ON`` (x = 1):

.. math::

   M(x) = R_{ON}\\,x + R_{OFF}\\,(1 - x)

which is the standard reparameterization of the charge-controlled form
above (``x`` is proportional to the integrated charge).
"""

from __future__ import annotations

import dataclasses

from repro.devices.models import HP_TIO2, DeviceParameters


@dataclasses.dataclass
class MemristorState:
    """Snapshot of a device's internal state.

    Attributes
    ----------
    x:
        Normalized doped-region width ``w/D`` in [0, 1].
    resistance:
        Memristance implied by ``x``, ohms.
    conductance:
        ``1 / resistance``, siemens.
    """

    x: float
    resistance: float
    conductance: float


class Memristor:
    """A single linear ion-drift memristor with threshold switching.

    Parameters
    ----------
    params:
        Device constants; defaults to the HP TiO2 preset.
    x0:
        Initial normalized state in [0, 1] (0 = fully OFF/high
        resistance, 1 = fully ON/low resistance).
    """

    def __init__(
        self, params: DeviceParameters = HP_TIO2, x0: float = 0.0
    ) -> None:
        if not 0.0 <= x0 <= 1.0:
            raise ValueError("initial state x0 must lie in [0, 1]")
        self.params = params
        self._x = float(x0)

    # -- state accessors -------------------------------------------------

    @property
    def x(self) -> float:
        """Normalized doped-region width in [0, 1]."""
        return self._x

    @property
    def resistance(self) -> float:
        """Current memristance M(x), ohms."""
        p = self.params
        return p.r_on * self._x + p.r_off * (1.0 - self._x)

    @property
    def conductance(self) -> float:
        """Current conductance 1/M(x), siemens."""
        return 1.0 / self.resistance

    def state(self) -> MemristorState:
        """Immutable snapshot of the current device state."""
        return MemristorState(
            x=self._x,
            resistance=self.resistance,
            conductance=self.conductance,
        )

    # -- electrical behaviour --------------------------------------------

    def current(self, voltage: float) -> float:
        """Ohmic current response I = V / M(x) at the present state.

        Reads never mutate state here; state motion is modeled only in
        :meth:`apply_voltage` (and only above threshold), matching the
        paper's observation that the computation phase has negligible
        effect on memristance.
        """
        return voltage / self.resistance

    def apply_voltage(self, voltage: float, duration: float) -> float:
        """Apply a voltage pulse; move the state if above threshold.

        The linear ion-drift state equation is

        .. math::

           \\frac{dw}{dt} = \\frac{\\mu_v R_{ON}}{D} \\; i(t)

        integrated with explicit Euler over ``duration`` (valid for the
        short programming pulses used in crossbar writes), with a hard
        window clamp to [0, 1].

        Parameters
        ----------
        voltage:
            Pulse amplitude, volts.  Positive voltage moves the device
            toward ``R_ON`` (x -> 1); negative toward ``R_OFF``.
        duration:
            Pulse width, seconds.

        Returns
        -------
        float
            The new normalized state.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        if abs(voltage) <= self.params.v_threshold:
            return self._x  # sub-threshold: pure resistor, no switching
        p = self.params
        # dx/dt = mu_v * R_on / D^2 * i(t); i = V / M(x).  Use a few Euler
        # substeps so a long pulse cannot overshoot the window.
        substeps = 8
        dt = duration / substeps
        k = p.dopant_mobility * p.r_on / (p.film_thickness**2)
        x = self._x
        for _ in range(substeps):
            m = p.r_on * x + p.r_off * (1.0 - x)
            x += k * (voltage / m) * dt
            x = min(1.0, max(0.0, x))
        self._x = x
        return self._x

    # -- programming helpers ----------------------------------------------

    def program_to_conductance(self, target_g: float) -> int:
        """Program the device to a target conductance with write pulses.

        Emulates the pulse-train programming scheme of Section 3.3: the
        write circuitry applies ``±V_dd`` pulses and counts pulses until
        the device reaches the requested conductance.  For the purposes
        of the crossbar simulator we set the state directly (the
        feedback write loop converges to the target) and return the
        number of pulses a real controller would have issued, which the
        cost model uses.

        Parameters
        ----------
        target_g:
            Desired conductance in ``[g_off, g_on]``, siemens.

        Returns
        -------
        int
            Number of write pulses issued (>= 0).
        """
        p = self.params
        if not p.g_off <= target_g <= p.g_on:
            raise ValueError(
                f"target conductance {target_g:.3e} outside device range "
                f"[{p.g_off:.3e}, {p.g_on:.3e}]"
            )
        target_r = 1.0 / target_g
        # Invert M(x) = r_on x + r_off (1 - x) for x.
        target_x = (p.r_off - target_r) / (p.r_off - p.r_on)
        swing = abs(target_x - self._x)
        pulses = int(round(swing * p.write_pulses_full_swing))
        self._x = min(1.0, max(0.0, target_x))
        return pulses

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Memristor(params={self.params.name!r}, x={self._x:.4f}, "
            f"R={self.resistance:.1f} ohm)"
        )
