"""Physical parameter bundles for memristor devices.

Two presets are provided:

- :data:`HP_TIO2` — the titanium-dioxide thin-film device announced by
  HP Labs (Strukov et al., Nature 2008), the device the paper's
  background section (Eqn. 4) describes:

  .. math::

     M(q(t)) = R_{OFF} \\cdot \\Bigl(1 - \\frac{\\mu_v R_{ON}}{D^2} q(t)\\Bigr)

- :data:`YAKOPCIC_NAECON14` — parameters in the spirit of the hybrid
  crossbar architecture of Yakopcic, Taha & Hasan (NAECON 2014), the
  model the paper cites ([23]) for its latency and energy estimates.
  The exact SPICE-level constants are not printed in the paper, so the
  write/read timing and energy figures here are representative values
  from that literature; their provenance is documented field by field.

All quantities are SI (ohms, volts, seconds, joules, meters).
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class DeviceParameters:
    """Immutable bundle of memristor device constants.

    Attributes
    ----------
    name:
        Human-readable preset name.
    r_on:
        Low-resistance (fully doped) state, ohms.
    r_off:
        High-resistance (undoped) state, ohms.
    v_threshold:
        Write threshold voltage ``V_th`` — excitation below this
        magnitude leaves the memristance unchanged (the device behaves
        as a resistor), volts.
    v_write:
        Programming voltage ``V_dd`` applied across a selected device
        during a write; must satisfy ``|v_write| > v_threshold`` so the
        half-select bias ``v_write / 2`` is below threshold, volts.
    v_read:
        Read/compute voltage amplitude used for analog matrix
        operations; kept below ``v_threshold`` so computation does not
        disturb the stored state, volts.
    film_thickness:
        TiO2 film thickness ``D``, meters.
    dopant_mobility:
        Ion mobility ``mu_v``, m^2 s^-1 V^-1.
    write_pulse_width:
        Duration of one programming pulse, seconds.
    write_pulses_full_swing:
        Number of pulses to traverse the full ``r_off -> r_on`` range;
        programming to an intermediate state scales proportionally.
    write_energy_per_pulse:
        Energy dissipated in the selected cell per write pulse, joules.
    read_settle_time:
        Analog settling time for one crossbar evaluation (multiply or
        solve) — this is the O(1) "compute" latency, seconds.
    read_energy_per_cell:
        Energy dissipated per cell per analog evaluation, joules.
    """

    name: str
    r_on: float
    r_off: float
    v_threshold: float
    v_write: float
    v_read: float
    film_thickness: float
    dopant_mobility: float
    write_pulse_width: float
    write_pulses_full_swing: int
    write_energy_per_pulse: float
    read_settle_time: float
    read_energy_per_cell: float

    def __post_init__(self) -> None:
        if self.r_on <= 0 or self.r_off <= 0:
            raise ValueError("resistances must be positive")
        if self.r_on >= self.r_off:
            raise ValueError(
                f"r_on ({self.r_on}) must be below r_off ({self.r_off})"
            )
        if abs(self.v_write) <= abs(self.v_threshold):
            raise ValueError("write voltage must exceed the threshold")
        if abs(self.v_write) / 2.0 > abs(self.v_threshold):
            raise ValueError(
                "half-select bias v_write/2 must stay below the threshold, "
                "otherwise unselected devices are disturbed"
            )
        if abs(self.v_read) >= abs(self.v_threshold):
            raise ValueError("read voltage must stay below the threshold")

    @property
    def g_on(self) -> float:
        """Maximum conductance (siemens) — the ``g_max`` of the mapping."""
        return 1.0 / self.r_on

    @property
    def g_off(self) -> float:
        """Minimum conductance (siemens) — the ``g_min`` of the mapping."""
        return 1.0 / self.r_off

    @property
    def conductance_range(self) -> tuple[float, float]:
        """(g_min, g_max) representable by one device."""
        return (self.g_off, self.g_on)

    @property
    def resistance_ratio(self) -> float:
        """Dynamic range ``r_off / r_on`` (dimensionless)."""
        return self.r_off / self.r_on

    def write_time(self, fraction_of_full_swing: float) -> float:
        """Time to program a device across the given state fraction.

        Parameters
        ----------
        fraction_of_full_swing:
            Fraction in [0, 1] of the full ``r_off -> r_on`` range the
            write must traverse.  Per Section 3.3 of the paper,
            programming to a specific resistance is achieved by
            adjusting the number of write pulses.
        """
        if not 0.0 <= fraction_of_full_swing <= 1.0:
            raise ValueError("fraction must lie in [0, 1]")
        pulses = self.write_pulses_full_swing * fraction_of_full_swing
        return pulses * self.write_pulse_width

    def write_energy(self, fraction_of_full_swing: float) -> float:
        """Energy to program a device across the given state fraction."""
        if not 0.0 <= fraction_of_full_swing <= 1.0:
            raise ValueError("fraction must lie in [0, 1]")
        pulses = self.write_pulses_full_swing * fraction_of_full_swing
        return pulses * self.write_energy_per_pulse


#: HP Labs TiO2 device (Strukov et al. 2008).  R_on/R_off and geometry are
#: the commonly quoted values for that device; write/read figures follow
#: the crossbar-programming literature cited by the paper ([16], [17]).
HP_TIO2 = DeviceParameters(
    name="hp-tio2",
    r_on=100.0,
    r_off=16_000.0,
    v_threshold=1.0,
    v_write=2.0,
    v_read=0.5,
    film_thickness=10e-9,
    dopant_mobility=1e-14,
    write_pulse_width=10e-9,
    write_pulses_full_swing=100,
    write_energy_per_pulse=1e-12,
    read_settle_time=10e-9,
    read_energy_per_cell=1e-15,
)

#: Device constants in the spirit of Yakopcic, Taha & Hasan (NAECON 2014),
#: which the paper cites ([23]) as the basis of its latency / energy
#: estimates.  Slightly faster write pulses and a wider dynamic range than
#: the 2008 HP device.
YAKOPCIC_NAECON14 = DeviceParameters(
    name="yakopcic-naecon14",
    r_on=1_000.0,
    r_off=1_000_000.0,
    v_threshold=1.1,
    v_write=2.2,
    v_read=0.9,
    film_thickness=10e-9,
    dopant_mobility=1e-14,
    write_pulse_width=5e-9,
    write_pulses_full_swing=64,
    write_energy_per_pulse=0.5e-12,
    read_settle_time=5e-9,
    read_energy_per_cell=0.5e-15,
)
