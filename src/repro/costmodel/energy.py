"""Energy estimation for crossbar solver runs (Fig. 7 methodology).

Mirrors :mod:`repro.costmodel.latency`: measured counters priced with
the device and periphery models.

- **writes** — programming pulses including half-select disturbance,
  accumulated physically by the array simulator;
- **analog evaluations** — every populated cell conducts during a
  multiply/solve settle window;
- **conversions** — one DAC and one ADC conversion per active channel
  per evaluation;
- **digital** — controller coefficient computations and the summing
  amplifiers.
"""

from __future__ import annotations

import dataclasses

from repro.core.result import SolverResult
from repro.costmodel.parameters import DEFAULT_COST_MODEL, CostModelParameters
from repro.devices.models import DeviceParameters


@dataclasses.dataclass(frozen=True)
class EnergyBreakdown:
    """Per-phase energy of one crossbar solve, joules."""

    write_j: float
    analog_j: float
    conversion_j: float
    digital_j: float

    @property
    def total_j(self) -> float:
        """End-to-end estimated energy, joules."""
        return self.write_j + self.analog_j + self.conversion_j + (
            self.digital_j
        )


def estimate_energy_from_counts(
    *,
    multiplies: float,
    solves: float,
    cells_written: float,
    write_energy_j: float,
    array_size: int,
    iterations: int,
    device: DeviceParameters,
    model: CostModelParameters = DEFAULT_COST_MODEL,
    cell_density: float = 0.25,
) -> EnergyBreakdown:
    """Price raw operation counts with the device/periphery model.

    The counters-first form of :func:`estimate_energy`: the serving
    layer calls it per job attempt with totals read off the attempt's
    tracer (``analog.multiplies``, ``analog.solves``,
    ``crossbar.cells_written``, ``crossbar.write_energy_j``), so a
    cold placement's full structural program is charged to the job
    that caused it — the attribution the per-result API cannot see.

    ``write_energy_j`` is the physically-accumulated programming
    energy (the array simulator integrates it pulse by pulse); the
    other three phases are modeled from the counts, exactly as the
    Fig. 7 sweep does.
    """
    if not 0.0 < cell_density <= 1.0:
        raise ValueError("cell_density must lie in (0, 1]")
    peri = model.peripherals
    evaluations = multiplies + solves
    active_cells = cell_density * array_size**2
    analog = evaluations * active_cells * device.read_energy_per_cell
    conversion = evaluations * array_size * (
        peri.dac_energy_j + peri.adc_energy_j
    )
    digital = (
        cells_written * peri.digital_op_energy_j
        + iterations * array_size * peri.summing_amp_energy_j
    )
    return EnergyBreakdown(
        write_j=write_energy_j,
        analog_j=analog,
        conversion_j=conversion,
        digital_j=digital,
    )


def estimate_energy(
    result: SolverResult,
    device: DeviceParameters,
    model: CostModelParameters = DEFAULT_COST_MODEL,
    *,
    cell_density: float = 0.25,
) -> EnergyBreakdown:
    """Price a crossbar solve's counters with the device/periphery model.

    Parameters
    ----------
    result:
        A :class:`SolverResult` from one of the crossbar solvers; must
        carry :class:`~repro.core.result.CrossbarCounters`.
    device:
        The memristor preset the solve ran with.
    model:
        Periphery and controller constants.
    cell_density:
        Fraction of crosspoints conducting during an evaluation.  The
        augmented PDIP matrices are block-sparse (A blocks, identity
        links, diagonals), so a dense-array estimate would
        overcharge; ~25% is typical for the Eqn. 14a structure.

    Raises
    ------
    ValueError
        If the result has no crossbar counters (software solver).
    """
    counters = result.crossbar
    if counters is None:
        raise ValueError("result carries no crossbar counters")
    return estimate_energy_from_counts(
        multiplies=counters.multiplies,
        solves=counters.solves,
        cells_written=counters.cells_written,
        write_energy_j=counters.write_energy_j,
        array_size=counters.array_size,
        iterations=result.iterations,
        device=device,
        model=model,
        cell_density=cell_density,
    )
