"""Energy estimation for crossbar solver runs (Fig. 7 methodology).

Mirrors :mod:`repro.costmodel.latency`: measured counters priced with
the device and periphery models.

- **writes** — programming pulses including half-select disturbance,
  accumulated physically by the array simulator;
- **analog evaluations** — every populated cell conducts during a
  multiply/solve settle window;
- **conversions** — one DAC and one ADC conversion per active channel
  per evaluation;
- **digital** — controller coefficient computations and the summing
  amplifiers.
"""

from __future__ import annotations

import dataclasses

from repro.core.result import SolverResult
from repro.costmodel.parameters import DEFAULT_COST_MODEL, CostModelParameters
from repro.devices.models import DeviceParameters


@dataclasses.dataclass(frozen=True)
class EnergyBreakdown:
    """Per-phase energy of one crossbar solve, joules."""

    write_j: float
    analog_j: float
    conversion_j: float
    digital_j: float

    @property
    def total_j(self) -> float:
        """End-to-end estimated energy, joules."""
        return self.write_j + self.analog_j + self.conversion_j + (
            self.digital_j
        )


def estimate_energy(
    result: SolverResult,
    device: DeviceParameters,
    model: CostModelParameters = DEFAULT_COST_MODEL,
    *,
    cell_density: float = 0.25,
) -> EnergyBreakdown:
    """Price a crossbar solve's counters with the device/periphery model.

    Parameters
    ----------
    result:
        A :class:`SolverResult` from one of the crossbar solvers; must
        carry :class:`~repro.core.result.CrossbarCounters`.
    device:
        The memristor preset the solve ran with.
    model:
        Periphery and controller constants.
    cell_density:
        Fraction of crosspoints conducting during an evaluation.  The
        augmented PDIP matrices are block-sparse (A blocks, identity
        links, diagonals), so a dense-array estimate would
        overcharge; ~25% is typical for the Eqn. 14a structure.

    Raises
    ------
    ValueError
        If the result has no crossbar counters (software solver).
    """
    counters = result.crossbar
    if counters is None:
        raise ValueError("result carries no crossbar counters")
    if not 0.0 < cell_density <= 1.0:
        raise ValueError("cell_density must lie in (0, 1]")
    peri = model.peripherals
    evaluations = counters.multiplies + counters.solves
    active_cells = cell_density * counters.array_size**2
    analog = evaluations * active_cells * device.read_energy_per_cell
    conversion = evaluations * counters.array_size * (
        peri.dac_energy_j + peri.adc_energy_j
    )
    digital = (
        counters.cells_written * peri.digital_op_energy_j
        + result.iterations
        * counters.array_size
        * peri.summing_amp_energy_j
    )
    return EnergyBreakdown(
        write_j=counters.write_energy_j,
        analog_j=analog,
        conversion_j=conversion,
        digital_j=digital,
    )
