"""Cost-model constants with provenance notes.

Figs. 6 and 7 of the paper are *estimates*: the authors ran the PDIP
simulation to get iteration counts, then priced each iteration with a
device model (Yakopcic et al., NAECON 2014 [23]) and compared against
measured Matlab ``linprog`` wall-clock on an i7-6700.  This module
collects every constant that enters the reproduction of that
methodology.  Where the paper prints a number, it is used as the
anchor; where it does not, a representative figure from the cited
literature is used and marked as such.

Anchors printed in Section 4.4 of the paper:

==========================================  =========
Matlab linprog, m=1024, feasible            6.23 s
Matlab linprog, m=1024, feasible (energy)   218.1 J
Matlab linprog, m=1024, infeasible          ~30 s
Matlab linprog, m=1024, infeasible (energy) 1023.1 J
Solver 1, m=1024, no variation              78 ms / 0.9 J
Solver 1, m=1024, 5% variation              155 ms / 6.2 J
Solver 1, m=1024, 10% variation             195 ms / 8.9 J
Solver 1, m=1024, 20% variation             239 ms / 12.1 J
Solver 1, m=1024, infeasible, 20% var       265 ms / 10.9 J
Solver 2, m=1024, 20% variation             < 80 ms
==========================================  =========

The implied CPU power is ``218.1 J / 6.23 s = 35 W`` (and
``1023.1 / 30 = 34.1 W`` — consistent), which anchors the CPU energy
model.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class PeripheralParameters:
    """Mixed-signal periphery and controller constants.

    All values are representative of published 8-bit converter and
    28-65 nm digital-controller figures; they enter the latency/energy
    estimates alongside the memristor device model.

    Attributes
    ----------
    dac_latency_s / adc_latency_s:
        Conversion time of one 8-bit DAC / ADC channel.  Channels
        operate in parallel (one per word/bit line), so one analog
        evaluation pays one DAC plus one ADC latency.
    dac_energy_j / adc_energy_j:
        Energy per conversion per channel.
    summing_amp_latency_s:
        Settling of the summing-amplifier stage assembling r (Eqn. 15a).
    summing_amp_energy_j:
        Energy per summed element.
    digital_op_latency_s:
        Controller time per coefficient computed/updated (pipelined
        fixed-point); the O(N) per-iteration updates are priced with
        this.
    digital_op_energy_j:
        Controller energy per coefficient operation.
    iteration_overhead_s:
        Fixed per-iteration sequencing overhead of the FSM controller.
    """

    dac_latency_s: float = 5e-9
    adc_latency_s: float = 10e-9
    dac_energy_j: float = 2e-12
    adc_energy_j: float = 5e-12
    summing_amp_latency_s: float = 10e-9
    summing_amp_energy_j: float = 0.1e-12
    digital_op_latency_s: float = 1e-9
    digital_op_energy_j: float = 10e-12
    iteration_overhead_s: float = 50e-9


@dataclasses.dataclass(frozen=True)
class CpuModelParameters:
    """Calibrated CPU (Matlab linprog / software PDIP) cost model.

    The model is ``T(N) = overhead + k * N**3`` with ``N = n + m`` and
    ``k`` fixed by the paper's m=1024 anchor (n = m/3, so N = 1365).
    Infeasibility detection gets its own anchor (the paper reports it
    ~5x slower for linprog).  Energy is ``power_w * T``.

    Attributes
    ----------
    linprog_anchor_seconds:
        Measured linprog wall-clock at the anchor size (6.23 s).
    linprog_infeasible_anchor_seconds:
        Measured linprog wall-clock to detect infeasibility (30 s).
    pdip_matlab_factor:
        Software-PDIP-in-Matlab slowdown relative to linprog (the
        paper's Fig. 6(a) plots it as the slowest curve; the exact
        factor is not printed — 2x is used, marked as an assumption).
    anchor_constraints:
        The m of the anchor (1024).
    overhead_seconds:
        Fixed solver overhead dominating small problems.
    power_w:
        CPU package power implied by the paper's energy anchors
        (218.1 J / 6.23 s ≈ 35 W).
    """

    linprog_anchor_seconds: float = 6.23
    linprog_infeasible_anchor_seconds: float = 30.0
    pdip_matlab_factor: float = 2.0
    anchor_constraints: int = 1024
    overhead_seconds: float = 5e-3
    power_w: float = 35.0


@dataclasses.dataclass(frozen=True)
class CostModelParameters:
    """Bundle of all cost-model constants."""

    peripherals: PeripheralParameters = dataclasses.field(
        default_factory=PeripheralParameters
    )
    cpu: CpuModelParameters = dataclasses.field(
        default_factory=CpuModelParameters
    )


DEFAULT_COST_MODEL = CostModelParameters()
