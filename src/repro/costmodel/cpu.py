"""Calibrated CPU cost model (the "Matlab linprog on an i7" comparator).

The paper measured Matlab ``linprog`` (and a Matlab PDIP
implementation) on an Intel i7-6700 and quotes anchors at m = 1024
(Section 4.4).  This module scales those anchors across problem sizes
with the dense interior-point cost law ``T(N) = overhead + k·N³``
(``N = n + m``: each IPM iteration factors a dense system of that
order; iteration counts grow only logarithmically and are folded into
``k``).

Two calibrations are available:

- :func:`linprog_latency` / :func:`software_pdip_latency` — anchored to
  the paper's printed numbers, used to regenerate Figs. 6–7 with the
  paper's own comparator;
- :func:`calibrate_local` — measures scipy's HiGHS on this machine and
  refits ``k``, for honest same-machine comparisons.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.baselines.scipy_linprog import timed_solve_scipy
from repro.costmodel.parameters import CpuModelParameters
from repro.workloads.random_lp import (
    random_feasible_lp,
    variables_for_constraints,
)


def _order(m: int, n: int | None = None) -> int:
    n = variables_for_constraints(m) if n is None else n
    return n + m


def linprog_latency(
    m: int,
    n: int | None = None,
    *,
    infeasible: bool = False,
    params: CpuModelParameters | None = None,
) -> float:
    """Estimated linprog wall-clock (seconds) at m constraints.

    Cubic scaling from the paper's m=1024 anchor, with a fixed overhead
    floor that dominates tiny problems.
    """
    params = params if params is not None else CpuModelParameters()
    anchor = (
        params.linprog_infeasible_anchor_seconds
        if infeasible
        else params.linprog_anchor_seconds
    )
    n_anchor = _order(params.anchor_constraints)
    k = (anchor - params.overhead_seconds) / n_anchor**3
    return params.overhead_seconds + k * _order(m, n) ** 3


def software_pdip_latency(
    m: int,
    n: int | None = None,
    *,
    infeasible: bool = False,
    params: CpuModelParameters | None = None,
) -> float:
    """Estimated Matlab-PDIP wall-clock — a factor above linprog."""
    params = params if params is not None else CpuModelParameters()
    return params.pdip_matlab_factor * linprog_latency(
        m, n, infeasible=infeasible, params=params
    )


def cpu_energy(latency_s: float, params: CpuModelParameters | None = None
               ) -> float:
    """CPU energy (joules) at the paper-implied package power."""
    params = params if params is not None else CpuModelParameters()
    if latency_s < 0:
        raise ValueError("latency must be non-negative")
    return params.power_w * latency_s


def calibrate_local(
    *,
    sizes: tuple[int, ...] = (64, 128, 256),
    trials: int = 3,
    rng: np.random.Generator | None = None,
) -> CpuModelParameters:
    """Refit the cubic coefficient to this machine's scipy HiGHS.

    Solves random feasible LPs at the given sizes, fits
    ``T = overhead + k·N³`` by least squares on (N³, T), and returns a
    parameter set whose m=1024 anchor is the fit's prediction.  The
    infeasible anchor and power keep the paper's ratios.
    """
    rng = rng if rng is not None else np.random.default_rng()
    orders = []
    times = []
    for m in sizes:
        for _ in range(trials):
            problem = random_feasible_lp(m, rng=rng)
            _, elapsed = timed_solve_scipy(problem)
            orders.append(_order(m))
            times.append(elapsed)
    design = np.vstack(
        [np.ones(len(orders)), np.asarray(orders, dtype=float) ** 3]
    ).T
    coeffs, *_ = np.linalg.lstsq(design, np.asarray(times), rcond=None)
    overhead = max(float(coeffs[0]), 1e-6)
    k = max(float(coeffs[1]), 1e-15)
    defaults = CpuModelParameters()
    anchor = overhead + k * _order(defaults.anchor_constraints) ** 3
    ratio = (
        defaults.linprog_infeasible_anchor_seconds
        / defaults.linprog_anchor_seconds
    )
    return dataclasses.replace(
        defaults,
        linprog_anchor_seconds=anchor,
        linprog_infeasible_anchor_seconds=anchor * ratio,
        overhead_seconds=overhead,
    )
