"""Latency and energy estimation (the Figs. 6–7 methodology)."""

from repro.costmodel.cpu import (
    calibrate_local,
    cpu_energy,
    linprog_latency,
    software_pdip_latency,
)
from repro.costmodel.energy import (
    EnergyBreakdown,
    estimate_energy,
    estimate_energy_from_counts,
)
from repro.costmodel.latency import LatencyBreakdown, estimate_latency
from repro.costmodel.parameters import (
    DEFAULT_COST_MODEL,
    CostModelParameters,
    CpuModelParameters,
    PeripheralParameters,
)

__all__ = [
    "CostModelParameters",
    "CpuModelParameters",
    "PeripheralParameters",
    "DEFAULT_COST_MODEL",
    "LatencyBreakdown",
    "estimate_latency",
    "EnergyBreakdown",
    "estimate_energy",
    "estimate_energy_from_counts",
    "linprog_latency",
    "software_pdip_latency",
    "cpu_energy",
    "calibrate_local",
]
