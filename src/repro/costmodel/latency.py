"""Latency estimation for crossbar solver runs (Fig. 6 methodology).

The estimate follows the paper's recipe: take the *measured* iteration
count and analog-operation counters from a simulated solve, then price
them with the device and periphery models:

- **writes** — the dominant term: each iteration rewrites ~2.7N
  coefficients, each costing a train of programming pulses (already
  accumulated physically by the array simulator into
  ``CrossbarCounters.write_latency_s``);
- **analog evaluations** — each multiply or solve settles in O(1):
  one DAC latency, the crossbar settle time, one ADC latency;
- **digital/controller** — the O(N) coefficient computations, the
  summing-amplifier assembly of r, and fixed per-iteration sequencing.
"""

from __future__ import annotations

import dataclasses

from repro.core.result import SolverResult
from repro.costmodel.parameters import DEFAULT_COST_MODEL, CostModelParameters
from repro.devices.models import DeviceParameters


@dataclasses.dataclass(frozen=True)
class LatencyBreakdown:
    """Per-phase latency of one crossbar solve, seconds.

    Attributes
    ----------
    write_s:
        Device programming time (pulse trains, sequential per array).
    analog_s:
        Crossbar settle time across all multiply/solve evaluations.
    conversion_s:
        DAC + ADC conversion time across all evaluations.
    digital_s:
        Controller coefficient computation, summing amplifiers, and
        per-iteration sequencing overhead.
    """

    write_s: float
    analog_s: float
    conversion_s: float
    digital_s: float

    @property
    def total_s(self) -> float:
        """End-to-end estimated latency, seconds."""
        return self.write_s + self.analog_s + self.conversion_s + (
            self.digital_s
        )


def estimate_latency(
    result: SolverResult,
    device: DeviceParameters,
    model: CostModelParameters = DEFAULT_COST_MODEL,
) -> LatencyBreakdown:
    """Price a crossbar solve's counters with the device/periphery model.

    Parameters
    ----------
    result:
        A :class:`SolverResult` from one of the crossbar solvers; must
        carry :class:`~repro.core.result.CrossbarCounters`.
    device:
        The memristor preset the solve ran with (supplies the analog
        settle time; write costs were accumulated by the simulator).
    model:
        Periphery and controller constants.

    Raises
    ------
    ValueError
        If the result has no crossbar counters (software solver).
    """
    counters = result.crossbar
    if counters is None:
        raise ValueError("result carries no crossbar counters")
    peri = model.peripherals
    evaluations = counters.multiplies + counters.solves
    analog = evaluations * device.read_settle_time
    conversion = evaluations * (peri.dac_latency_s + peri.adc_latency_s)
    # Summing amplifiers assemble r element-parallel: one settle per
    # iteration regardless of width.
    digital = counters.cells_written * peri.digital_op_latency_s + (
        result.iterations
        * (peri.iteration_overhead_s + peri.summing_amp_latency_s)
    )
    return LatencyBreakdown(
        write_s=counters.write_latency_s,
        analog_s=analog,
        conversion_s=conversion,
        digital_s=digital,
    )
