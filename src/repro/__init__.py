"""Memristor-crossbar linear program solver (PDIP) — paper reproduction.

Reproduction of Cai, Ren, Soundarajan & Wang, *"A Low-Computation-
Complexity, Energy-Efficient, and High-Performance Linear Program
Solver based on Primal Dual Interior Point Method Using Memristor
Crossbars"* (SOCC 2016 / Nano Communication Networks 2018).

Quickstart
----------
>>> import numpy as np
>>> from repro import LinearProgram, solve_crossbar
>>> lp = LinearProgram(
...     c=np.array([3.0, 2.0]),
...     A=np.array([[1.0, 1.0], [2.0, 0.5]]),
...     b=np.array([4.0, 5.0]),
... )
>>> result = solve_crossbar(lp, rng=np.random.default_rng(0))
>>> result.status
<SolveStatus.OPTIMAL: 'optimal'>

Subpackages
-----------
- :mod:`repro.core` — the PDIP solvers (software reference, Solver 1,
  Solver 2) and problem types.
- :mod:`repro.crossbar` — the analog crossbar simulator.
- :mod:`repro.devices` — memristor device models and variation.
- :mod:`repro.reliability` — write–verify programming, health probes,
  and the recovery escalation ladder.
- :mod:`repro.noc` — multi-tile scale-out (Fig. 3).
- :mod:`repro.baselines` — simplex, iterative solvers, scipy adapter.
- :mod:`repro.costmodel` — latency/energy estimation (Figs. 6-7).
- :mod:`repro.workloads` — random/routing/scheduling LP generators.
- :mod:`repro.experiments` — figure/table regeneration harness.
"""

from repro.core import (
    CrossbarPDIPSolver,
    CrossbarSolverSettings,
    FailureReason,
    LargeScaleCrossbarPDIPSolver,
    LinearProgram,
    PDIPSettings,
    ScalableSolverSettings,
    SolverResult,
    SolveStatus,
    solve_crossbar,
    solve_crossbar_large_scale,
    solve_reference,
)
from repro.crossbar import AnalogMatrixOperator
from repro.devices import (
    HP_TIO2,
    YAKOPCIC_NAECON14,
    DeviceParameters,
    NoVariation,
    UniformVariation,
    variation_from_percent,
)
from repro.reliability import (
    ProbePolicy,
    RecoveryPolicy,
    WriteVerifyPolicy,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "LinearProgram",
    "SolverResult",
    "SolveStatus",
    "FailureReason",
    "PDIPSettings",
    "CrossbarSolverSettings",
    "ScalableSolverSettings",
    "solve_reference",
    "solve_crossbar",
    "solve_crossbar_large_scale",
    "CrossbarPDIPSolver",
    "LargeScaleCrossbarPDIPSolver",
    "AnalogMatrixOperator",
    "DeviceParameters",
    "HP_TIO2",
    "YAKOPCIC_NAECON14",
    "NoVariation",
    "UniformVariation",
    "variation_from_percent",
    "RecoveryPolicy",
    "ProbePolicy",
    "WriteVerifyPolicy",
]
