"""Reliability layer: write–verify, health probes, recovery ladder.

The paper's only answer to analog failure is Section 4.5's "reprogram
and hope".  This subpackage wraps both crossbar solvers in a
closed-loop reliability stack:

- :class:`~repro.reliability.verify.WriteVerifyPolicy` — closed-loop
  programming: read back realized conductances, re-pulse
  out-of-tolerance cells up to a budget (configured on
  :class:`~repro.core.settings.CrossbarSolverSettings`).
- :class:`~repro.reliability.probe.ProbePolicy` /
  :func:`~repro.reliability.probe.probe_operator` — post-programming
  array health checks that catch stuck-at-corrupted mappings before
  the PDIP loop burns its iteration budget.
- :class:`~repro.reliability.policy.RecoveryPolicy` /
  :func:`~repro.reliability.recovery.solve_with_recovery` — the
  escalation ladder: reprogram → remap → digital fallback, with
  per-attempt budgets.
- :class:`~repro.reliability.telemetry.AttemptRecord` — structured
  per-attempt history (status, typed failure reason, recovery action,
  probe/verify stats, reproduction seed) attached to every
  :class:`~repro.core.result.SolverResult`.
"""

from repro.reliability.policy import FALLBACK_SOLVERS, RecoveryPolicy
from repro.reliability.probe import (
    ProbePolicy,
    ProbeReport,
    probe_operator,
    probe_operators,
    probe_operators_batched,
    probe_tolerance,
)
from repro.reliability.recovery import (
    run_digital_fallback,
    solve_with_recovery,
)
from repro.reliability.telemetry import (
    AttemptRecord,
    RecoveryAction,
    describe_attempts,
)
from repro.reliability.verify import WriteVerifyPolicy

__all__ = [
    "WriteVerifyPolicy",
    "ProbePolicy",
    "ProbeReport",
    "probe_operator",
    "probe_operators",
    "probe_operators_batched",
    "probe_tolerance",
    "RecoveryPolicy",
    "FALLBACK_SOLVERS",
    "AttemptRecord",
    "RecoveryAction",
    "describe_attempts",
    "solve_with_recovery",
    "run_digital_fallback",
]
