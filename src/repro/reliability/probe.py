"""Array health probes.

Sun et al.'s in-memory linear-system analysis (PAPERS.md) shows that
accuracy collapses *silently* when the conductance mapping degrades:
the PDIP loop happily burns hundreds of iterations on an array whose
realized matrix no longer resembles the programmed one.  A health
probe catches that before the loop starts: drive known vectors through
:meth:`~repro.crossbar.ops.AnalogMatrixOperator.multiply` and compare
the read-out against the digitally computed nominal product.  The
digital controller already holds the nominal coefficients (it
programmed them), so the comparison is free of extra hardware.

The acceptance threshold is derived from the *specified* error
sources — process-variation magnitude plus converter quantization —
times a safety margin, so a healthy noisy array passes while an array
with stuck cells (whose error is not bounded by any spec) fails.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class ProbePolicy:
    """Health-probe configuration.

    Parameters
    ----------
    vectors:
        Probe vectors per array: the all-ones vector (every cell
        contributes) plus ``vectors - 1`` random strictly-positive
        vectors drawn from the attempt RNG.
    margin:
        Safety factor over the specified error budget
        (variation ``relative_magnitude`` + converter resolution).
    min_tolerance:
        Absolute floor of the acceptance threshold, so ideal-hardware
        configurations are not held to a zero-error standard.
    tolerance:
        Explicit threshold override; ``None`` derives it from the
        operator's variation model and converter bits.
    """

    vectors: int = 2
    margin: float = 4.0
    min_tolerance: float = 0.05
    tolerance: float | None = None

    def __post_init__(self) -> None:
        if self.vectors < 1:
            raise ValueError(f"vectors must be >= 1, got {self.vectors}")
        if self.margin <= 0.0:
            raise ValueError(f"margin must be positive, got {self.margin}")
        if self.min_tolerance < 0.0:
            raise ValueError("min_tolerance must be non-negative")
        if self.tolerance is not None and self.tolerance <= 0.0:
            raise ValueError("tolerance override must be positive")


@dataclasses.dataclass(frozen=True)
class ProbeReport:
    """Outcome of probing one (or several) arrays.

    Attributes
    ----------
    max_rel_error:
        Worst deviation of the analog product from the nominal one,
        relative to the nominal product's peak magnitude.
    tolerance:
        Threshold the error was compared against.
    vectors:
        Total probe multiplies performed.
    healthy:
        ``max_rel_error <= tolerance``.
    label:
        Name of the probed array (the worst one, when combined).
    """

    max_rel_error: float
    tolerance: float
    vectors: int
    healthy: bool
    label: str = ""


def probe_tolerance(operator, policy: ProbePolicy) -> float:
    """Acceptance threshold for ``operator`` under ``policy``."""
    if policy.tolerance is not None:
        return policy.tolerance
    bits = [
        b for b in (operator.dac_bits, operator.adc_bits) if b is not None
    ]
    quant_rel = 3.0 * 2.0 ** -min(bits) if bits else 0.0
    spec = operator.variation.relative_magnitude + quant_rel
    return max(policy.min_tolerance, policy.margin * spec)


def probe_operator(
    operator,
    policy: ProbePolicy,
    rng: np.random.Generator,
    *,
    label: str = "",
) -> ProbeReport:
    """Probe one analog operator against its nominal coefficients.

    Drives the all-ones vector plus ``policy.vectors - 1`` random
    positive vectors through the analog multiply and compares each
    read-out with the digital product of the nominal matrix.  Errors
    are normalized by the nominal product's peak: components near zero
    are converter-noise dominated and must not trigger false alarms.
    """
    nominal = operator.coefficients
    tolerance = probe_tolerance(operator, policy)
    worst = 0.0
    for index in range(policy.vectors):
        if index == 0:
            v = np.ones(operator.n_in)
        else:
            v = rng.uniform(0.5, 1.5, size=operator.n_in)
        expected = nominal @ v
        analog = operator.multiply(v)
        peak = float(np.max(np.abs(expected), initial=0.0))
        scale = max(peak, 1e-300)
        worst = max(
            worst, float(np.max(np.abs(analog - expected))) / scale
        )
    return ProbeReport(
        max_rel_error=worst,
        tolerance=tolerance,
        vectors=policy.vectors,
        healthy=worst <= tolerance,
        label=label,
    )


def probe_operators(
    named_operators,
    policy: ProbePolicy,
    rng: np.random.Generator,
) -> ProbeReport:
    """Probe several arrays; return the worst report.

    ``named_operators`` is an iterable of ``(label, operator)`` pairs
    (Solver 2 splits the Newton step across four arrays — any one of
    them being corrupted poisons the iteration).  The combined report
    carries the label of the worst array and the total probe count;
    it is unhealthy if *any* array is.
    """
    worst: ProbeReport | None = None
    total_vectors = 0
    any_unhealthy = False
    for label, operator in named_operators:
        report = probe_operator(operator, policy, rng, label=label)
        total_vectors += report.vectors
        any_unhealthy = any_unhealthy or not report.healthy
        if worst is None or (
            report.max_rel_error / report.tolerance
            > worst.max_rel_error / worst.tolerance
        ):
            worst = report
    if worst is None:
        raise ValueError("no operators to probe")
    return dataclasses.replace(
        worst, vectors=total_vectors, healthy=not any_unhealthy
    )
