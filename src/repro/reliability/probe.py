"""Array health probes.

Sun et al.'s in-memory linear-system analysis (PAPERS.md) shows that
accuracy collapses *silently* when the conductance mapping degrades:
the PDIP loop happily burns hundreds of iterations on an array whose
realized matrix no longer resembles the programmed one.  A health
probe catches that before the loop starts: drive known vectors through
:meth:`~repro.crossbar.ops.AnalogMatrixOperator.multiply` and compare
the read-out against the digitally computed nominal product.  The
digital controller already holds the nominal coefficients (it
programmed them), so the comparison is free of extra hardware.

The acceptance threshold is derived from the *specified* error
sources — process-variation magnitude plus converter quantization —
times a safety margin, so a healthy noisy array passes while an array
with stuck cells (whose error is not bounded by any spec) fails.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.crossbar.array import canonical_colsums
from repro.crossbar.quantization import quantize_auto


@dataclasses.dataclass(frozen=True)
class ProbePolicy:
    """Health-probe configuration.

    Parameters
    ----------
    vectors:
        Probe vectors per array: the all-ones vector (every cell
        contributes) plus ``vectors - 1`` random strictly-positive
        vectors drawn from the attempt RNG.
    margin:
        Safety factor over the specified error budget
        (variation ``relative_magnitude`` + converter resolution).
    min_tolerance:
        Absolute floor of the acceptance threshold, so ideal-hardware
        configurations are not held to a zero-error standard.
    tolerance:
        Explicit threshold override; ``None`` derives it from the
        operator's variation model and converter bits.
    """

    vectors: int = 2
    margin: float = 4.0
    min_tolerance: float = 0.05
    tolerance: float | None = None

    def __post_init__(self) -> None:
        if self.vectors < 1:
            raise ValueError(f"vectors must be >= 1, got {self.vectors}")
        if self.margin <= 0.0:
            raise ValueError(f"margin must be positive, got {self.margin}")
        if self.min_tolerance < 0.0:
            raise ValueError("min_tolerance must be non-negative")
        if self.tolerance is not None and self.tolerance <= 0.0:
            raise ValueError("tolerance override must be positive")


@dataclasses.dataclass(frozen=True)
class ProbeReport:
    """Outcome of probing one (or several) arrays.

    Attributes
    ----------
    max_rel_error:
        Worst deviation of the analog product from the nominal one,
        relative to the nominal product's peak magnitude.
    tolerance:
        Threshold the error was compared against.
    vectors:
        Total probe multiplies performed.
    healthy:
        ``max_rel_error <= tolerance``.
    label:
        Name of the probed array (the worst one, when combined).
    """

    max_rel_error: float
    tolerance: float
    vectors: int
    healthy: bool
    label: str = ""


def probe_tolerance(operator, policy: ProbePolicy) -> float:
    """Acceptance threshold for ``operator`` under ``policy``."""
    if policy.tolerance is not None:
        return policy.tolerance
    bits = [
        b for b in (operator.dac_bits, operator.adc_bits) if b is not None
    ]
    quant_rel = 3.0 * 2.0 ** -min(bits) if bits else 0.0
    spec = operator.variation.relative_magnitude + quant_rel
    return max(policy.min_tolerance, policy.margin * spec)


def probe_operator(
    operator,
    policy: ProbePolicy,
    rng: np.random.Generator,
    *,
    label: str = "",
) -> ProbeReport:
    """Probe one analog operator against its nominal coefficients.

    Drives the all-ones vector plus ``policy.vectors - 1`` random
    positive vectors through the analog multiply and compares each
    read-out with the digital product of the nominal matrix.  Errors
    are normalized by the nominal product's peak: components near zero
    are converter-noise dominated and must not trigger false alarms.
    """
    nominal = operator.coefficients
    tolerance = probe_tolerance(operator, policy)
    worst = 0.0
    for index in range(policy.vectors):
        if index == 0:
            v = np.ones(operator.n_in)
        else:
            v = rng.uniform(0.5, 1.5, size=operator.n_in)
        expected = nominal @ v
        analog = operator.multiply(v)
        peak = float(np.max(np.abs(expected), initial=0.0))
        scale = max(peak, 1e-300)
        worst = max(
            worst, float(np.max(np.abs(analog - expected))) / scale
        )
    return ProbeReport(
        max_rel_error=worst,
        tolerance=tolerance,
        vectors=policy.vectors,
        healthy=worst <= tolerance,
        label=label,
    )


def probe_operators(
    named_operators,
    policy: ProbePolicy,
    rng: np.random.Generator,
) -> ProbeReport:
    """Probe several arrays; return the worst report.

    ``named_operators`` is an iterable of ``(label, operator)`` pairs
    (Solver 2 splits the Newton step across four arrays — any one of
    them being corrupted poisons the iteration).  The combined report
    carries the label of the worst array and the total probe count;
    it is unhealthy if *any* array is.
    """
    worst: ProbeReport | None = None
    total_vectors = 0
    any_unhealthy = False
    for label, operator in named_operators:
        report = probe_operator(operator, policy, rng, label=label)
        total_vectors += report.vectors
        any_unhealthy = any_unhealthy or not report.healthy
        if worst is None or (
            report.max_rel_error / report.tolerance
            > worst.max_rel_error / worst.tolerance
        ):
            worst = report
    if worst is None:
        raise ValueError("no operators to probe")
    return dataclasses.replace(
        worst, vectors=total_vectors, healthy=not any_unhealthy
    )


def _fleet_batchable(operators) -> bool:
    """Whether a fleet of operators can share one batched probe pipeline.

    The batched pipeline replicates the serial analog multiply for the
    plain configuration only: global (scalar) scaling, zero off-state,
    entry-mode converters — and every operator must share shape and
    converter/sense parameters so the stacked tensors are rectangular.
    Anything else is probed serially.
    """
    first = operators[0]
    def signature(op):
        return (
            op.n_out,
            op.n_in,
            op.dac_bits,
            op.adc_bits,
            op.quantization,
            op.off_state,
            bool(op.row_scaling),
            op.params.v_read,
            op.array.g_sense,
        )
    if first.row_scaling or first.off_state != "zero":
        return False
    if first.quantization != "entry":
        return False
    return all(signature(op) == signature(first) for op in operators)


def probe_operators_batched(
    named_operators,
    policy: ProbePolicy,
    rng: np.random.Generator,
) -> list[ProbeReport]:
    """Probe a fleet of arrays, analog multiplies batched.

    Returns one :class:`ProbeReport` per ``(label, operator)`` pair, in
    order, each bitwise identical to what :func:`probe_operator` would
    produce — probe vectors are drawn from ``rng`` in member order
    (exactly the serial draw sequence) and the analog read-out pipeline
    (input gain, DAC, Eqn. 5 with the perturbed conductances, ADC,
    nominal-denominator decode) runs as stacked tensor ops across the
    whole fleet.  Fleets mixing shapes or exotic configurations
    (row scaling, leak off-state, vector-mode converters) fall back to
    per-operator probing.
    """
    named = list(named_operators)
    if not named:
        raise ValueError("no operators to probe")
    operators = [op for _, op in named]
    if len(named) == 1 or not _fleet_batchable(operators):
        return [
            probe_operator(op, policy, rng, label=label)
            for label, op in named
        ]

    first = operators[0]
    n_members = len(operators)
    # Serial draw order: member-major, the all-ones vector first.
    vectors = np.empty((policy.vectors, n_members, first.n_in))
    for member in range(n_members):
        for index in range(policy.vectors):
            vectors[index, member] = (
                np.ones(first.n_in)
                if index == 0
                else rng.uniform(0.5, 1.5, size=first.n_in)
            )

    actual = np.stack([op.array.actual_conductances for op in operators])
    nominal = np.stack([op.array.nominal_conductances for op in operators])
    g_sense = first.array.g_sense
    denom_actual = g_sense + np.stack(
        [canonical_colsums(slice_) for slice_ in actual]
    )
    denom_nominal = g_sense + np.stack(
        [canonical_colsums(slice_) for slice_ in nominal]
    )
    scales = np.stack([op.scale_vector for op in operators])
    coefficients = [op.coefficients for op in operators]

    worst = np.zeros(n_members)
    for index in range(policy.vectors):
        x = vectors[index]
        for op in operators:
            op.tracer.count("analog.multiplies")
        peaks = np.abs(x).max(axis=1)
        s_x = first.params.v_read / peaks
        v_in = quantize_auto(x * s_x[:, None], first.dac_bits, "entry")
        currents = np.matmul(
            actual.transpose(0, 2, 1), v_in[:, :, None]
        )[:, :, 0]
        v_out = quantize_auto(
            currents / denom_actual, first.adc_bits, "entry"
        )
        analog = v_out * denom_nominal / (scales * s_x[:, None])
        for member in range(n_members):
            expected = coefficients[member] @ x[member]
            peak = float(np.max(np.abs(expected), initial=0.0))
            scale = max(peak, 1e-300)
            worst[member] = max(
                worst[member],
                float(np.max(np.abs(analog[member] - expected))) / scale,
            )

    reports = []
    for member, (label, op) in enumerate(named):
        tolerance = probe_tolerance(op, policy)
        reports.append(
            ProbeReport(
                max_rel_error=float(worst[member]),
                tolerance=tolerance,
                vectors=policy.vectors,
                healthy=float(worst[member]) <= tolerance,
                label=label,
            )
        )
    return reports
