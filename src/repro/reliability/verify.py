"""Write–verify programming policy.

The paper programs a device open-loop: issue the pulse train that the
nominal device model says realizes the target conductance, and accept
whatever process variation delivers (Eqn. 18).  Real programming
controllers close the loop instead — *write–verify*: after writing,
read each cell back, and re-pulse the cells whose realized conductance
is outside a relative tolerance of the target, up to a pulse budget.

:class:`WriteVerifyPolicy` configures that loop; the loop itself lives
in :meth:`repro.crossbar.array.CrossbarArray._verify_written` so every
programming event (full programs and the O(N) per-iteration cell
updates) is covered.  Costs are folded into the
:class:`~repro.crossbar.programming.WriteReport`: extra pulses, their
latency/energy, plus the verify-specific counters (read-backs,
re-pulsed cells, and cells still out of tolerance when the budget ran
out — persistent deviations such as stuck-at faults, which re-pulsing
cannot heal; see :meth:`repro.devices.faults.StuckAtFaults.reperturb`).
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class WriteVerifyPolicy:
    """Closed-loop programming configuration.

    Parameters
    ----------
    tolerance:
        Maximum accepted relative deviation of a cell's realized
        conductance from its target.  Targets at the off state use
        ``g_off`` as the reference magnitude, so a stuck-ON cell in an
        isolated position is always flagged.
    max_rounds:
        Read-back / re-pulse rounds per programming event (the pulse
        budget).  Cells still out of tolerance afterwards are counted
        as ``unverified_cells`` in the write report.
    """

    tolerance: float = 0.05
    max_rounds: int = 3

    def __post_init__(self) -> None:
        if self.tolerance <= 0.0:
            raise ValueError(
                f"tolerance must be positive, got {self.tolerance}"
            )
        if self.max_rounds < 1:
            raise ValueError(
                f"max_rounds must be >= 1, got {self.max_rounds}"
            )
