"""The configurable recovery escalation policy.

The paper's only failure handling is Section 4.5's "double checking
scheme": reprogram and resolve, a fixed number of times.
:class:`RecoveryPolicy` generalizes that into a deterministic ladder:

1. **reprogram** — rewrite the same array (fresh process-variation
   draw) and solve again; cheap, fixes soft-variation bad luck;
2. **remap** — allocate a fresh physical array: new variation *and*
   stuck-at fault draw; fixes arrays with hard faults;
3. **digital fallback** — give up on analog and solve with the
   software reference PDIP or scipy/HiGHS; always terminates with a
   classified answer.

Health probing (:mod:`repro.reliability.probe`) gates each analog
attempt so a corrupted array is rejected in O(probe vectors) analog
multiplies instead of a full PDIP iteration budget.
"""

from __future__ import annotations

import dataclasses

from repro.reliability.probe import ProbePolicy

#: Valid ``digital_fallback`` selectors -> description.
FALLBACK_SOLVERS = ("reference", "scipy")


@dataclasses.dataclass(frozen=True)
class RecoveryPolicy:
    """Escalation ladder configuration.

    Parameters
    ----------
    reprograms:
        Extra attempts on rung 1 (reprogram, fresh variation draw)
        after the initial attempt fails.
    remaps:
        Attempts on rung 2 (remap onto a fresh array, fresh fault
        draw) after the reprogram budget is exhausted.
    digital_fallback:
        ``"reference"`` (software PDIP), ``"scipy"`` (HiGHS), or
        ``None`` to disable rung 3.
    probe:
        Health-probe policy applied after programming, before each
        attempt's PDIP loop; ``None`` disables probing.
    """

    reprograms: int = 2
    remaps: int = 1
    digital_fallback: str | None = None
    probe: ProbePolicy | None = dataclasses.field(
        default_factory=ProbePolicy
    )

    def __post_init__(self) -> None:
        if self.reprograms < 0:
            raise ValueError("reprograms must be non-negative")
        if self.remaps < 0:
            raise ValueError("remaps must be non-negative")
        if (
            self.digital_fallback is not None
            and self.digital_fallback not in FALLBACK_SOLVERS
        ):
            raise ValueError(
                f"unknown digital fallback {self.digital_fallback!r}; "
                f"expected one of {FALLBACK_SOLVERS} or None"
            )

    @property
    def analog_attempts(self) -> int:
        """Total analog attempts the ladder will make."""
        return 1 + self.reprograms + self.remaps

    @classmethod
    def from_settings(cls, settings) -> "RecoveryPolicy":
        """The paper-faithful legacy policy implied by ``settings``.

        ``settings.retries`` reprogram attempts, no remap rung, no
        probe, no fallback — exactly the Section 4.5 behavior the
        solvers had before the reliability layer existed.
        """
        return cls(
            reprograms=settings.retries,
            remaps=0,
            digital_fallback=None,
            probe=None,
        )
