"""The recovery-ladder executor.

:func:`solve_with_recovery` runs a solver's single-attempt callable
through the rungs of a :class:`~repro.reliability.policy.RecoveryPolicy`
and assembles the structured attempt history.  Both crossbar solvers
delegate their ``solve()`` to this engine, replacing the ad-hoc retry
loops that classified failures by message-substring matching.

Semantics preserved from the paper's scheme:

- an attempt ending OPTIMAL or INFEASIBLE is conclusive and returns
  immediately (with "succeeded on retry k" appended when k > 0);
- if *every* analog attempt stalled without a feasible iterate (the
  Section 3.2 / 4.5 reading: no iterate ever passed ``A x <= alpha b``)
  and no digital fallback is configured, the verdict is INFEASIBLE;
- otherwise the last attempt's result is returned as-is.

New semantics: with ``digital_fallback`` configured, exhausting the
analog rungs escalates to the software solver, which always terminates
with a classified answer — ``solve()`` never surfaces an unclassified
NUMERICAL_FAILURE when a fallback is available.

Every analog attempt draws a fresh 63-bit seed from the solver's
generator and runs on ``default_rng(seed)``; the seed lands in the
:class:`~repro.reliability.telemetry.AttemptRecord` so a failing
analog attempt can be replayed deterministically.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

from repro.core.problem import LinearProgram
from repro.core.result import (
    FailureReason,
    SolverResult,
    SolveStatus,
    with_attempts,
    with_message,
    with_status,
)
from repro.obs.clock import Deadline
from repro.obs.tracer import NOOP, Tracer
from repro.reliability.policy import RecoveryPolicy
from repro.reliability.probe import ProbeReport
from repro.reliability.telemetry import AttemptRecord, RecoveryAction

#: An analog solve attempt: takes the attempt RNG and the ladder rung
#: being executed, returns the result and the health-probe report
#: (``None`` when probing is disabled).  The action lets a solver pick
#: the cheapest faithful retry: a REPROGRAM rung redraws variation on
#: the already-programmed arrays and re-enters the differential update
#: path, while a REMAP rung rebuilds the mapping from scratch.
AttemptFn = Callable[
    [np.random.Generator, "RecoveryAction"],
    "tuple[SolverResult, ProbeReport | None]",
]

_CONCLUSIVE = (SolveStatus.OPTIMAL, SolveStatus.INFEASIBLE)


def _record_for(
    index: int,
    action: RecoveryAction,
    result: SolverResult,
    seed: int | None,
    probe: ProbeReport | None,
) -> AttemptRecord:
    counters = result.crossbar
    return AttemptRecord(
        index=index,
        action=action,
        status=result.status,
        failure_reason=result.failure_reason,
        iterations=result.iterations,
        seed=seed,
        message=result.message,
        probe=probe,
        verify_repulsed=counters.verify_repulsed if counters else 0,
        verify_unverified=counters.verify_unverified if counters else 0,
    )


def run_digital_fallback(
    kind: str, problem: LinearProgram
) -> SolverResult:
    """Rung 3: solve digitally with the selected software solver.

    Imported lazily — the fallback solvers import the settings module,
    which itself imports this package.
    """
    if kind == "reference":
        from repro.core.reference_pdip import solve_reference

        result = solve_reference(problem)
    elif kind == "scipy":
        from repro.baselines.scipy_linprog import solve_scipy

        result = solve_scipy(problem)
    else:  # pragma: no cover - policy validates on construction
        raise ValueError(f"unknown digital fallback {kind!r}")
    if result.status not in _CONCLUSIVE:
        result = dataclasses.replace(
            result, failure_reason=FailureReason.FALLBACK_FAILED
        )
    return result


def deadline_exceeded_result(
    problem: LinearProgram,
    deadline: Deadline,
    last: SolverResult | None = None,
    *,
    where: str = "recovery ladder",
) -> SolverResult:
    """A terminal DEADLINE_EXCEEDED result.

    Built on top of the last attempt's result when one exists (its
    iterates and counters stay visible to post-mortems), or a zero
    result when the deadline ran out before anything could run.
    """
    extra = f"deadline of {deadline.budget_s:.3g}s exceeded in {where}"
    if last is not None:
        return with_status(
            last,
            SolveStatus.NUMERICAL_FAILURE,
            extra,
            failure_reason=FailureReason.DEADLINE_EXCEEDED,
        )
    m, n = problem.A.shape
    return SolverResult(
        status=SolveStatus.NUMERICAL_FAILURE,
        x=np.zeros(n),
        y=np.zeros(m),
        w=np.zeros(m),
        z=np.zeros(n),
        objective=0.0,
        iterations=0,
        message=extra,
        failure_reason=FailureReason.DEADLINE_EXCEEDED,
    )


def solve_with_recovery(
    attempt: AttemptFn,
    policy: RecoveryPolicy,
    problem: LinearProgram,
    rng: np.random.Generator,
    *,
    tracer: Tracer | None = None,
    deadline: Deadline | None = None,
) -> SolverResult:
    """Run ``attempt`` through the recovery ladder of ``policy``.

    Each rung runs inside an ``attempt`` span (attributes: ladder
    index, action, and — once known — the outcome) and bumps the
    ``recovery.attempts`` counter, so a trace can apportion wall-clock
    time and analog-op counts to individual rungs.

    An expired ``deadline`` stops the ladder between rungs (including
    before the digital-fallback rung): the job times out with a
    machine-readable DEADLINE_EXCEEDED instead of burning the full
    escalation budget for a caller that has already given up.
    """
    tracer = tracer if tracer is not None else NOOP
    schedule = (
        [RecoveryAction.INITIAL]
        + [RecoveryAction.REPROGRAM] * policy.reprograms
        + [RecoveryAction.REMAP] * policy.remaps
    )
    records: list[AttemptRecord] = []
    last: SolverResult | None = None
    for index, action in enumerate(schedule):
        if deadline is not None and deadline.expired:
            tracer.count("recovery.deadline_stops")
            result = deadline_exceeded_result(
                problem, deadline, last, where=f"rung {index}"
            )
            records.append(
                _record_for(index, action, result, None, None)
            )
            return with_attempts(result, records)
        seed = int(rng.integers(0, 2**63))
        with tracer.span(
            "attempt", index=index, action=action.value
        ) as span:
            tracer.count("recovery.attempts")
            result, probe = attempt(np.random.default_rng(seed), action)
            span.set(
                status=result.status.value, iterations=result.iterations
            )
        records.append(_record_for(index, action, result, seed, probe))
        last = result
        if result.status in _CONCLUSIVE:
            if index:
                result = with_message(
                    result, f"succeeded on retry {index} ({action.value})"
                )
            return with_attempts(result, records)

    assert last is not None  # schedule always has the initial rung

    if deadline is not None and deadline.expired:
        tracer.count("recovery.deadline_stops")
        result = deadline_exceeded_result(
            problem, deadline, last, where="pre-fallback"
        )
        records.append(
            _record_for(
                len(records),
                RecoveryAction.DIGITAL_FALLBACK,
                result,
                None,
                None,
            )
        )
        return with_attempts(result, records)

    if policy.digital_fallback is not None:
        with tracer.span(
            "attempt",
            index=len(records),
            action=RecoveryAction.DIGITAL_FALLBACK.value,
            kind=policy.digital_fallback,
        ) as span:
            tracer.count("recovery.attempts")
            result = run_digital_fallback(policy.digital_fallback, problem)
            span.set(
                status=result.status.value, iterations=result.iterations
            )
        result = with_message(
            result,
            f"digital fallback ({policy.digital_fallback}) after "
            f"{len(records)} analog attempts",
        )
        records.append(
            _record_for(
                len(records),
                RecoveryAction.DIGITAL_FALLBACK,
                result,
                None,
                None,
            )
        )
        return with_attempts(result, records)

    if all(
        record.failure_reason is FailureReason.NO_FEASIBLE_ITERATE
        for record in records
    ):
        # Section 3.2 / 4.5: the final constraints check A x <= alpha b
        # is the paper's feasibility verdict.  Every attempt (each with
        # a fresh variation draw) stalled without any iterate passing
        # it: report infeasible.
        return with_attempts(
            with_status(
                last,
                SolveStatus.INFEASIBLE,
                "no attempt produced an iterate passing A x <= alpha b",
            ),
            records,
        )
    return with_attempts(last, records)
