"""Structured failure telemetry for the recovery ladder.

Every solve attempt — the initial analog run, each recovery rung, and
the digital fallback — leaves an :class:`AttemptRecord` in the final
:attr:`~repro.core.result.SolverResult.attempts` history, so a
production service can answer "which rung produced this answer, and
why did the earlier ones fail?" without parsing log strings.

Each analog attempt also records the RNG seed that drove its process-
variation and fault draws: re-running the solver's ``_solve_once``
with ``numpy.random.default_rng(record.seed)`` reproduces the failing
attempt bit-for-bit (same problem and settings assumed).
"""

from __future__ import annotations

import dataclasses
import enum

from repro.core.result import FailureReason, SolveStatus
from repro.reliability.probe import ProbeReport


class RecoveryAction(enum.Enum):
    """Which rung of the escalation ladder produced an attempt."""

    #: First analog solve on the freshly programmed array.
    INITIAL = "initial"
    #: Reprogram the same array (fresh variation draw) — the paper's
    #: Section 4.5 "double checking scheme".
    REPROGRAM = "reprogram"
    #: Remap onto a fresh physical array: new variation *and* fault
    #: draw (fault maps are per-array, see devices/faults.py).
    REMAP = "remap"
    #: Give up on analog and solve digitally.
    DIGITAL_FALLBACK = "digital_fallback"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclasses.dataclass(frozen=True)
class AttemptRecord:
    """One rung's outcome in the recovery ladder.

    Attributes
    ----------
    index:
        Position in the ladder (0 = initial attempt).
    action:
        The :class:`RecoveryAction` that produced this attempt.
    status:
        Terminal status of the attempt.
    failure_reason:
        Machine-readable cause if the attempt was inconclusive.
    iterations:
        PDIP iterations the attempt executed (0 when a probe rejected
        the array before the loop started).
    seed:
        RNG seed that drove the attempt's variation/fault draws;
        ``None`` for the digital fallback (deterministic).
    message:
        The attempt's human-readable detail.
    probe:
        Health-probe outcome for the attempt's arrays, if probing was
        enabled.
    verify_repulsed / verify_unverified:
        Write-verify counters accumulated during the attempt: cells
        that needed corrective re-pulses, and cells left out of
        tolerance (persistent faults).
    """

    index: int
    action: RecoveryAction
    status: SolveStatus
    failure_reason: FailureReason
    iterations: int
    seed: int | None
    message: str = ""
    probe: ProbeReport | None = None
    verify_repulsed: int = 0
    verify_unverified: int = 0

    @property
    def conclusive(self) -> bool:
        """Whether this attempt settled the problem."""
        return self.status in (SolveStatus.OPTIMAL, SolveStatus.INFEASIBLE)


def describe_attempts(attempts) -> str:
    """One line per attempt, for CLI output and logs."""
    lines = []
    for record in attempts:
        seed = "-" if record.seed is None else str(record.seed)
        detail = record.failure_reason.value
        if record.probe is not None and not record.probe.healthy:
            detail += (
                f" (probe {record.probe.label or 'array'}:"
                f" {record.probe.max_rel_error:.3g}"
                f" > {record.probe.tolerance:.3g})"
            )
        lines.append(
            f"[{record.index}] {record.action.value:<16}"
            f" {record.status.value:<17} reason={detail} seed={seed}"
        )
    return "\n".join(lines)
