"""Pluggable tensor backends for the batched analog engine.

The batched crossbar stack (:mod:`repro.crossbar.stack`) dispatches
its two hot tensor primitives — the transposed batched matvec and the
transposed batched solve — through a :class:`~repro.backend.base.Backend`.
Everything else (column sums, variation draws, write planning) stays
in numpy for bitwise reproducibility against the serial path.

Selection order for :func:`get_backend`:

1. an explicit ``name`` argument (config wins);
2. the ``REPRO_BACKEND`` environment variable;
3. the numpy default.

The torch backend is an optional extra (``pip install repro[torch]``)
and is import-guarded: requesting it without torch installed raises a
clear error instead of an import crash, and :func:`torch_available`
lets callers (and the test suite's skip markers) probe for it cheaply.
"""

from __future__ import annotations

import os

from repro.backend.base import Backend
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.torch_backend import TorchBackend, torch_available

#: Environment variable naming the default backend ("numpy" / "torch").
BACKEND_ENV = "REPRO_BACKEND"

_REGISTRY = {
    "numpy": NumpyBackend,
    "torch": TorchBackend,
}

# One shared instance per backend: they are stateless (the torch
# backend caches only its device string).
_instances: dict[str, Backend] = {}


def available_backends() -> tuple[str, ...]:
    """Backend names that can actually be constructed here."""
    names = ["numpy"]
    if torch_available():
        names.append("torch")
    return tuple(names)


def get_backend(name: str | None = None) -> Backend:
    """Resolve a backend by name / ``REPRO_BACKEND`` / numpy default.

    Raises
    ------
    ValueError
        For a name not in the registry.
    ImportError
        For the torch backend when torch is not installed.
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV) or "numpy"
    name = name.strip().lower()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None
    if name not in _instances:
        _instances[name] = factory()
    return _instances[name]


__all__ = [
    "Backend",
    "BACKEND_ENV",
    "NumpyBackend",
    "TorchBackend",
    "available_backends",
    "get_backend",
    "torch_available",
]
