"""The batched-tensor backend contract.

A :class:`Backend` supplies the two hot tensor primitives of the
batched analog engine (:mod:`repro.crossbar.stack`): the transposed
matrix–vector read-out and the transposed linear solve, each evaluated
over a whole ``(K, n, m)`` stack of same-shape crossbars in one call.

The contract is deliberately tiny — everything else in the engine
(column-sum caches, variation draws, write planning) stays in numpy on
the host, because those paths must be *bitwise* reproducible against
the serial :class:`~repro.crossbar.array.CrossbarArray` and are cheap
compared to the O(K·n·m) / O(K·n³) primitives below.

Determinism rules:

- the **numpy** backend must be bitwise-identical to the serial path.
  Concretely: ``matvec_t`` evaluates ``np.matmul`` on the *transposed
  view* of the stack (a contiguous copy changes NumPy's pairwise-
  summation blocking and drifts by 1 ULP), and ``solve_t`` passes the
  right-hand sides as a ``(K, n, 1)`` column stack so the gufunc runs
  the same LAPACK ``gesv`` per slice as ``np.linalg.solve`` does for a
  single matrix;
- accelerator backends (torch) are *tolerance*-equal: property tests
  gate them at 1e-10 relative against numpy on well-conditioned
  stacks.
"""

from __future__ import annotations

import abc

import numpy as np


class Backend(abc.ABC):
    """Batched tensor kernels over a stack of same-shape crossbars."""

    #: Registry key and display name ("numpy", "torch", ...).
    name: str = "abstract"

    @abc.abstractmethod
    def matvec_t(self, stack: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Per-member transposed read-out ``out[k] = stack[k].T @ v[k]``.

        ``stack`` is ``(K, n, m)``, ``v`` is ``(K, n)``; returns
        ``(K, m)``.
        """

    @abc.abstractmethod
    def solve_t(self, stack: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Per-member transposed solve ``stack[k].T @ out[k] = rhs[k]``.

        ``stack`` is ``(K, n, n)``, ``rhs`` is ``(K, n)``; returns
        ``(K, n)``.  Raises :class:`numpy.linalg.LinAlgError` when any
        member's system is singular (callers needing per-member
        isolation fall back to member-wise solves on that error).
        """

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"
