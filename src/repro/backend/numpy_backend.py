"""Default numpy backend: bitwise-identical to the serial path.

The two kernels are the exact expressions the property suite pins
against member-by-member evaluation
(``tests/property/test_batched_engine.py``):

- ``matvec_t`` calls ``np.matmul`` on the transposed *view* of the
  stack.  NumPy's pairwise summation blocks by memory layout, so a
  contiguous copy of the transpose would drift from the serial
  ``a.T @ v`` by 1 ULP — the view does not.
- ``solve_t`` stacks the right-hand sides as ``(K, n, 1)`` columns;
  the ``linalg.solve`` gufunc then runs the same LAPACK ``gesv`` per
  slice as the serial single-matrix call (a ``(K, n)`` rhs would be
  read as one ``(n, n)`` matrix of simultaneous right-hand sides).
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import Backend


class NumpyBackend(Backend):
    """Batched kernels on the host CPU via numpy gufuncs."""

    name = "numpy"

    def matvec_t(self, stack: np.ndarray, v: np.ndarray) -> np.ndarray:
        """``out[k] = stack[k].T @ v[k]``, bitwise == the serial loop."""
        return np.matmul(stack.transpose(0, 2, 1), v[:, :, None])[:, :, 0]

    def solve_t(self, stack: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """``solve(stack[k].T, rhs[k])``, bitwise == the serial loop."""
        return np.linalg.solve(
            stack.transpose(0, 2, 1), rhs[:, :, None]
        )[:, :, 0]
