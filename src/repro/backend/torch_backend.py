"""Optional torch backend (CPU or GPU) for the batched analog engine.

Torch is an *optional extra* (``pip install repro[torch]``); this
module imports it lazily so the rest of the package works without it.
Select with ``REPRO_BACKEND=torch``; pick the device with
``REPRO_TORCH_DEVICE`` (default ``"cuda"`` when available, else
``"cpu"``).

All transfers are float64: the backend contract is tolerance-equality
(1e-10 relative) against numpy, which float32 cannot meet.  Singular
stacks raise :class:`numpy.linalg.LinAlgError` like the numpy backend,
so callers keep a single failure path.
"""

from __future__ import annotations

import os

import numpy as np

from repro.backend.base import Backend


def torch_available() -> bool:
    """True when the optional torch dependency can be imported."""
    try:
        import torch  # noqa: F401
    except ImportError:
        return False
    return True


def _resolve_device(torch, device: str | None) -> str:
    if device is None:
        device = os.environ.get("REPRO_TORCH_DEVICE", "")
    if device:
        return device
    return "cuda" if torch.cuda.is_available() else "cpu"


class TorchBackend(Backend):
    """Batched kernels via ``torch.linalg`` with CPU/GPU dispatch.

    Parameters
    ----------
    device:
        Torch device string (``"cpu"``, ``"cuda"``, ``"cuda:1"``...).
        ``None`` reads ``REPRO_TORCH_DEVICE``, falling back to CUDA
        when available.
    """

    name = "torch"

    def __init__(self, device: str | None = None) -> None:
        try:
            import torch
        except ImportError as exc:  # pragma: no cover - env-dependent
            raise ImportError(
                "the torch backend needs the optional torch extra: "
                "pip install repro[torch] (or REPRO_BACKEND=numpy)"
            ) from exc
        self._torch = torch
        self.device = _resolve_device(torch, device)

    def _to_device(self, array: np.ndarray):
        return self._torch.from_numpy(
            np.ascontiguousarray(array, dtype=np.float64)
        ).to(self.device)

    def matvec_t(self, stack: np.ndarray, v: np.ndarray) -> np.ndarray:
        """``out[k] = stack[k].T @ v[k]`` on the torch device."""
        t_stack = self._to_device(stack)
        t_v = self._to_device(v)
        out = self._torch.matmul(
            t_stack.transpose(1, 2), t_v.unsqueeze(2)
        ).squeeze(2)
        return out.cpu().numpy()

    def solve_t(self, stack: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """``solve(stack[k].T, rhs[k])`` on the torch device."""
        t_stack = self._to_device(stack)
        t_rhs = self._to_device(rhs)
        try:
            out = self._torch.linalg.solve(
                t_stack.transpose(1, 2), t_rhs.unsqueeze(2)
            ).squeeze(2)
        except RuntimeError as exc:
            # torch reports singular batches as a RuntimeError; keep
            # the numpy failure contract so callers have one path.
            raise np.linalg.LinAlgError(str(exc)) from exc
        result = out.cpu().numpy()
        if not np.all(np.isfinite(result)):
            raise np.linalg.LinAlgError(
                "torch batched solve produced non-finite entries"
            )
        return result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TorchBackend(device={self.device!r})"
