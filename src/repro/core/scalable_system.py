"""System builders for Solver 2 (Algorithm 2, Eqns. 16a–17b).

The large-scale variant splits the Newton system into two much smaller
pieces, solved alternately on crossbars:

- **M1** over ``[Δx, Δy]``: the block matrix ``[A RU; RL Aᵀ]`` of
  Eqn. 16c.  The zero blocks of ``[A 0; 0 Aᵀ]`` are singular for
  non-square A, so the paper fills them with "balancing" blocks RU /
  RL and notes (Algorithm 2) that M1 is updated each iteration "based
  on A, x, y".
- **M2** over ``[Δz, Δw]``: the diagonal ``diag(X, Y)`` of Eqn. 16b,
  reprogrammed every iteration at O(N) cost.

**Reproduction note.** Read literally — RU, RL tiny *constants* and the
right-hand sides exactly as printed in (16a)/(17b) — the iteration
diverges unconditionally: the solve pushes a component of size
``(residual ⟂ range(A)) / ε`` into Δy (see EXPERIMENTS.md, ablation
ABL-LITERAL).  Eliminating Δw and Δz from the *full* Newton system
(9a–9d) shows what the balancing blocks must be:

.. math::

   \\begin{bmatrix} A & -WY^{-1} \\\\ ZX^{-1} & A^T \\end{bmatrix}
   \\begin{bmatrix}\\Delta x\\\\ \\Delta y\\end{bmatrix}
   =
   \\begin{bmatrix} b - Ax - \\mu/y \\\\ c - A^Ty + \\mu/x \\end{bmatrix}

i.e. RU and RL are the *state-dependent diagonals* ``-W/Y`` and
``Z/X`` — "very small" near convergence, exactly matching Algorithm 2's
per-iteration M1 update, and the printed right-hand side
``[b-Ax-w, c-Aᵀy+z]`` coincides with the exact one on the central path
where ``w = μ/y`` and ``z = μ/x``.  The default configuration therefore
uses the state-dependent coupling and exact right-hand side (the
functional reading); the literal constants are retained behind options
for the ablation study.

All analog pieces remain crossbar-native:

- ``μ/x`` and ``μ/y`` are diagonal *solves* on the M2 array;
- the recovery coupling terms ``ZΔx`` and ``WΔy`` are a multiply on a
  fourth diagonal array D = diag(Z, W);
- negative entries (A's negatives, and the RU diagonal, which is
  negative in every Δy column) are eliminated with compensation
  variables exactly as in Eqn. 13.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import LinearProgram


class ScalableNewtonSystem:
    """Index bookkeeping and matrix assembly for Algorithm 2.

    Parameters
    ----------
    problem:
        The LP being solved.
    coupling:
        ``"state"`` (default) — RU = -W/Y, RL = Z/X, updated every
        iteration; ``"constant"`` — the literal reading, RU = -eps*I,
        RL = eps*I (diverges; ablation only).
    regularization:
        The eps used by ``coupling="constant"``.
    ratio_floor:
        Lower clamp on the state-dependent coupling diagonals — they
        must stay strictly positive to be programmable and to keep M1
        non-singular.
    ratio_cap:
        Upper clamp on the coupling diagonals w/y and z/x.  With
        row-scaled arrays this can be generous (1e6); without, a
        diverging ratio would dominate the global conductance scale
        and erase A from the mapping.
    """

    def __init__(
        self,
        problem: LinearProgram,
        *,
        coupling: str = "state",
        regularization: float = 5e-3,
        ratio_floor: float = 1e-6,
        ratio_cap: float = 1e6,
    ) -> None:
        if coupling not in ("state", "constant"):
            raise ValueError(f"unknown coupling mode {coupling!r}")
        if regularization <= 0:
            raise ValueError("regularization must be positive")
        if not 0.0 < ratio_floor <= ratio_cap:
            raise ValueError("ratio_floor must be positive, <= ratio_cap")
        self.problem = problem
        self.coupling = coupling
        self.regularization = float(regularization)
        self.ratio_floor = float(ratio_floor)
        self.ratio_cap = float(ratio_cap)
        A = problem.A
        self.m, self.n = A.shape
        self._a_plus = np.maximum(A, 0.0)
        self._a_minus = np.maximum(-A, 0.0)
        self.neg_cols_a = tuple(
            int(j) for j in np.flatnonzero(np.any(A < 0, axis=0))
        )
        self.k_x = len(self.neg_cols_a)
        # Per-iteration update index vectors, fixed by the problem
        # shape — built once so the hot loop only fills values.
        m, n, k = self.m, self.n, self.k_x
        self._coupling_rows = np.concatenate(
            [m + np.arange(n), np.arange(m)]
        )
        self._coupling_cols = np.concatenate(
            [np.arange(n), n + m + k + np.arange(m)]
        )
        self._diag_idx = np.arange(n + m)

    # ------------------------------------------------------------------
    # M1: columns [Δx (n), Δy (m), Δp (k_x), Δq (m)]
    #     rows    [primal (m), dual (n), p-link (k_x), q-link (m)]
    # Δp are the compensation variables for A's negative columns;
    # Δq = -Δy compensate both the RU diagonal (negative in every Δy
    # column) and Aᵀ's negative entries.
    # ------------------------------------------------------------------

    @property
    def size_m1(self) -> int:
        """Dimension of the (augmented) M1 system: n + 2m + k_x."""
        return self.n + 2 * self.m + self.k_x

    def coupling_diagonals(
        self,
        x: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        z: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(|RU| diag, RL diag): clamped w/y and z/x, or constants."""
        if self.coupling == "constant":
            return (
                np.full(self.m, self.regularization),
                np.full(self.n, self.regularization),
            )
        ru = np.clip(w / y, self.ratio_floor, self.ratio_cap)
        rl = np.clip(z / x, self.ratio_floor, self.ratio_cap)
        return ru, rl

    def build_m1(
        self,
        x: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        z: np.ndarray,
        *,
        with_coupling: bool = True,
    ) -> np.ndarray:
        """The augmented non-negative M1 (Eqn. 16d analogue).

        ``with_coupling=False`` gives the constant multiply matrix of
        Eqn. 17a (coupling blocks zeroed) used to form r1.
        """
        n, m, k = self.n, self.m, self.k_x
        size = self.size_m1
        M = np.zeros((size, size))
        col_x, col_y = 0, n
        col_p, col_q = n + m, n + m + k
        row_p, row_d = 0, m
        row_pl, row_ql = m + n, m + n + k

        M[row_p:row_p + m, col_x:col_x + n] = self._a_plus
        M[row_d:row_d + n, col_y:col_y + m] = self._a_plus.T
        for idx, j in enumerate(self.neg_cols_a):
            M[row_p:row_p + m, col_p + idx] = self._a_minus[:, j]
            M[row_pl + idx, col_x + j] = 1.0
        # Aᵀ's negative entries live in the Δq compensation columns.
        M[row_d:row_d + n, col_q:col_q + m] = self._a_minus.T
        if with_coupling:
            ru, rl = self.coupling_diagonals(x, y, w, z)
            # RU = -diag(ru) on the Δy columns: absolute values go to Δq.
            M[row_p:row_p + m, col_q:col_q + m] += np.diag(ru)
            # RL = +diag(rl) on the Δx columns of the dual rows.
            M[row_d:row_d + n, col_x:col_x + n] += np.diag(rl)
        M[row_pl:row_pl + k, col_p:col_p + k] = np.eye(k)
        M[row_ql:row_ql + m, col_y:col_y + m] = np.eye(m)
        M[row_ql:row_ql + m, col_q:col_q + m] = np.eye(m)
        return M

    def m1_coupling_update(
        self,
        x: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        z: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """O(N) per-iteration cell updates of the M1 solve array.

        Only the two coupling diagonals move: n cells for RL and m for
        |RU| — the "update M1 based on A, x, y" line of Algorithm 2.
        Returned as (rows, cols, values).  Note these are *additive
        overlays* only where A contributes nothing: the RL cells sit on
        the dual-row/x-column diagonal and the |RU| cells on the
        primal-row/q-column diagonal, both structurally zero in A's
        blocks, so plain assignment is correct.
        """
        ru, rl = self.coupling_diagonals(x, y, w, z)
        values = np.concatenate([rl, ru])
        return self._coupling_rows, self._coupling_cols, values

    def state_vector_m1(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Pack ``[x, y, p, q] = [x, y, -x_sel, -y]`` for the r1 multiply."""
        p = -x[list(self.neg_cols_a)] if self.k_x else np.empty(0)
        return np.concatenate([x, y, p, -y])

    def residual_m1(
        self,
        product: np.ndarray,
        mu_over_x: np.ndarray,
        mu_over_y: np.ndarray,
    ) -> np.ndarray:
        """r1 = ``[b - Ax - μ/y, c - Aᵀy + μ/x, 0, 0]``.

        ``product`` is the multiply of the *uncoupled* M1 by the packed
        state, i.e. ``[Ax, Aᵀy, 0, 0]``; ``mu_over_x`` / ``mu_over_y``
        come from a diagonal solve on the M2 array.
        """
        n, m = self.n, self.m
        r = np.zeros(self.size_m1)
        r[:m] = self.problem.b - product[:m] - mu_over_y
        r[m:m + n] = self.problem.c - product[m:m + n] + mu_over_x
        return r

    def paper_residual_m1(
        self,
        product: np.ndarray,
        w: np.ndarray,
        z: np.ndarray,
    ) -> np.ndarray:
        """The literal Eqn. 17a right-hand side ``[b-Ax-w, c-Aᵀy+z, 0]``.

        Used by the ablation mode only: it equals :meth:`residual_m1`
        on the central path (where w = μ/y, z = μ/x) but differs during
        the transient, breaking primal convergence.
        """
        n, m = self.n, self.m
        r = np.zeros(self.size_m1)
        r[:m] = self.problem.b - product[:m] - w
        r[m:m + n] = self.problem.c - product[m:m + n] + z
        return r

    def infeasibility_norms(
        self,
        product: np.ndarray,
        w: np.ndarray,
        z: np.ndarray,
    ) -> tuple[float, float]:
        """(primal, dual) infinity norms from the r1 multiply product.

        ``b - Ax - w`` and ``c - Aᵀy + z`` reuse the analog products
        ``Ax`` and ``Aᵀy`` already computed for r1.
        """
        n, m = self.n, self.m
        primal = self.problem.b - product[:m] - w
        dual = self.problem.c - product[m:m + n] + z
        return (
            float(np.max(np.abs(primal), initial=0.0)),
            float(np.max(np.abs(dual), initial=0.0)),
        )

    def extract_steps_m1(
        self, delta: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Unpack ``(Δx, Δy)`` from the M1 solution."""
        if delta.shape != (self.size_m1,):
            raise ValueError(
                f"expected solution of shape ({self.size_m1},), got "
                f"{delta.shape}"
            )
        return delta[: self.n].copy(), delta[self.n:self.n + self.m].copy()

    # ------------------------------------------------------------------
    # M2 = diag(X, Y) and D = diag(Z, W)
    # ------------------------------------------------------------------

    @property
    def size_m2(self) -> int:
        """Dimension of the M2 / D systems: n + m."""
        return self.n + self.m

    def m2_diagonal(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Diag entries ``[x, y]`` of Eqn. 16b's matrix (order: x, y)."""
        return np.concatenate([x, y])

    def build_m2(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """The diagonal matrix diag(X, Y) of Eqn. 16b."""
        return np.diag(self.m2_diagonal(x, y))

    def d_diagonal(self, z: np.ndarray, w: np.ndarray) -> np.ndarray:
        """Diag entries ``[z, w]`` of the recovery-coupling array D."""
        return np.concatenate([z, w])

    def build_d(self, z: np.ndarray, w: np.ndarray) -> np.ndarray:
        """The diagonal matrix diag(Z, W) multiplying ``[Δx, Δy]``."""
        return np.diag(self.d_diagonal(z, w))

    def diag_update(
        self,
        values: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(rows, cols, values) for reprogramming a diagonal array."""
        if values.shape[0] == self._diag_idx.shape[0]:
            idx = self._diag_idx
        else:  # pragma: no cover - diagonals are always n + m today
            idx = np.arange(values.shape[0])
        return idx, idx, values

    def residual_m2(
        self,
        mu: float,
        xz_yw_product: np.ndarray,
        coupling_product: np.ndarray | None,
    ) -> np.ndarray:
        """r2 for the recovery solve (Eqn. 16b, with coupling).

        ``xz_yw_product`` is ``M2 @ [z, w] = [XZe, YWe]``;
        ``coupling_product`` is ``D @ [Δx, Δy] = [ZΔx, WΔy]`` (pass
        ``None`` for the literal Eqn. 17b, which omits it).
        """
        r = mu * np.ones(self.size_m2) - xz_yw_product
        if coupling_product is not None:
            r = r - coupling_product
        return r

    def extract_steps_m2(
        self, delta: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Unpack ``(Δz, Δw)`` from the M2 recovery solution."""
        if delta.shape != (self.size_m2,):
            raise ValueError(
                f"expected solution of shape ({self.size_m2},), got "
                f"{delta.shape}"
            )
        return delta[: self.n].copy(), delta[self.n:].copy()
