"""Solver 2: the crossbar LP solver for large-scale operations.

Implements Algorithm 2 of the paper.  Instead of one crossbar of size
~4(n+m) (Solver 1), the Newton step is split across four much smaller
arrays:

- **M1 solve array** (size n + 2m + k): ``[A RU; RL Aᵀ]`` with its
  negative entries eliminated by compensation variables; the coupling
  diagonals RU / RL are rewritten each iteration — O(N) cells;
- **M1 multiply array**: the same structure with the coupling blocks
  zeroed (Eqn. 17a) — programmed once, computes ``Ax`` and ``Aᵀy``
  for the residuals;
- **M2 array**: ``diag(X, Y)`` (Eqn. 16b) — O(N) rewrite per
  iteration; used to *solve* for the recovery steps and, in the exact
  rhs mode, to compute the analog divisions ``μ/x`` and ``μ/y``;
- **D array**: ``diag(Z, W)`` — O(N) rewrite; its multiply provides
  the recovery coupling products ``ZΔx`` / ``WΔy``.

The step length is a constant θ (Section 3.4); iterates are clamped at
a small positivity floor after each update — the hardware cannot
represent negative diagonal conductances regardless.  The mode
switches in :class:`~repro.core.settings.ScalableSolverSettings` select
the literal printed equations instead (used by the ablation benches to
demonstrate their divergence).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.feasibility import (
    DivergenceKind,
    collapse_threshold,
    detect_divergence,
    scaled_big_m,
)
from repro.core.problem import LinearProgram
from repro.core.residuals import centering_mu, converged, duality_gap
from repro.core.result import (
    CrossbarCounters,
    FailureReason,
    IterationRecord,
    SolverResult,
    SolveStatus,
)
from repro.core.scalable_system import ScalableNewtonSystem
from repro.core.settings import ScalableSolverSettings
from repro.core.stepsize import ratio_test_theta
from repro.core.warmstart import validated_state as _validated_state
from repro.crossbar.ops import AnalogMatrixOperator
from repro.exceptions import CrossbarSolveError
from repro.obs.clock import Deadline, Stopwatch
from repro.obs.tracer import NOOP, Tracer
from repro.reliability.policy import RecoveryPolicy
from repro.reliability.probe import ProbeReport, probe_operators
from repro.reliability.recovery import solve_with_recovery
from repro.reliability.telemetry import RecoveryAction


class LargeScaleCrossbarPDIPSolver:
    """Memristor crossbar LP solver for large-scale operations.

    Parameters
    ----------
    problem:
        The LP to solve (max c'x, Ax <= b, x >= 0).
    settings:
        Algorithm and hardware configuration.
    rng:
        Random generator driving the process-variation draws.
    recovery:
        Escalation policy.  Defaults to
        :meth:`RecoveryPolicy.from_settings`, i.e. the paper's retry
        scheme (``settings.retries`` reprogram attempts, no probe, no
        remap, no fallback).
    tracer:
        Observability sink (:class:`repro.obs.Tracer`).  Defaults to
        the zero-overhead no-op tracer; pass a
        :class:`repro.obs.RecordingTracer` to capture per-phase spans
        and analog-op counters.
    deadline:
        Optional wall-clock budget (:class:`~repro.obs.clock.Deadline`)
        checked between recovery rungs and between PDIP iterations; an
        expired budget terminates the solve with a machine-readable
        DEADLINE_EXCEEDED after at most one more iteration's work.
    """

    def __init__(
        self,
        problem: LinearProgram,
        settings: ScalableSolverSettings | None = None,
        *,
        rng: np.random.Generator | None = None,
        recovery: RecoveryPolicy | None = None,
        tracer: Tracer | None = None,
        deadline: Deadline | None = None,
    ) -> None:
        self.problem = problem
        self.settings = (
            settings if settings is not None else ScalableSolverSettings()
        )
        self.rng = rng if rng is not None else np.random.default_rng()
        self.recovery = (
            recovery
            if recovery is not None
            else RecoveryPolicy.from_settings(self.settings)
        )
        self.tracer = tracer if tracer is not None else NOOP
        self.deadline = deadline
        self.system = ScalableNewtonSystem(
            problem,
            coupling=self.settings.coupling,
            regularization=self.settings.regularization,
            ratio_floor=self.settings.ratio_floor,
            ratio_cap=self.settings.ratio_cap,
        )
        # The four arrays programmed by the most recent ladder attempt;
        # a REPROGRAM rung redraws their variation in place instead of
        # re-mapping and re-writing all four from scratch.
        self._last_arrays: (
            tuple[
                AnalogMatrixOperator,
                AnalogMatrixOperator,
                AnalogMatrixOperator,
                AnalogMatrixOperator,
            ]
            | None
        ) = None

    def solve(
        self,
        *,
        trace: bool = False,
        initial_state: tuple[np.ndarray, ...] | None = None,
    ) -> SolverResult:
        """Run Algorithm 2 under the recovery ladder.

        The ladder's first rung is the paper's Section 4.5 "double
        checking scheme" (reprogram all four arrays, drawing fresh
        process variation); the configured :class:`RecoveryPolicy` may
        escalate further to remapping and a digital fallback.  The
        returned result carries the full attempt history.

        ``initial_state`` optionally warm-starts the PDIP iterates
        (``(x, y, w, z)``, see :mod:`repro.core.warmstart`) on the
        first rung only; retries always fall back to the seeded cold
        start.
        """
        self._last_arrays = None
        first_rung = {"initial_state": initial_state}

        def attempt(
            rng: np.random.Generator, action: RecoveryAction
        ) -> tuple[SolverResult, ProbeReport | None]:
            # A REPROGRAM rung reuses the four programmed arrays:
            # redraw variation, reset the coupling and state diagonals
            # via the differential write path (O(N) cells), leave the
            # write-once structural blocks alone.  REMAP rebuilds all
            # four from scratch.
            warm = (
                self._last_arrays
                if action is RecoveryAction.REPROGRAM
                else None
            )
            return self._solve_once(
                rng=rng,
                trace=trace,
                arrays=warm,
                redraw=rng if warm is not None else None,
                initial_state=first_rung.pop("initial_state", None),
            )

        with Stopwatch() as clock, self.tracer.span(
            "solve",
            solver="large_scale",
            constraints=self.problem.A.shape[0],
        ):
            result = solve_with_recovery(
                attempt,
                self.recovery,
                self.problem,
                self.rng,
                tracer=self.tracer,
                deadline=self.deadline,
            )
        return dataclasses.replace(
            result, elapsed_seconds=clock.elapsed_seconds
        )

    def _probe_rejection(
        self,
        probe: ProbeReport,
        total_writes,
        multiplies: int,
    ) -> SolverResult:
        """Short-circuit result for arrays the health probe rejected."""
        problem = self.problem
        system = self.system
        m, n = problem.A.shape
        counters = CrossbarCounters(
            multiplies=multiplies,
            solves=0,
            cells_written=total_writes.cells_written,
            write_pulses=total_writes.pulses,
            write_latency_s=total_writes.latency_s,
            write_energy_j=total_writes.energy_j,
            array_size=max(system.size_m1, system.size_m2),
            verify_reads=total_writes.verify_reads,
            verify_repulsed=total_writes.repulsed_cells,
            verify_unverified=total_writes.unverified_cells,
        )
        x = np.zeros(n)
        return SolverResult(
            status=SolveStatus.NUMERICAL_FAILURE,
            x=x,
            y=np.zeros(m),
            w=np.zeros(m),
            z=np.zeros(n),
            objective=problem.objective(x),
            iterations=0,
            crossbar=counters,
            message=(
                f"health probe rejected array {probe.label!r}: relative "
                f"error {probe.max_rel_error:.3g} exceeds tolerance "
                f"{probe.tolerance:.3g}"
            ),
            failure_reason=FailureReason.PROBE_UNHEALTHY,
        )

    def _solve_once(
        self,
        *,
        rng: np.random.Generator | None = None,
        trace: bool = False,
        arrays: (
            tuple[
                AnalogMatrixOperator,
                AnalogMatrixOperator,
                AnalogMatrixOperator,
                AnalogMatrixOperator,
            ]
            | None
        ) = None,
        redraw: np.random.Generator | None = None,
        initial_state: tuple[np.ndarray, ...] | None = None,
    ) -> tuple[SolverResult, ProbeReport | None]:
        problem = self.problem
        settings = self.settings
        system = self.system
        m, n = problem.A.shape
        rng = rng if rng is not None else self.rng

        if initial_state is not None:
            x, y, w, z = _validated_state(initial_state, m, n, settings)
        else:
            x = np.full(n, settings.initial_value)
            z = np.full(n, settings.initial_value)
            y = np.full(m, settings.initial_value)
            w = np.full(m, settings.initial_value)

        tracer = self.tracer
        if arrays is None:
            hardware = dict(
                params=settings.device,
                variation=settings.variation,
                rng=rng,
                dac_bits=settings.dac_bits,
                adc_bits=settings.adc_bits,
                off_state=settings.off_state,
                row_scaling=settings.row_scaling,
                write_verify=settings.write_verify,
                tracer=tracer,
            )
            with tracer.span("reformulate"):
                m1_coupled = system.build_m1(x, y, w, z, with_coupling=True)
                m1_plain = system.build_m1(x, y, w, z, with_coupling=False)
                m2_matrix = system.build_m2(x, y)
                d_matrix = system.build_d(z, w)
            with tracer.span("program", array="m1_solve"):
                m1_solve = AnalogMatrixOperator(
                    m1_coupled,
                    scale_headroom=settings.scale_headroom,
                    **hardware,
                )
            with tracer.span("program", array="m1_mult"):
                m1_mult = AnalogMatrixOperator(
                    m1_plain,
                    scale_headroom=1.0,
                    **hardware,
                )
            with tracer.span("program", array="m2"):
                m2 = AnalogMatrixOperator(
                    m2_matrix,
                    scale_headroom=settings.scale_headroom,
                    **hardware,
                )
            with tracer.span("program", array="d"):
                d_array = AnalogMatrixOperator(
                    d_matrix,
                    scale_headroom=settings.scale_headroom,
                    **hardware,
                )
            self._last_arrays = (m1_solve, m1_mult, m2, d_array)
            base_writes = None
        else:
            # Recovery-ladder reprogram: keep the mapped structure,
            # redraw process variation on every programmed cell, and
            # reset the per-iteration diagonals to the initial state
            # through the differential write path.  m1_mult is
            # write-once (Eqn. 17a) — redraw only.
            m1_solve, m1_mult, m2, d_array = arrays
            base_writes = (
                m1_solve.write_report
                + m1_mult.write_report
                + m2.write_report
                + d_array.write_report
            )
            if redraw is not None:
                with tracer.span("program", redraw=True):
                    for warm_op in (m1_solve, m1_mult, m2, d_array):
                        warm_op.redraw_variation(redraw)
            with tracer.span("program", warm=True):
                rows, cols, values = system.m1_coupling_update(x, y, w, z)
                m1_solve.update_coefficients(
                    rows, cols, values, floor_to_representable=True
                )
                m1_solve.renormalize()
                for warm_op, diag in (
                    (m2, system.m2_diagonal(x, y)),
                    (d_array, system.d_diagonal(z, w)),
                ):
                    d_rows, d_cols, d_vals = system.diag_update(diag)
                    warm_op.update_coefficients(
                        d_rows, d_cols, d_vals, floor_to_representable=True
                    )
                    warm_op.renormalize()
        multiplies = 0
        solves = 0

        probe = None
        if self.recovery.probe is not None:
            with tracer.span("probe"):
                probe = probe_operators(
                    [
                        ("m1_solve", m1_solve),
                        ("m1_mult", m1_mult),
                        ("m2", m2),
                        ("d", d_array),
                    ],
                    self.recovery.probe,
                    rng,
                )
            multiplies += probe.vectors
            if not probe.healthy:
                total_writes = (
                    m1_solve.write_report
                    + m1_mult.write_report
                    + m2.write_report
                    + d_array.write_report
                )
                if base_writes is not None:
                    total_writes = total_writes - base_writes
                tracer.gauge("solver.iterations", 0)
                return (
                    self._probe_rejection(probe, total_writes, multiplies),
                    probe,
                )

        eps_primal = settings.eps_primal * (
            1.0 + float(np.max(np.abs(problem.b), initial=0.0))
        )
        eps_dual = settings.eps_dual * (
            1.0 + float(np.max(np.abs(problem.c), initial=0.0))
        )
        # Anchored at the nominal cold-start gap ((n+m)*initial_value^2,
        # identical to duality_gap at the flat start) so warm starts
        # are judged by the same absolute threshold as cold solves.
        gap0 = (n + m) * settings.initial_value**2
        eps_gap = settings.eps_gap * max(1.0, gap0)
        converter_bits = [
            bits
            for bits in (settings.dac_bits, settings.adc_bits)
            if bits is not None
        ]
        quant_rel = 3.0 * 2.0 ** -min(converter_bits) if converter_bits else 0.0
        divergence_bound = scaled_big_m(problem, settings.big_m)
        collapse_bound = collapse_threshold(
            problem,
            settings.device.resistance_ratio,
            settings.scale_headroom,
        )
        theta = settings.constant_theta
        floor = settings.positivity_floor

        best_score = np.inf
        best_state = (x, y, w, z)
        stall = 0
        records: list[IterationRecord] = []
        iterations = 0
        status = SolveStatus.ITERATION_LIMIT
        message = ""
        reason = FailureReason.NONE

        def clamped_update(operator, values):
            rows, cols, vals = system.diag_update(values)
            operator.update_coefficients(
                rows, cols, vals, floor_to_representable=True
            )

        deadline = self.deadline
        for iteration in range(settings.max_iterations):
          if deadline is not None and deadline.expired:
            status = SolveStatus.NUMERICAL_FAILURE
            message = (
                f"deadline of {deadline.budget_s:.3g}s exceeded after "
                f"{iterations} iterations"
            )
            reason = FailureReason.DEADLINE_EXCEEDED
            break
          with tracer.span("iteration", index=iteration):
            gap = duality_gap(x, y, w, z)
            mu = centering_mu(x, y, w, z, settings.delta)

            if iteration:
                with tracer.span("newton_assembly"):
                    rows, cols, values = system.m1_coupling_update(
                        x, y, w, z
                    )
                    m2_diag = system.m2_diagonal(x, y)
                    d_diag = system.d_diagonal(z, w)
                with tracer.span("program", array="m1_solve"):
                    m1_solve.update_coefficients(
                        rows, cols, values, floor_to_representable=True
                    )
                with tracer.span("program", array="m2"):
                    clamped_update(m2, m2_diag)
                with tracer.span("program", array="d"):
                    clamped_update(d_array, d_diag)

            # --- residuals via the constant multiply array ------------
            with tracer.span("residual"):
                product1 = m1_mult.multiply(system.state_vector_m1(x, y))
                multiplies += 1
                p_inf, d_inf = system.infeasibility_norms(product1, w, z)

            # Converter noise floor on the residual read-out (see the
            # matching comment in crossbar_solver).
            floor_p = quant_rel * float(
                np.max(np.abs(product1[:m]), initial=0.0)
            )
            floor_d = quant_rel * float(
                np.max(np.abs(product1[m:m + n]), initial=0.0)
            )
            if converged(
                p_inf,
                d_inf,
                gap,
                eps_primal=max(eps_primal, floor_p),
                eps_dual=max(eps_dual, floor_d),
                eps_gap=eps_gap,
            ):
                status = SolveStatus.OPTIMAL
                break

            score = max(p_inf / eps_primal, d_inf / eps_dual, gap / eps_gap)
            if score < best_score * (1.0 - 1e-3):
                best_score = score
                best_state = (x, y, w, z)
                stall = 0
            else:
                stall += 1
                if stall >= settings.stall_iterations:
                    iterate_peak = max(
                        float(np.max(np.abs(x), initial=0.0)),
                        float(np.max(np.abs(y), initial=0.0)),
                    )
                    x, y, w, z = best_state
                    if iterate_peak > collapse_bound:
                        status = SolveStatus.INFEASIBLE
                        message = "stalled while diverging"
                    elif problem.satisfies_relaxed_constraints(
                        x,
                        settings.alpha,
                        problem.variation_row_tolerance(
                            x, settings.variation.relative_magnitude
                        ),
                    ):
                        status = SolveStatus.OPTIMAL
                        message = (
                            "stalled at analog noise floor; relaxed "
                            "feasibility check passed"
                        )
                    else:
                        status = SolveStatus.ITERATION_LIMIT
                        message = "stalled without a feasible iterate"
                        reason = FailureReason.NO_FEASIBLE_ITERATE
                    break

            try:
                with tracer.span("analog_solve"):
                    # --- first half: Δx, Δy from M1 -------------------
                    if settings.rhs_mode == "exact":
                        # The controller holds x, y digitally (it
                        # programs the M2 diagonal from them every
                        # iteration), so the central-path targets mu/x,
                        # mu/y are O(N) digital scalar ops, like the
                        # summing-amplifier subtraction.
                        r1 = system.residual_m1(product1, mu / x, mu / y)
                    else:
                        r1 = system.paper_residual_m1(product1, w, z)
                    delta1 = m1_solve.solve(r1)
                    solves += 1
                    dx, dy = system.extract_steps_m1(delta1)

                    # --- second half: Δz, Δw from M2 (recovery) -------
                    product2 = m2.multiply(np.concatenate([z, w]))
                    multiplies += 1
                    if settings.recovery == "coupled":
                        coupling = d_array.multiply(
                            np.concatenate([dx, dy])
                        )
                        multiplies += 1
                    else:
                        coupling = None
                    r2 = system.residual_m2(mu, product2, coupling)
                    delta2 = m2.solve(r2)
                    solves += 1
                    dz, dw = system.extract_steps_m2(delta2)
            except CrossbarSolveError as exc:
                iterate_peak = max(
                    float(np.max(np.abs(x), initial=0.0)),
                    float(np.max(np.abs(y), initial=0.0)),
                )
                if iterate_peak > collapse_bound:
                    # Dynamic-range collapse while the iterates diverge:
                    # the big-M certificate, reached through hardware.
                    status = SolveStatus.INFEASIBLE
                    message = f"divergence collapsed the mapping: {exc}"
                else:
                    status = SolveStatus.NUMERICAL_FAILURE
                    message = str(exc)
                    reason = FailureReason.SINGULAR_SYSTEM
                break

            with tracer.span("step"):
                if settings.step_policy == "capped_ratio":
                    theta = min(
                        settings.constant_theta,
                        ratio_test_theta(
                            np.concatenate([x, y, w, z]),
                            np.concatenate([dx, dy, dw, dz]),
                            step_scale=settings.step_scale,
                            ignore_below=settings.positivity_floor * 1e4,
                        ),
                    )
                x = np.maximum(x + theta * dx, floor)
                y = np.maximum(y + theta * dy, floor)
                z = np.maximum(z + theta * dz, floor)
                w = np.maximum(w + theta * dw, floor)
            iterations = iteration + 1

            divergence = detect_divergence(x, y, divergence_bound)
            if divergence is not DivergenceKind.NONE:
                status = SolveStatus.INFEASIBLE
                message = divergence.value
                break

            if trace:
                records.append(
                    IterationRecord(
                        index=iteration,
                        mu=mu,
                        duality_gap=duality_gap(x, y, w, z),
                        primal_infeasibility=p_inf,
                        dual_infeasibility=d_inf,
                        theta=theta,
                        cells_written=m2.write_report.cells_written,
                    )
                )

        if status is SolveStatus.ITERATION_LIMIT and not message:
            x, y, w, z = best_state
            if problem.satisfies_relaxed_constraints(
                x,
                settings.alpha,
                problem.variation_row_tolerance(
                    x, settings.variation.relative_magnitude
                ),
            ):
                status = SolveStatus.OPTIMAL
                message = (
                    "iteration limit; accepted best feasible iterate"
                )
            else:
                message = "iteration limit without a feasible iterate"
                reason = FailureReason.NO_FEASIBLE_ITERATE

        if status is SolveStatus.OPTIMAL and not (
            problem.satisfies_relaxed_constraints(
                x,
                settings.alpha,
                problem.variation_row_tolerance(
                    x, settings.variation.relative_magnitude
                ),
            )
        ):
            status = SolveStatus.NUMERICAL_FAILURE
            message = "final constraint check A x <= alpha b failed"
            reason = FailureReason.FINAL_CHECK_FAILED

        if status in (SolveStatus.OPTIMAL, SolveStatus.INFEASIBLE):
            reason = FailureReason.NONE

        tracer.gauge("solver.iterations", iterations)
        total_writes = (
            m1_solve.write_report
            + m1_mult.write_report
            + m2.write_report
            + d_array.write_report
        )
        if base_writes is not None:
            total_writes = total_writes - base_writes
        counters = CrossbarCounters(
            multiplies=multiplies,
            solves=solves,
            cells_written=total_writes.cells_written,
            write_pulses=total_writes.pulses,
            write_latency_s=total_writes.latency_s,
            write_energy_j=total_writes.energy_j,
            array_size=max(system.size_m1, system.size_m2),
            verify_reads=total_writes.verify_reads,
            verify_repulsed=total_writes.repulsed_cells,
            verify_unverified=total_writes.unverified_cells,
        )
        result = SolverResult(
            status=status,
            x=x,
            y=y,
            w=w,
            z=z,
            objective=problem.objective(x),
            iterations=iterations,
            trace=tuple(records),
            crossbar=counters,
            message=message,
            failure_reason=reason,
        )
        return result, probe


def solve_crossbar_large_scale(
    problem: LinearProgram,
    settings: ScalableSolverSettings | None = None,
    *,
    rng: np.random.Generator | None = None,
    recovery: RecoveryPolicy | None = None,
    trace: bool = False,
    tracer: Tracer | None = None,
) -> SolverResult:
    """Functional wrapper around :class:`LargeScaleCrossbarPDIPSolver`."""
    solver = LargeScaleCrossbarPDIPSolver(
        problem, settings, rng=rng, recovery=recovery, tracer=tracer
    )
    return solver.solve(trace=trace)
