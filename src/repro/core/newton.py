"""Newton-step system assembly for the PDIP method.

Two forms are built here:

1. The *signed* 2(n+m) system of Eqn. 12 — used by the software
   reference solver and as ground truth in tests:

   .. math::

      \\begin{bmatrix}
        A & 0 & I & 0 \\\\
        0 & A^T & 0 & -I \\\\
        Z & 0 & 0 & X \\\\
        0 & W & Y & 0
      \\end{bmatrix}
      \\begin{bmatrix}\\Delta x\\\\ \\Delta y\\\\ \\Delta w\\\\
        \\Delta z\\end{bmatrix}
      =
      \\begin{bmatrix}
        b - Ax - w \\\\ c - A^T y + z \\\\ \\mu - XZe \\\\ \\mu - YWe
      \\end{bmatrix}

2. The *augmented non-negative* system of Eqn. 14a — what Solver 1
   actually programs into the crossbar.  Besides the compensation
   variables ``Δp`` for negative entries of A and Aᵀ, the paper
   introduces ``Δv = -Δz`` (removing the ``-I`` block) and
   ``Δu = -Δw`` (keeping the construction symmetric), with linking rows
   ``Δw + Δu = 0``, ``Δz + Δv = 0``, and ``E_x Δx + E_y Δy + Δp = 0``.

:class:`AugmentedNewtonSystem` owns all index bookkeeping: which cells
change between iterations (the O(N) update set), how the current state
is packed into the multiply input of the Eqn. 15b residual trick, and
how step directions are unpacked from the crossbar solution.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.problem import LinearProgram


def newton_matrix(
    problem: LinearProgram,
    x: np.ndarray,
    y: np.ndarray,
    w: np.ndarray,
    z: np.ndarray,
) -> np.ndarray:
    """The signed Eqn. 12 matrix, size ``2(n+m)``."""
    A = problem.A
    m, n = A.shape
    size = 2 * (n + m)
    M = np.zeros((size, size))
    # Column offsets: x:[0,n) y:[n,n+m) w:[n+m,n+2m) z:[n+2m,2n+2m).
    ox, oy, ow, oz = 0, n, n + m, n + 2 * m
    # Row offsets: primal m, dual n, xz n, yw m.
    rp, rd, rxz, ryw = 0, m, m + n, m + 2 * n
    M[rp:rp + m, ox:ox + n] = A
    M[rp:rp + m, ow:ow + m] = np.eye(m)
    M[rd:rd + n, oy:oy + m] = A.T
    M[rd:rd + n, oz:oz + n] = -np.eye(n)
    M[rxz:rxz + n, ox:ox + n] = np.diag(z)
    M[rxz:rxz + n, oz:oz + n] = np.diag(x)
    M[ryw:ryw + m, oy:oy + m] = np.diag(w)
    M[ryw:ryw + m, ow:ow + m] = np.diag(y)
    return M


def newton_rhs(
    problem: LinearProgram,
    x: np.ndarray,
    y: np.ndarray,
    w: np.ndarray,
    z: np.ndarray,
    mu: float,
) -> np.ndarray:
    """The signed Eqn. 12 right-hand side."""
    A = problem.A
    m, n = A.shape
    return np.concatenate(
        [
            problem.b - A @ x - w,
            problem.c - A.T @ y + z,
            mu * np.ones(n) - x * z,
            mu * np.ones(m) - y * w,
        ]
    )


class NewtonSystem:
    """Reusable workspace for the signed Eqn. 12 system.

    :func:`newton_matrix` / :func:`newton_rhs` rebuild the full
    ``2(n+m)`` system from zeros every iteration — O(N²) fill for a
    matrix whose A / Aᵀ / ±I blocks never change.  This workspace
    allocates M and r once, writes the static blocks once, and per
    iteration touches only the four diagonal blocks (2(n+m) cells) and
    the right-hand side — the digital mirror of the crossbar's O(N)
    differential programming.

    The in-place update is *bitwise identical* to the from-scratch
    builders (asserted by ``tests/property``): callers get the same
    floats, just without the redundant refill.

    The returned arrays are views of the internal buffers: they are
    valid until the next :meth:`matrix` / :meth:`rhs` call.  Pass
    ``copy=True`` to detach.
    """

    def __init__(self, problem: LinearProgram) -> None:
        self.problem = problem
        A = problem.A
        m, n = A.shape
        self.m, self.n = m, n
        self.size = 2 * (n + m)
        ox, oy, ow, oz = 0, n, n + m, n + 2 * m
        rp, rd, rxz, ryw = 0, m, m + n, m + 2 * n
        M = np.zeros((self.size, self.size))
        M[rp:rp + m, ox:ox + n] = A
        M[rp:rp + m, ow:ow + m] = np.eye(m)
        M[rd:rd + n, oy:oy + m] = A.T
        M[rd:rd + n, oz:oz + n] = -np.eye(n)
        self._matrix = M
        self._rhs = np.empty(self.size)
        # Flat indices of the per-iteration cells: the Z, X, W, Y
        # diagonals inside the complementarity rows.
        idx_n = np.arange(n)
        idx_m = np.arange(m)
        rows = np.concatenate(
            [rxz + idx_n, rxz + idx_n, ryw + idx_m, ryw + idx_m]
        )
        cols = np.concatenate(
            [ox + idx_n, oz + idx_n, oy + idx_m, ow + idx_m]
        )
        self._diag_flat = rows * self.size + cols
        self._rhs_slices = (
            slice(0, m),
            slice(m, m + n),
            slice(m + n, m + 2 * n),
            slice(m + 2 * n, self.size),
        )

    def matrix(
        self,
        x: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        z: np.ndarray,
        *,
        copy: bool = False,
    ) -> np.ndarray:
        """Update the four diagonal blocks in place and return M."""
        flat = self._matrix.reshape(-1)
        flat[self._diag_flat[: self.n]] = z
        flat[self._diag_flat[self.n:2 * self.n]] = x
        flat[self._diag_flat[2 * self.n:2 * self.n + self.m]] = w
        flat[self._diag_flat[2 * self.n + self.m:]] = y
        return self._matrix.copy() if copy else self._matrix

    def rhs(
        self,
        x: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        z: np.ndarray,
        mu: float,
        *,
        copy: bool = False,
    ) -> np.ndarray:
        """Fill the preallocated right-hand side and return it."""
        problem = self.problem
        A = problem.A
        s_p, s_d, s_xz, s_yw = self._rhs_slices
        r = self._rhs
        r[s_p] = problem.b - A @ x - w
        r[s_d] = problem.c - A.T @ y + z
        r[s_xz] = mu * np.ones(self.n) - x * z
        r[s_yw] = mu * np.ones(self.m) - y * w
        return r.copy() if copy else r


@dataclasses.dataclass(frozen=True)
class _Layout:
    """Row/column index layout of the augmented system."""

    n: int
    m: int
    k_x: int
    k_y: int

    # Column slices -------------------------------------------------------
    @property
    def col_x(self) -> slice:
        return slice(0, self.n)

    @property
    def col_y(self) -> slice:
        return slice(self.n, self.n + self.m)

    @property
    def col_w(self) -> slice:
        return slice(self.n + self.m, self.n + 2 * self.m)

    @property
    def col_z(self) -> slice:
        return slice(self.n + 2 * self.m, 2 * self.n + 2 * self.m)

    @property
    def col_u(self) -> slice:
        return slice(2 * self.n + 2 * self.m, 2 * self.n + 3 * self.m)

    @property
    def col_v(self) -> slice:
        return slice(2 * self.n + 3 * self.m, 3 * self.n + 3 * self.m)

    @property
    def col_p(self) -> slice:
        base = 3 * self.n + 3 * self.m
        return slice(base, base + self.k_x + self.k_y)

    # Row slices ----------------------------------------------------------
    @property
    def row_primal(self) -> slice:
        return slice(0, self.m)

    @property
    def row_dual(self) -> slice:
        return slice(self.m, self.m + self.n)

    @property
    def row_xz(self) -> slice:
        return slice(self.m + self.n, self.m + 2 * self.n)

    @property
    def row_yw(self) -> slice:
        return slice(self.m + 2 * self.n, 2 * self.m + 2 * self.n)

    @property
    def row_ulink(self) -> slice:
        return slice(2 * self.m + 2 * self.n, 3 * self.m + 2 * self.n)

    @property
    def row_vlink(self) -> slice:
        return slice(3 * self.m + 2 * self.n, 3 * self.m + 3 * self.n)

    @property
    def row_plink(self) -> slice:
        base = 3 * self.m + 3 * self.n
        return slice(base, base + self.k_x + self.k_y)

    @property
    def size(self) -> int:
        return 3 * (self.n + self.m) + self.k_x + self.k_y


class AugmentedNewtonSystem:
    """Eqn. 14a: the non-negative Newton system Solver 1 programs.

    Built once per problem; per-iteration work touches only the
    diagonal X, Y, Z, W cells (:meth:`diagonal_update`), which is what
    makes the crossbar iteration O(N).

    Parameters
    ----------
    problem:
        The LP whose Newton systems will be assembled.  A and Aᵀ are
        scanned once for negative columns; those get compensation
        variables ``Δp`` (order: A's columns first, then Aᵀ's).
    """

    def __init__(self, problem: LinearProgram) -> None:
        self.problem = problem
        A = problem.A
        self.m, self.n = A.shape
        self._a_plus = np.maximum(A, 0.0)
        self._a_minus = np.maximum(-A, 0.0)
        self._at_plus = self._a_plus.T
        self._at_minus = self._a_minus.T
        self.neg_cols_a = tuple(
            int(j) for j in np.flatnonzero(np.any(A < 0, axis=0))
        )
        self.neg_cols_at = tuple(
            int(j) for j in np.flatnonzero(np.any(A.T < 0, axis=0))
        )
        self.k_x = len(self.neg_cols_a)
        self.k_y = len(self.neg_cols_at)
        self.layout = _Layout(n=self.n, m=self.m, k_x=self.k_x, k_y=self.k_y)
        # Iteration-invariant structure, cached once: the (rows, cols)
        # of the O(N) diagonal update set, the compensation-column
        # index arrays (depend only on sign(A)), and the rhs template
        # of Eqn. 15a with its mu-dependent rows marked.
        lay = self.layout
        idx_n = np.arange(self.n)
        idx_m = np.arange(self.m)
        self._diag_rows = np.concatenate(
            [
                lay.row_xz.start + idx_n,          # Z diagonal
                lay.row_xz.start + idx_n,          # X diagonal
                lay.row_yw.start + idx_m,          # W diagonal
                lay.row_yw.start + idx_m,          # Y diagonal
            ]
        )
        self._diag_cols = np.concatenate(
            [
                lay.col_x.start + idx_n,
                lay.col_z.start + idx_n,
                lay.col_y.start + idx_m,
                lay.col_w.start + idx_m,
            ]
        )
        self._neg_a_idx = np.array(self.neg_cols_a, dtype=int)
        self._neg_at_idx = np.array(self.neg_cols_at, dtype=int)
        self._rhs_template = np.concatenate(
            [
                self.problem.b,
                self.problem.c,
                np.ones(self.n),
                np.ones(self.m),
                np.zeros(self.m),
                np.zeros(self.n),
                np.zeros(self.k_x + self.k_y),
            ]
        )

    @property
    def size(self) -> int:
        """Dimension of the augmented square system."""
        return self.layout.size

    # -- matrix assembly ----------------------------------------------------

    def build_matrix(
        self,
        x: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        z: np.ndarray,
    ) -> np.ndarray:
        """Assemble the full non-negative matrix M of Eqn. 14a.

        The diagonal X, Y, Z, W blocks are clamped at zero: the
        crossbar cannot represent a negative conductance, so a solver
        whose state strayed negative (possible under Solver 2's
        constant step) programs zero instead.
        """
        lay = self.layout
        M = np.zeros((lay.size, lay.size))
        eye_m = np.eye(self.m)
        eye_n = np.eye(self.n)

        M[lay.row_primal, lay.col_x] = self._a_plus
        M[lay.row_primal, lay.col_w] = eye_m
        M[lay.row_dual, lay.col_y] = self._at_plus
        M[lay.row_dual, lay.col_v] = eye_n
        if self.k_x:
            p_x = slice(lay.col_p.start, lay.col_p.start + self.k_x)
            M[lay.row_primal, p_x] = self._a_minus[:, list(self.neg_cols_a)]
        if self.k_y:
            p_y = slice(lay.col_p.start + self.k_x, lay.col_p.stop)
            M[lay.row_dual, p_y] = self._at_minus[:, list(self.neg_cols_at)]

        xz = lay.row_xz.start
        M[xz:xz + self.n, lay.col_x] = np.diag(np.maximum(z, 0.0))
        M[xz:xz + self.n, lay.col_z] = np.diag(np.maximum(x, 0.0))
        yw = lay.row_yw.start
        M[yw:yw + self.m, lay.col_y] = np.diag(np.maximum(w, 0.0))
        M[yw:yw + self.m, lay.col_w] = np.diag(np.maximum(y, 0.0))

        M[lay.row_ulink, lay.col_w] = eye_m
        M[lay.row_ulink, lay.col_u] = eye_m
        M[lay.row_vlink, lay.col_z] = eye_n
        M[lay.row_vlink, lay.col_v] = eye_n

        plink = lay.row_plink.start
        for idx, j in enumerate(self.neg_cols_a):
            M[plink + idx, j] = 1.0
        for idx, j in enumerate(self.neg_cols_at):
            M[plink + self.k_x + idx, self.n + j] = 1.0
        M[lay.row_plink, lay.col_p] = np.eye(self.k_x + self.k_y)
        return M

    def diagonal_update(
        self,
        x: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        z: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The O(N) per-iteration cell updates: (rows, cols, values).

        Exactly ``2(n+m)`` cells — the Z, X, W, Y diagonals inside the
        complementarity rows.  With the paper's experiment shape
        ``n = m/3`` this is the "2.7 N" coefficient-update count of
        Section 4.4.  Values are clamped at zero (see
        :meth:`build_matrix`).
        """
        values = np.concatenate([z, x, w, y])
        return self._diag_rows, self._diag_cols, np.maximum(values, 0.0)

    # -- vectors -----------------------------------------------------------------

    def state_vector(
        self,
        x: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        z: np.ndarray,
    ) -> np.ndarray:
        """Pack ``[x, y, w, z, u=-w, v=-z, p]`` for the Eqn. 15b multiply.

        Multiplying M by this vector yields
        ``[Ax + w, Aᵀy - z, 2XZe, 2YWe, 0, 0, 0]``; the residual
        builder halves the complementarity rows (the "dividing-by-2
        procedure" of Section 3.2).
        """
        p = np.concatenate(
            [
                -x[self._neg_a_idx] if self.k_x else np.empty(0),
                -y[self._neg_at_idx] if self.k_y else np.empty(0),
            ]
        )
        return np.concatenate([x, y, w, z, -w, -z, p])

    def rhs_targets(self, mu: float) -> np.ndarray:
        """The constant part ``[b, c, mu, mu, 0, 0, 0]`` of Eqn. 15a."""
        lay = self.layout
        out = self._rhs_template.copy()
        out[lay.row_xz] *= mu
        out[lay.row_yw] *= mu
        return out

    def residual_from_product(
        self, product: np.ndarray, mu: float
    ) -> np.ndarray:
        """Assemble r (Eqn. 15a) from the crossbar product M @ state.

        The complementarity rows of the product carry ``2XZe`` and
        ``2YWe``; they are halved before subtraction.
        """
        lay = self.layout
        halved = np.array(product, dtype=float, copy=True)
        halved[lay.row_xz] /= 2.0
        halved[lay.row_yw] /= 2.0
        return self.rhs_targets(mu) - halved

    def extract_steps(
        self, delta: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Unpack ``(Δx, Δy, Δw, Δz)`` from the augmented solution."""
        lay = self.layout
        if delta.shape != (lay.size,):
            raise ValueError(
                f"expected solution of shape ({lay.size},), got {delta.shape}"
            )
        return (
            delta[lay.col_x].copy(),
            delta[lay.col_y].copy(),
            delta[lay.col_w].copy(),
            delta[lay.col_z].copy(),
        )

    def infeasibility_norms(
        self, residual: np.ndarray
    ) -> tuple[float, float]:
        """(primal, dual) infinity norms read off the analog residual.

        The first m entries of r are ``b - Ax - w`` and the next n are
        ``c - Aᵀy + z``, so the convergence test needs no extra matrix
        work — it reuses the residual the crossbar already computed.
        """
        lay = self.layout
        primal = float(np.max(np.abs(residual[lay.row_primal]), initial=0.0))
        dual = float(np.max(np.abs(residual[lay.row_dual]), initial=0.0))
        return primal, dual
