"""Step-length policies.

Solver 1 uses the damped ratio test of Eqn. 11,

.. math::

   \\theta = r \\cdot \\min\\Bigl(\\max_{i,j}\\bigl(-\\tfrac{\\Delta x_j}{x_j},
   -\\tfrac{\\Delta y_i}{y_i}, -\\tfrac{\\Delta w_j}{w_j},
   -\\tfrac{\\Delta z_j}{z_j}\\bigr)^{-1}, 1\\Bigr)

which keeps every primal/dual variable strictly positive (``r`` is
"less than but close to 1").  Solver 2 uses a constant step length,
which the paper found necessary for convergence of the split iteration
(Section 3.4) at the price of occasionally letting variables stray
negative.
"""

from __future__ import annotations

import numpy as np


def ratio_test_theta(
    state: np.ndarray,
    step: np.ndarray,
    *,
    step_scale: float = 0.99,
    ignore_below: float = 0.0,
) -> float:
    """Eqn. 11: the largest safe step, damped by ``step_scale``.

    Parameters
    ----------
    state:
        Concatenated positive variables ``[x, y, w, z]``.
    step:
        Concatenated step directions, same shape.
    step_scale:
        The damping factor ``r`` in (0, 1).
    ignore_below:
        Exclude variables at or below this magnitude from the ratio
        test.  Analog solvers clamp their iterates at a tiny positivity
        floor; a variable *pinned* at that floor with a noise-induced
        negative step would otherwise drive the global step length to
        zero permanently.  The clamp protects pinned variables, so they
        are excluded here.

    Returns
    -------
    float
        Step length in ``(0, step_scale]``.  If no participating
        component of the step points toward the boundary, the full
        (damped) unit step is taken.
    """
    state = np.asarray(state, dtype=float)
    step = np.asarray(step, dtype=float)
    if state.shape != step.shape:
        raise ValueError("state and step must have identical shapes")
    if not 0.0 < step_scale < 1.0:
        raise ValueError(f"step_scale must lie in (0, 1), got {step_scale}")
    if ignore_below < 0:
        raise ValueError("ignore_below must be non-negative")
    interior = state > ignore_below
    if not np.all(state > 0):
        raise ValueError("ratio test requires strictly positive state")
    if not np.any(interior):
        return step_scale
    ratios = -step[interior] / state[interior]
    max_ratio = float(np.max(ratios, initial=0.0))
    if max_ratio <= 0.0:
        return step_scale
    return step_scale * min(1.0 / max_ratio, 1.0)


def constant_theta(theta: float) -> float:
    """Solver 2's policy: a fixed step length, validated once."""
    if not 0.0 < theta <= 1.0:
        raise ValueError(f"theta must lie in (0, 1], got {theta}")
    return theta
