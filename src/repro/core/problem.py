"""Linear-program problem definition.

The paper (Section 3.1) works with the symmetric primal/dual pair

Primal:  maximize  c^T x   subject to  A x <= b,  x >= 0
Dual:    minimize  b^T y   subject to  A^T y >= c,  y >= 0

with slack vectors w (primal) and z (dual) turning the inequalities
into equalities:

    A x + w = b,      A^T y - z = c,      x, w, y, z >= 0.

:class:`LinearProgram` is the single problem type used across the
package; helpers convert minimization problems and compute residuals.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class LinearProgram:
    """A linear program in the paper's primal form.

    maximize ``c @ x`` subject to ``A @ x <= b`` and ``x >= 0``.

    Attributes
    ----------
    c:
        Objective coefficients, shape (n,).
    A:
        Constraint matrix, shape (m, n).
    b:
        Constraint right-hand side, shape (m,).
    name:
        Optional label used in experiment reports.
    """

    c: np.ndarray
    A: np.ndarray
    b: np.ndarray
    name: str = ""

    def __post_init__(self) -> None:
        c = np.asarray(self.c, dtype=float)
        A = np.asarray(self.A, dtype=float)
        b = np.asarray(self.b, dtype=float)
        if A.ndim != 2:
            raise ValueError(f"A must be 2-D, got ndim={A.ndim}")
        m, n = A.shape
        if c.shape != (n,):
            raise ValueError(f"c has shape {c.shape}, expected ({n},)")
        if b.shape != (m,):
            raise ValueError(f"b has shape {b.shape}, expected ({m},)")
        for label, arr in (("c", c), ("A", A), ("b", b)):
            if not np.all(np.isfinite(arr)):
                raise ValueError(f"{label} contains non-finite entries")
        object.__setattr__(self, "c", c)
        object.__setattr__(self, "A", A)
        object.__setattr__(self, "b", b)

    @property
    def n_variables(self) -> int:
        """Number of decision variables n."""
        return self.A.shape[1]

    @property
    def n_constraints(self) -> int:
        """Number of inequality constraints m."""
        return self.A.shape[0]

    def objective(self, x: np.ndarray) -> float:
        """Primal objective value ``c @ x``."""
        return float(self.c @ np.asarray(x, dtype=float))

    def dual_objective(self, y: np.ndarray) -> float:
        """Dual objective value ``b @ y``."""
        return float(self.b @ np.asarray(y, dtype=float))

    def constraint_violation(self, x: np.ndarray) -> float:
        """Largest violation of ``A x <= b`` and ``x >= 0`` (0 if feasible)."""
        x = np.asarray(x, dtype=float)
        slack_violation = float(np.max(self.A @ x - self.b, initial=0.0))
        sign_violation = float(np.max(-x, initial=0.0))
        return max(slack_violation, sign_violation, 0.0)

    def is_feasible(self, x: np.ndarray, tolerance: float = 1e-8) -> bool:
        """Whether ``x`` satisfies all constraints within ``tolerance``."""
        return self.constraint_violation(x) <= tolerance

    def satisfies_relaxed_constraints(
        self,
        x: np.ndarray,
        alpha: float = 1.05,
        extra_row_tolerance: np.ndarray | float = 0.0,
    ) -> bool:
        """The paper's variation-tolerant check ``A x <= alpha * b``.

        Section 3.2: under process variation the returned solution may
        violate ``A x <= b`` slightly, so the final check uses a factor
        ``alpha`` "close but greater than 1".  The slack budget is
        ``(alpha - 1) * (|b| + 1)``: proportional to each row's
        magnitude, with an absolute floor so rows with ``b_i ≈ 0`` are
        not held to an impossible exact-equality standard under analog
        noise.

        Parameters
        ----------
        x:
            Candidate solution.
        alpha:
            Relaxation factor, >= 1.
        extra_row_tolerance:
            Additional per-row slack (scalar or shape (m,)).  Solvers
            pass the variation-propagation budget here: a solution
            computed on hardware whose cells deviate by up to ``var``
            legitimately satisfies the *realized* constraints while
            missing the nominal ones by about
            ``var * sqrt(sum_j (A_ij x_j)^2)`` per row.
        """
        if alpha < 1.0:
            raise ValueError(f"alpha must be >= 1, got {alpha}")
        x = np.asarray(x, dtype=float)
        slack_budget = (np.abs(self.b) + 1.0) * (alpha - 1.0)
        slack_budget = slack_budget + extra_row_tolerance
        return bool(np.all(self.A @ x <= self.b + slack_budget))

    def variation_row_tolerance(
        self, x: np.ndarray, variation_magnitude: float
    ) -> np.ndarray:
        """Per-row acceptance slack for hardware with known variation.

        Each programmed cell deviates by up to ``variation_magnitude``
        relative (uniform), so row i of the realized product deviates
        from the nominal ``(A x)_i`` by a zero-mean sum with standard
        deviation ``var/sqrt(3) * sqrt(sum_j A_ij^2 x_j^2)``.  Three
        sigmas of that is the budget a controller must grant before
        declaring a returned point infeasible.
        """
        if variation_magnitude < 0:
            raise ValueError("variation_magnitude must be non-negative")
        if variation_magnitude == 0.0:
            return np.zeros(self.n_constraints)
        x = np.asarray(x, dtype=float)
        row_rms = np.sqrt((self.A**2) @ (x**2))
        return 3.0 * variation_magnitude / np.sqrt(3.0) * row_rms

    def dual(self) -> "LinearProgram":
        """The symmetric dual, re-expressed in primal (max, <=) form.

        min ``b @ y`` s.t. ``A^T y >= c``, ``y >= 0`` is equivalent to
        max ``-b @ y`` s.t. ``-A^T y <= -c``, ``y >= 0``.
        """
        return LinearProgram(
            c=-self.b,
            A=-self.A.T,
            b=-self.c,
            name=f"dual({self.name})" if self.name else "dual",
        )

    def scaled(self, factor: float) -> "LinearProgram":
        """The same feasible region with objective scaled by ``factor > 0``."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return LinearProgram(
            c=self.c * factor, A=self.A, b=self.b, name=self.name
        )

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"LinearProgram({label} m={self.n_constraints}, "
            f"n={self.n_variables})"
        )


def from_minimization(
    c: np.ndarray, A_ub: np.ndarray, b_ub: np.ndarray, name: str = ""
) -> LinearProgram:
    """Build a :class:`LinearProgram` from a minimization problem.

    min ``c @ x`` s.t. ``A_ub x <= b_ub``, ``x >= 0`` becomes
    max ``(-c) @ x`` under the same constraints; callers negate the
    reported optimum to recover the minimization value.
    """
    return LinearProgram(c=-np.asarray(c, dtype=float), A=A_ub, b=b_ub,
                         name=name)


def with_equalities(
    c: np.ndarray,
    A_ub: np.ndarray | None = None,
    b_ub: np.ndarray | None = None,
    A_eq: np.ndarray | None = None,
    b_eq: np.ndarray | None = None,
    *,
    equality_slack: float = 0.0,
    name: str = "",
) -> LinearProgram:
    """Build a problem mixing inequality and equality constraints.

    Each equality row ``a @ x = b`` becomes the inequality pair
    ``a @ x <= b + slack`` and ``-a @ x <= -b + slack``.  With
    ``equality_slack = 0`` the encoding is exact but the feasible
    region has no strict interior on those rows — interior-point
    methods (especially the analog solvers) need a positive slack to
    traverse it (see the routing generators for the same pattern).

    Parameters
    ----------
    c:
        Objective (maximized).
    A_ub, b_ub:
        Optional inequality block.
    A_eq, b_eq:
        Optional equality block.
    equality_slack:
        Epsilon relaxation per equality row (>= 0).
    """
    if equality_slack < 0:
        raise ValueError("equality_slack must be non-negative")
    c = np.asarray(c, dtype=float)
    blocks_a: list[np.ndarray] = []
    blocks_b: list[np.ndarray] = []
    if A_ub is not None or b_ub is not None:
        if A_ub is None or b_ub is None:
            raise ValueError("A_ub and b_ub must be given together")
        blocks_a.append(np.asarray(A_ub, dtype=float))
        blocks_b.append(np.asarray(b_ub, dtype=float))
    if A_eq is not None or b_eq is not None:
        if A_eq is None or b_eq is None:
            raise ValueError("A_eq and b_eq must be given together")
        A_eq = np.asarray(A_eq, dtype=float)
        b_eq = np.asarray(b_eq, dtype=float)
        blocks_a.append(A_eq)
        blocks_b.append(b_eq + equality_slack)
        blocks_a.append(-A_eq)
        blocks_b.append(-b_eq + equality_slack)
    if not blocks_a:
        raise ValueError("need at least one constraint block")
    return LinearProgram(
        c=c,
        A=np.vstack(blocks_a),
        b=np.concatenate(blocks_b),
        name=name,
    )
