"""Infeasibility and unboundedness detection.

Section 3.1: "It is proven that unbound dual indicates primal being
infeasible and vice versa, therefore, constraints are infeasible if the
element with the largest absolute value in x, y is greater than a
certain enough large number" — the classic big-M divergence test,
applied every iteration.

Section 3.2 adds the variation-tolerant final check: accept a solution
when ``A x <= alpha b`` with ``alpha`` slightly above 1 (implemented on
:class:`~repro.core.problem.LinearProgram`).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.core.problem import LinearProgram


class DivergenceKind(enum.Enum):
    """Which iterate diverged, and what that certifies."""

    NONE = "none"
    #: ``y`` diverged — the dual is unbounded, so the primal is infeasible.
    PRIMAL_INFEASIBLE = "primal_infeasible"
    #: ``x`` diverged — the primal is unbounded, so the dual is infeasible.
    DUAL_INFEASIBLE = "dual_infeasible"


def scaled_big_m(problem: LinearProgram, big_m: float) -> float:
    """The divergence bound scaled to the problem's data magnitude."""
    data_scale = max(
        1.0,
        float(np.max(np.abs(problem.b), initial=0.0)),
        float(np.max(np.abs(problem.c), initial=0.0)),
    )
    return big_m * data_scale

def collapse_threshold(
    problem: LinearProgram,
    resistance_ratio: float,
    scale_headroom: float,
) -> float:
    """Iterate magnitude at which the conductance mapping collapses.

    The fast mapping scales the largest coefficient to ``g_on``; once
    the diverging iterates dominate the coefficient range, the
    *structural* entries (the identity blocks, the rows of A) fall
    below ``g_off / scale`` and truncate to the off state, making the
    programmed system singular.  That happens when the iterate peak
    exceeds roughly ``(r_off / r_on) / headroom`` times the structural
    coefficient magnitude.  A solve failure with iterates beyond a
    quarter of this point is classified as the big-M divergence
    certificate reached through hardware (primal infeasible /
    unbounded), rather than a plain numerical failure.
    """
    structural = max(1.0, float(np.max(np.abs(problem.A), initial=0.0)))
    return 0.25 * (resistance_ratio / scale_headroom) * structural


def detect_divergence(
    x: np.ndarray,
    y: np.ndarray,
    bound: float,
) -> DivergenceKind:
    """Big-M test on the current iterates.

    Parameters
    ----------
    x, y:
        Current primal and dual iterates.
    bound:
        Pre-scaled divergence bound (see :func:`scaled_big_m`).
    """
    x_max = float(np.max(np.abs(x), initial=0.0))
    y_max = float(np.max(np.abs(y), initial=0.0))
    if not np.isfinite(x_max) or x_max > bound:
        return DivergenceKind.DUAL_INFEASIBLE
    if not np.isfinite(y_max) or y_max > bound:
        return DivergenceKind.PRIMAL_INFEASIBLE
    return DivergenceKind.NONE
