"""Solver 1: the memristor crossbar-based PDIP linear program solver.

Implements Algorithm 1 of the paper.  One (logical) crossbar holds the
augmented non-negative Newton matrix M of Eqn. 14a; every iteration

1. rewrites only the X, Y, Z, W diagonal cells of M — O(N) writes
   (Section 3.5);
2. computes the right-hand side r analogously: the crossbar multiplies
   M by the packed state ``[x, y, w, z, -w, -z, p]`` (Eqn. 15b), the
   complementarity rows are halved, and the result is subtracted from
   the constant ``[b, c, mu, mu, 0, 0, 0]`` — the subtraction a summing
   amplifier performs in hardware;
3. solves ``M Δs = r`` on the same crossbar in O(1) analog time;
4. applies the damped ratio-test step (Eqn. 11) and checks the exit
   criteria using the residual the crossbar already produced.

Non-convergence under process variation (singular perturbed arrays,
stalls at the analog noise floor) is handled by the recovery ladder of
:mod:`repro.reliability`: the paper's "double checking scheme"
(Section 4.5) is its first rung (reprogram, fresh variation draw),
optionally followed by remapping onto a fresh array and a digital
fallback.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.feasibility import (
    DivergenceKind,
    collapse_threshold,
    detect_divergence,
    scaled_big_m,
)
from repro.core.newton import AugmentedNewtonSystem
from repro.core.problem import LinearProgram
from repro.core.residuals import centering_mu, converged, duality_gap
from repro.core.result import (
    CrossbarCounters,
    FailureReason,
    IterationRecord,
    SolverResult,
    SolveStatus,
)
from repro.core.settings import CrossbarSolverSettings
from repro.core.stepsize import ratio_test_theta
from repro.core.warmstart import validated_state as _validated_state
from repro.crossbar.ops import AnalogMatrixOperator
from repro.exceptions import CrossbarSolveError, MappingError
from repro.obs.clock import Deadline, Stopwatch
from repro.obs.tracer import NOOP, Tracer
from repro.reliability.policy import RecoveryPolicy
from repro.reliability.probe import ProbeReport, probe_operator
from repro.reliability.recovery import solve_with_recovery
from repro.reliability.telemetry import RecoveryAction


class CrossbarPDIPSolver:
    """Memristor crossbar LP solver (Algorithm 1).

    Parameters
    ----------
    problem:
        The LP to solve (max c'x, Ax <= b, x >= 0).
    settings:
        Algorithm and hardware configuration.
    rng:
        Random generator driving the process-variation draws.
    recovery:
        Escalation policy.  Defaults to
        :meth:`RecoveryPolicy.from_settings`, i.e. the paper's retry
        scheme (``settings.retries`` reprogram attempts, no probe, no
        remap, no fallback).
    tracer:
        Observability hook (:mod:`repro.obs`): per-iteration spans for
        the algorithm phases (reformulation, programming, residual
        read-out, analog solve, step selection) plus the analog-op
        counters of the crossbar layer.  Defaults to the zero-overhead
        no-op tracer.
    deadline:
        Optional wall-clock budget (:class:`~repro.obs.clock.Deadline`)
        checked between recovery rungs and between PDIP iterations; an
        expired budget terminates the solve with a machine-readable
        DEADLINE_EXCEEDED after at most one more iteration's work.
    """

    def __init__(
        self,
        problem: LinearProgram,
        settings: CrossbarSolverSettings | None = None,
        *,
        rng: np.random.Generator | None = None,
        recovery: RecoveryPolicy | None = None,
        tracer: Tracer | None = None,
        deadline: Deadline | None = None,
    ) -> None:
        self.problem = problem
        self.settings = (
            settings if settings is not None else CrossbarSolverSettings()
        )
        self.rng = rng if rng is not None else np.random.default_rng()
        self.recovery = (
            recovery
            if recovery is not None
            else RecoveryPolicy.from_settings(self.settings)
        )
        self.tracer = tracer if tracer is not None else NOOP
        self.deadline = deadline
        self.system = AugmentedNewtonSystem(problem)
        # The operator programmed by the most recent ladder attempt;
        # lets a REPROGRAM rung redraw variation in place instead of
        # re-mapping and re-writing the full matrix.
        self._last_operator: AnalogMatrixOperator | None = None

    # -- public API ----------------------------------------------------------

    def solve(
        self,
        *,
        trace: bool = False,
        initial_state: tuple[np.ndarray, ...] | None = None,
    ) -> SolverResult:
        """Run Algorithm 1 under the recovery ladder.

        The ladder's first rung is the paper's Section 4.5 "double
        checking scheme" (reprogram, drawing fresh process variation);
        the configured :class:`RecoveryPolicy` may escalate further to
        remapping and a digital fallback.  The returned result carries
        the full attempt history and its wall-clock duration.

        ``initial_state`` optionally warm-starts the PDIP iterates
        (``(x, y, w, z)``, see :mod:`repro.core.warmstart`) on the
        *first* rung only; if that rung fails, every retry falls back
        to the seeded cold start so a stalled warm trajectory cannot
        poison the ladder.
        """
        self._last_operator = None
        first_rung = {"initial_state": initial_state}

        def attempt(
            rng: np.random.Generator, action: RecoveryAction
        ) -> tuple[SolverResult, ProbeReport | None]:
            # Section 4.5's "double checking scheme" rewrites the same
            # array: reuse the operator the failed attempt programmed,
            # redraw its variation, and let the warm path reset only
            # the diagonals (O(N), via the differential write path).
            # A REMAP rung abandons the array and rebuilds from
            # scratch.
            warm = (
                self._last_operator
                if action is RecoveryAction.REPROGRAM
                else None
            )
            return self._solve_once(
                rng=rng,
                trace=trace,
                operator=warm,
                redraw=rng if warm is not None else None,
                initial_state=first_rung.pop("initial_state", None),
            )

        with Stopwatch() as clock, self.tracer.span(
            "solve", solver="crossbar", constraints=self.problem.A.shape[0]
        ):
            result = solve_with_recovery(
                attempt,
                self.recovery,
                self.problem,
                self.rng,
                tracer=self.tracer,
                deadline=self.deadline,
            )
        return dataclasses.replace(
            result, elapsed_seconds=clock.elapsed_seconds
        )

    def solve_on(
        self,
        operator: AnalogMatrixOperator,
        *,
        trace: bool = False,
        initial_state: tuple[np.ndarray, ...] | None = None,
    ) -> SolverResult:
        """Run ONE attempt on a pre-programmed (warm) operator.

        The serving layer (:mod:`repro.service`) keeps arrays
        programmed between jobs: when a job's structural blocks
        (A/Aᵀ + compensation) match what ``operator`` already holds,
        this entry point skips the full-array programming and pays only
        the O(N) diagonal rewrite — the paper's per-iteration cost,
        amortized across *requests*.  No recovery ladder runs here;
        rescheduling is the caller's concern.  The returned counters
        cover only this attempt's writes (the operator's lifetime
        totals are baselined out).  ``initial_state`` optionally
        warm-starts the PDIP iterates from a previous optimum
        (:mod:`repro.core.warmstart`) — the re-solve tier's fast path.
        """
        with Stopwatch() as clock, self.tracer.span(
            "solve",
            solver="crossbar",
            constraints=self.problem.A.shape[0],
            warm=True,
        ):
            result, _ = self._solve_once(
                rng=self.rng,
                trace=trace,
                operator=operator,
                initial_state=initial_state,
            )
        return dataclasses.replace(
            result, elapsed_seconds=clock.elapsed_seconds
        )

    def build_operator(
        self, rng: np.random.Generator | None = None
    ) -> AnalogMatrixOperator:
        """Program a fresh operator with this problem's full matrix.

        The initial-state matrix (all four diagonals at
        ``settings.initial_value``) is what :meth:`solve_on` expects to
        find; the serving layer uses this as the cold-path programmer.
        """
        settings = self.settings
        x0 = np.full(self.problem.A.shape[1], settings.initial_value)
        y0 = np.full(self.problem.A.shape[0], settings.initial_value)
        matrix = self.system.build_matrix(x0, y0, y0.copy(), x0.copy())
        return AnalogMatrixOperator(
            matrix,
            params=settings.device,
            variation=settings.variation,
            rng=rng if rng is not None else self.rng,
            dac_bits=settings.dac_bits,
            adc_bits=settings.adc_bits,
            scale_headroom=settings.scale_headroom,
            row_scaling=settings.row_scaling,
            off_state=settings.off_state,
            write_verify=settings.write_verify,
            tracer=self.tracer,
        )

    # -- one attempt -----------------------------------------------------------

    def _probe_rejection(
        self,
        probe: ProbeReport,
        report,
        multiplies: int,
    ) -> SolverResult:
        """Short-circuit result for an array the health probe rejected."""
        problem = self.problem
        m, n = problem.A.shape
        counters = CrossbarCounters(
            multiplies=multiplies,
            solves=0,
            cells_written=report.cells_written,
            write_pulses=report.pulses,
            write_latency_s=report.latency_s,
            write_energy_j=report.energy_j,
            array_size=self.system.size,
            verify_reads=report.verify_reads,
            verify_repulsed=report.repulsed_cells,
            verify_unverified=report.unverified_cells,
        )
        x = np.zeros(n)
        return SolverResult(
            status=SolveStatus.NUMERICAL_FAILURE,
            x=x,
            y=np.zeros(m),
            w=np.zeros(m),
            z=np.zeros(n),
            objective=problem.objective(x),
            iterations=0,
            crossbar=counters,
            message=(
                f"health probe rejected array: relative error "
                f"{probe.max_rel_error:.3g} exceeds tolerance "
                f"{probe.tolerance:.3g}"
            ),
            failure_reason=FailureReason.PROBE_UNHEALTHY,
        )

    def _solve_once(
        self,
        *,
        rng: np.random.Generator | None = None,
        trace: bool = False,
        operator: AnalogMatrixOperator | None = None,
        redraw: np.random.Generator | None = None,
        initial_state: tuple[np.ndarray, ...] | None = None,
    ) -> tuple[SolverResult, ProbeReport | None]:
        problem = self.problem
        settings = self.settings
        system = self.system
        tracer = self.tracer
        m, n = problem.A.shape
        rng = rng if rng is not None else self.rng

        if initial_state is not None:
            x, y, w, z = _validated_state(initial_state, m, n, settings)
        else:
            x = np.full(n, settings.initial_value)
            z = np.full(n, settings.initial_value)
            y = np.full(m, settings.initial_value)
            w = np.full(m, settings.initial_value)

        if operator is None:
            # Eqn. 13/14a: eliminate negatives via compensation
            # variables and assemble the augmented non-negative Newton
            # matrix.
            with tracer.span("reformulate"):
                matrix = system.build_matrix(x, y, w, z)
            with tracer.span("program", array="M"):
                operator = AnalogMatrixOperator(
                    matrix,
                    params=settings.device,
                    variation=settings.variation,
                    rng=rng,
                    dac_bits=settings.dac_bits,
                    adc_bits=settings.adc_bits,
                    scale_headroom=settings.scale_headroom,
                    row_scaling=settings.row_scaling,
                    off_state=settings.off_state,
                    write_verify=settings.write_verify,
                    tracer=tracer,
                )
            self._last_operator = operator
            base_report = None
        else:
            # Warm start: the structural A/Aᵀ + compensation blocks are
            # already programmed from an earlier solve sharing this
            # problem's structure; only the X, Y, Z, W diagonals carry
            # per-problem state, so the write cost is O(N), not O(N²).
            if (operator.n_out, operator.n_in) != (system.size, system.size):
                raise MappingError(
                    f"warm operator is {operator.n_out}x{operator.n_in}; "
                    f"this problem needs {system.size}x{system.size}"
                )
            base_report = operator.write_report
            if redraw is not None:
                # Recovery-ladder reprogram: fresh variation draw on
                # every already-programmed cell, zero target changes.
                with tracer.span("program", array="M", redraw=True):
                    operator.redraw_variation(redraw)
            with tracer.span("program", array="M", warm=True):
                rows, cols, values = system.diagonal_update(x, y, w, z)
                operator.update_coefficients(
                    rows, cols, values, floor_to_representable=True
                )
                # Undo scale drift left by the previous solve: sticky
                # remaps inflate the representable floor, which would
                # make warm starts converge slower than cold ones.
                operator.renormalize()
        multiplies = 0
        solves = 0

        probe = None
        if self.recovery.probe is not None:
            with tracer.span("probe", array="M"):
                probe = probe_operator(
                    operator, self.recovery.probe, rng, label="M"
                )
            multiplies += probe.vectors
            if not probe.healthy:
                tracer.gauge("solver.iterations", 0)
                report = operator.write_report
                if base_report is not None:
                    report = report - base_report
                return (
                    self._probe_rejection(probe, report, multiplies),
                    probe,
                )

        eps_primal = settings.eps_primal * (
            1.0 + float(np.max(np.abs(problem.b), initial=0.0))
        )
        eps_dual = settings.eps_dual * (
            1.0 + float(np.max(np.abs(problem.c), initial=0.0))
        )
        # Gap tolerance is anchored at the *nominal* cold-start gap
        # ((n+m) * initial_value^2) so a warm start near the optimum is
        # judged by the same absolute threshold as a cold solve — not
        # by its own (tiny) initial gap, which would demand a far
        # tighter answer from exactly the runs meant to finish fast.
        gap0 = (n + m) * settings.initial_value**2
        eps_gap = settings.eps_gap * max(1.0, gap0)
        converter_bits = [
            bits
            for bits in (settings.dac_bits, settings.adc_bits)
            if bits is not None
        ]
        quant_rel = 3.0 * 2.0 ** -min(converter_bits) if converter_bits else 0.0
        divergence_bound = scaled_big_m(problem, settings.big_m)
        collapse_bound = collapse_threshold(
            problem,
            settings.device.resistance_ratio,
            settings.scale_headroom,
        )

        best_score = np.inf
        best_state = (x, y, w, z)
        stall = 0
        records: list[IterationRecord] = []
        iterations = 0
        status = SolveStatus.ITERATION_LIMIT
        message = ""
        reason = FailureReason.NONE

        deadline = self.deadline
        for iteration in range(settings.max_iterations):
          if deadline is not None and deadline.expired:
            status = SolveStatus.NUMERICAL_FAILURE
            message = (
                f"deadline of {deadline.budget_s:.3g}s exceeded after "
                f"{iterations} iterations"
            )
            reason = FailureReason.DEADLINE_EXCEEDED
            break
          with tracer.span("iteration", index=iteration):
            mu = centering_mu(x, y, w, z, settings.delta)
            if iteration:
                with tracer.span("newton_assembly"):
                    rows, cols, values = system.diagonal_update(x, y, w, z)
                # The complementarity diagonals must stay nonzero or the
                # programmed system turns singular; clamp at the smallest
                # representable coefficient.
                with tracer.span("program", array="M"):
                    operator.update_coefficients(
                        rows, cols, values, floor_to_representable=True
                    )

            with tracer.span("residual"):
                state = system.state_vector(x, y, w, z)
                product = operator.multiply(state)
                multiplies += 1
                residual = system.residual_from_product(product, mu)
                p_inf, d_inf = system.infeasibility_norms(residual)
                gap = duality_gap(x, y, w, z)

            # The converters bound how small a residual the controller
            # can resolve: the analog product carries ~2^-bits relative
            # error of its block peak.  Demanding less than that noise
            # floor would spin forever, so the effective tolerances
            # track it (the controller knows its own ADC resolution).
            lay = system.layout
            floor_p = quant_rel * float(
                np.max(np.abs(product[lay.row_primal]), initial=0.0)
            )
            floor_d = quant_rel * float(
                np.max(np.abs(product[lay.row_dual]), initial=0.0)
            )
            if converged(
                p_inf,
                d_inf,
                gap,
                eps_primal=max(eps_primal, floor_p),
                eps_dual=max(eps_dual, floor_d),
                eps_gap=eps_gap,
            ):
                status = SolveStatus.OPTIMAL
                break

            score = max(p_inf / eps_primal, d_inf / eps_dual, gap / eps_gap)
            if score < best_score * (1.0 - 1e-3):
                best_score = score
                best_state = (x, y, w, z)
                stall = 0
            else:
                stall += 1
                if stall >= settings.stall_iterations:
                    iterate_peak = max(
                        float(np.max(np.abs(x), initial=0.0)),
                        float(np.max(np.abs(y), initial=0.0)),
                    )
                    x, y, w, z = best_state
                    if iterate_peak > collapse_bound:
                        status = SolveStatus.INFEASIBLE
                        message = "stalled while diverging"
                    elif problem.satisfies_relaxed_constraints(
                        x,
                        settings.alpha,
                        problem.variation_row_tolerance(
                            x, settings.variation.relative_magnitude
                        ),
                    ):
                        status = SolveStatus.OPTIMAL
                        message = (
                            "stalled at analog noise floor; relaxed "
                            "feasibility check passed"
                        )
                    else:
                        status = SolveStatus.ITERATION_LIMIT
                        message = "stalled without a feasible iterate"
                        reason = FailureReason.NO_FEASIBLE_ITERATE
                    break

            try:
                with tracer.span("analog_solve"):
                    delta = operator.solve(residual)
            except CrossbarSolveError as exc:
                iterate_peak = max(
                    float(np.max(np.abs(x), initial=0.0)),
                    float(np.max(np.abs(y), initial=0.0)),
                )
                if iterate_peak > collapse_bound:
                    # The iterates grew until the conductance mapping's
                    # dynamic range collapsed — a hardware manifestation
                    # of the big-M divergence certificate.
                    status = SolveStatus.INFEASIBLE
                    message = f"divergence collapsed the mapping: {exc}"
                else:
                    status = SolveStatus.NUMERICAL_FAILURE
                    message = str(exc)
                    reason = FailureReason.SINGULAR_SYSTEM
                break
            solves += 1

            with tracer.span("step"):
                dx, dy, dw, dz = system.extract_steps(delta)
                theta = ratio_test_theta(
                    np.concatenate([x, y, w, z]),
                    np.concatenate([dx, dy, dw, dz]),
                    step_scale=settings.step_scale,
                    ignore_below=settings.positivity_floor * 1e4,
                )
                floor = settings.positivity_floor
                x = np.maximum(x + theta * dx, floor)
                y = np.maximum(y + theta * dy, floor)
                w = np.maximum(w + theta * dw, floor)
                z = np.maximum(z + theta * dz, floor)
            iterations = iteration + 1

            divergence = detect_divergence(x, y, divergence_bound)
            if divergence is not DivergenceKind.NONE:
                status = SolveStatus.INFEASIBLE
                message = divergence.value
                break

            if trace:
                report = operator.write_report
                records.append(
                    IterationRecord(
                        index=iteration,
                        mu=mu,
                        duality_gap=duality_gap(x, y, w, z),
                        primal_infeasibility=p_inf,
                        dual_infeasibility=d_inf,
                        theta=theta,
                        cells_written=report.cells_written,
                    )
                )

        if status is SolveStatus.ITERATION_LIMIT and not message:
            # Ran out of iterations while still (slowly) improving:
            # classify the best iterate the same way the stall exit does.
            x, y, w, z = best_state
            if problem.satisfies_relaxed_constraints(
                x,
                settings.alpha,
                problem.variation_row_tolerance(
                    x, settings.variation.relative_magnitude
                ),
            ):
                status = SolveStatus.OPTIMAL
                message = (
                    "iteration limit; accepted best feasible iterate"
                )
            else:
                message = "iteration limit without a feasible iterate"
                reason = FailureReason.NO_FEASIBLE_ITERATE

        if status is SolveStatus.OPTIMAL and not (
            problem.satisfies_relaxed_constraints(
                x,
                settings.alpha,
                problem.variation_row_tolerance(
                    x, settings.variation.relative_magnitude
                ),
            )
        ):
            # Section 3.2's robust feasibility detection: variation can
            # warp the realized feasible region, so never report a point
            # violating A x <= alpha b as optimal.
            status = SolveStatus.NUMERICAL_FAILURE
            message = "final constraint check A x <= alpha b failed"
            reason = FailureReason.FINAL_CHECK_FAILED

        if status in (SolveStatus.OPTIMAL, SolveStatus.INFEASIBLE):
            reason = FailureReason.NONE

        tracer.gauge("solver.iterations", iterations)
        report = operator.write_report
        if base_report is not None:
            report = report - base_report
        counters = CrossbarCounters(
            multiplies=multiplies,
            solves=solves,
            cells_written=report.cells_written,
            write_pulses=report.pulses,
            write_latency_s=report.latency_s,
            write_energy_j=report.energy_j,
            array_size=system.size,
            verify_reads=report.verify_reads,
            verify_repulsed=report.repulsed_cells,
            verify_unverified=report.unverified_cells,
        )
        result = SolverResult(
            status=status,
            x=x,
            y=y,
            w=w,
            z=z,
            objective=problem.objective(x),
            iterations=iterations,
            trace=tuple(records),
            crossbar=counters,
            message=message,
            failure_reason=reason,
        )
        return result, probe


def solve_crossbar(
    problem: LinearProgram,
    settings: CrossbarSolverSettings | None = None,
    *,
    rng: np.random.Generator | None = None,
    recovery: RecoveryPolicy | None = None,
    trace: bool = False,
    tracer: Tracer | None = None,
) -> SolverResult:
    """Functional wrapper around :class:`CrossbarPDIPSolver`."""
    solver = CrossbarPDIPSolver(
        problem, settings, rng=rng, recovery=recovery, tracer=tracer
    )
    return solver.solve(trace=trace)
