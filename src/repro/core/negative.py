"""Negative-coefficient elimination via compensation variables.

Memristance is non-negative, so a linear system ``K s = r`` can only be
mapped onto a crossbar after every negative coefficient is removed.
Eqn. 13 of the paper does this with *compensation variables*: for every
column ``j`` of ``K`` containing a negative entry, introduce
``s_c = -s_j``, move each negative entry's absolute value into the new
column, and append the linking constraint ``s_j + s_c = 0``:

.. math::

   \\begin{bmatrix} K^+ & K^- \\\\ E & I \\end{bmatrix}
   \\begin{bmatrix} s \\\\ s_c \\end{bmatrix}
   = \\begin{bmatrix} r \\\\ 0 \\end{bmatrix}

where ``K^+ = max(K, 0)``, ``K^-`` holds ``|min(K, 0)|`` restricted to
the affected columns, and ``E`` selects those columns.  The augmented
matrix is elementwise non-negative, square, and has exactly the same
solution ``s`` in its leading block.

This module implements the transform generically; the PDIP solvers use
it through the structured builders in :mod:`repro.core.newton` and
:mod:`repro.core.scalable_solver`, and the property-based tests verify
solution equivalence on random systems.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class NegativeElimination:
    """A non-negative augmentation of a signed square system.

    Attributes
    ----------
    matrix:
        The augmented non-negative square matrix of size
        ``n_original + n_compensation``.
    negative_columns:
        Original column indices that received a compensation variable,
        in augmentation order.
    n_original:
        Size of the original system.
    """

    matrix: np.ndarray
    negative_columns: tuple[int, ...]
    n_original: int

    @property
    def n_compensation(self) -> int:
        """Number of compensation variables added."""
        return len(self.negative_columns)

    @property
    def size(self) -> int:
        """Dimension of the augmented system."""
        return self.n_original + self.n_compensation

    def augment_rhs(self, r: np.ndarray) -> np.ndarray:
        """Right-hand side for the augmented system: ``[r; 0]``."""
        r = np.asarray(r, dtype=float)
        if r.shape != (self.n_original,):
            raise ValueError(
                f"rhs has shape {r.shape}, expected ({self.n_original},)"
            )
        return np.concatenate([r, np.zeros(self.n_compensation)])

    def augment_state(self, s: np.ndarray) -> np.ndarray:
        """State vector for the augmented system: ``[s; -s[cols]]``.

        Satisfies ``matrix @ augment_state(s) == [K s; 0]`` exactly —
        the identity behind the paper's crossbar-reuse trick (Eqn. 15b).
        """
        s = np.asarray(s, dtype=float)
        if s.shape != (self.n_original,):
            raise ValueError(
                f"state has shape {s.shape}, expected ({self.n_original},)"
            )
        comp = -s[list(self.negative_columns)]
        return np.concatenate([s, comp])

    def extract(self, s_aug: np.ndarray) -> np.ndarray:
        """Original-system solution: the leading ``n_original`` entries."""
        s_aug = np.asarray(s_aug, dtype=float)
        if s_aug.shape != (self.size,):
            raise ValueError(
                f"augmented state has shape {s_aug.shape}, expected "
                f"({self.size},)"
            )
        return s_aug[: self.n_original].copy()


def eliminate_negatives(matrix: np.ndarray) -> NegativeElimination:
    """Build the non-negative augmentation of a signed square matrix.

    Parameters
    ----------
    matrix:
        Square matrix ``K``, possibly containing negative entries.

    Returns
    -------
    NegativeElimination
        The transform record; ``record.matrix`` is elementwise
        non-negative and ``record.matrix @ record.augment_state(s)``
        equals ``[K @ s; 0]`` for every ``s``.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {matrix.shape}")
    n = matrix.shape[0]
    negative_columns = tuple(
        int(j) for j in np.flatnonzero(np.any(matrix < 0, axis=0))
    )
    k = len(negative_columns)
    augmented = np.zeros((n + k, n + k))
    augmented[:n, :n] = np.maximum(matrix, 0.0)
    for idx, j in enumerate(negative_columns):
        augmented[:n, n + idx] = np.maximum(-matrix[:, j], 0.0)
        augmented[n + idx, j] = 1.0
        augmented[n + idx, n + idx] = 1.0
    return NegativeElimination(
        matrix=augmented,
        negative_columns=negative_columns,
        n_original=n,
    )
