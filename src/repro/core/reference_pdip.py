"""Software reference PDIP solver.

This is the paper's "PDIP implemented in Matlab" comparator: the exact
algorithm of Section 3.1 with the signed Newton system (Eqn. 12)
solved by dense LU on the CPU — O(N^3) per iteration, against which the
crossbar solver's pseudo-O(N) is measured.  It is also the ground
truth used by the tests: the crossbar solvers must agree with it (and
with scipy's HiGHS) on feasible problems.
"""

from __future__ import annotations

import numpy as np

from repro.core.feasibility import (
    DivergenceKind,
    detect_divergence,
    scaled_big_m,
)
from repro.core.newton import NewtonSystem
from repro.core.problem import LinearProgram
from repro.core.residuals import (
    centering_mu,
    converged,
    dual_infeasibility,
    duality_gap,
    primal_infeasibility,
)
from repro.core.result import IterationRecord, SolverResult, SolveStatus
from repro.core.settings import PDIPSettings
from repro.core.stepsize import ratio_test_theta
from repro.obs.clock import monotonic


def solve_reference(
    problem: LinearProgram,
    settings: PDIPSettings | None = None,
    *,
    trace: bool = False,
) -> SolverResult:
    """Solve an LP with the software PDIP method.

    Parameters
    ----------
    problem:
        The LP to solve (max c'x, Ax <= b, x >= 0).
    settings:
        Algorithm parameters; defaults to :class:`PDIPSettings`.
    trace:
        Record per-iteration diagnostics in the result.

    Returns
    -------
    SolverResult
        With status OPTIMAL, INFEASIBLE (big-M divergence),
        ITERATION_LIMIT, or NUMERICAL_FAILURE (singular Newton system).
    """
    settings = settings if settings is not None else PDIPSettings()
    start = monotonic()
    m, n = problem.A.shape
    x = np.full(n, settings.initial_value)
    z = np.full(n, settings.initial_value)
    y = np.full(m, settings.initial_value)
    w = np.full(m, settings.initial_value)

    eps_primal = settings.eps_primal * (
        1.0 + float(np.max(np.abs(problem.b), initial=0.0))
    )
    eps_dual = settings.eps_dual * (
        1.0 + float(np.max(np.abs(problem.c), initial=0.0))
    )
    gap0 = duality_gap(x, y, w, z)
    eps_gap = settings.eps_gap * max(1.0, gap0)
    divergence_bound = scaled_big_m(problem, settings.big_m)

    records: list[IterationRecord] = []
    iterations = 0
    status = SolveStatus.ITERATION_LIMIT
    message = ""
    system = NewtonSystem(problem)

    for iteration in range(settings.max_iterations):
        p_inf = primal_infeasibility(problem, x, w)
        d_inf = dual_infeasibility(problem, y, z)
        gap = duality_gap(x, y, w, z)
        if converged(
            p_inf,
            d_inf,
            gap,
            eps_primal=eps_primal,
            eps_dual=eps_dual,
            eps_gap=eps_gap,
        ):
            status = SolveStatus.OPTIMAL
            break

        mu = centering_mu(x, y, w, z, settings.delta)
        matrix = system.matrix(x, y, w, z)
        rhs = system.rhs(x, y, w, z, mu)
        try:
            delta = np.linalg.solve(matrix, rhs)
        except np.linalg.LinAlgError:
            iterate_peak = max(
                float(np.max(np.abs(x), initial=0.0)),
                float(np.max(np.abs(y), initial=0.0)),
            )
            if iterate_peak > np.sqrt(divergence_bound):
                # Divergence degraded the Newton system to singularity
                # before the big-M bound fired: same certificate.
                status = SolveStatus.INFEASIBLE
                message = (
                    "dual_infeasible"
                    if np.max(np.abs(x), initial=0.0)
                    > np.max(np.abs(y), initial=0.0)
                    else "primal_infeasible"
                )
            else:
                status = SolveStatus.NUMERICAL_FAILURE
                message = "singular Newton system"
            break

        dx = delta[:n]
        dy = delta[n:n + m]
        dw = delta[n + m:n + 2 * m]
        dz = delta[n + 2 * m:]
        theta = ratio_test_theta(
            np.concatenate([x, y, w, z]),
            np.concatenate([dx, dy, dw, dz]),
            step_scale=settings.step_scale,
        )
        x = x + theta * dx
        y = y + theta * dy
        w = w + theta * dw
        z = z + theta * dz
        iterations = iteration + 1

        divergence = detect_divergence(x, y, divergence_bound)
        if divergence is not DivergenceKind.NONE:
            status = SolveStatus.INFEASIBLE
            message = divergence.value
            break

        if trace:
            records.append(
                IterationRecord(
                    index=iteration,
                    mu=mu,
                    duality_gap=duality_gap(x, y, w, z),
                    primal_infeasibility=primal_infeasibility(problem, x, w),
                    dual_infeasibility=dual_infeasibility(problem, y, z),
                    theta=theta,
                )
            )

    return SolverResult(
        status=status,
        x=x,
        y=y,
        w=w,
        z=z,
        objective=problem.objective(x),
        iterations=iterations,
        trace=tuple(records),
        crossbar=None,
        message=message,
        elapsed_seconds=monotonic() - start,
    )
