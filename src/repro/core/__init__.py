"""The paper's primary contribution: crossbar-based PDIP LP solvers.

Public entry points:

- :class:`~repro.core.problem.LinearProgram` — problem definition.
- :func:`~repro.core.reference_pdip.solve_reference` — software PDIP
  baseline (dense Newton solves on the CPU).
- :class:`~repro.core.crossbar_solver.CrossbarPDIPSolver` /
  :func:`~repro.core.crossbar_solver.solve_crossbar` — Solver 1
  (Algorithm 1): the whole augmented Newton system on one crossbar.
- :class:`~repro.core.scalable_solver.LargeScaleCrossbarPDIPSolver` /
  :func:`~repro.core.scalable_solver.solve_crossbar_large_scale` —
  Solver 2 (Algorithm 2): the split iteration for large problems.
"""

from repro.core.batch_solver import solve_crossbar_batch
from repro.core.crossbar_solver import CrossbarPDIPSolver, solve_crossbar
from repro.core.negative import NegativeElimination, eliminate_negatives
from repro.core.newton import (
    AugmentedNewtonSystem,
    newton_matrix,
    newton_rhs,
)
from repro.core.problem import (
    LinearProgram,
    from_minimization,
    with_equalities,
)
from repro.core.reference_pdip import solve_reference
from repro.core.result import (
    CrossbarCounters,
    FailureReason,
    IterationRecord,
    SolverResult,
    SolveStatus,
)
from repro.core.scalable_solver import (
    LargeScaleCrossbarPDIPSolver,
    solve_crossbar_large_scale,
)
from repro.core.scalable_system import ScalableNewtonSystem
from repro.core.settings import (
    CrossbarSolverSettings,
    PDIPSettings,
    ScalableSolverSettings,
)

__all__ = [
    "LinearProgram",
    "from_minimization",
    "with_equalities",
    "SolverResult",
    "SolveStatus",
    "FailureReason",
    "IterationRecord",
    "CrossbarCounters",
    "PDIPSettings",
    "CrossbarSolverSettings",
    "ScalableSolverSettings",
    "solve_reference",
    "CrossbarPDIPSolver",
    "solve_crossbar",
    "solve_crossbar_batch",
    "LargeScaleCrossbarPDIPSolver",
    "solve_crossbar_large_scale",
    "AugmentedNewtonSystem",
    "ScalableNewtonSystem",
    "newton_matrix",
    "newton_rhs",
    "NegativeElimination",
    "eliminate_negatives",
]
