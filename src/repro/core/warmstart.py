"""Warm-start iterate construction for parameter-streaming re-solves.

A re-solve that changes only ``b``/``c`` leaves the programmed array
valid (the structural fingerprint excludes both), so the only remaining
cost is PDIP iterations.  Starting those iterations from the previous
optimum instead of the solvers' flat ``initial_value`` point turns a
full cold trajectory into a short polish: after a small parameter
drift the old optimum is already nearly primal/dual feasible.

The one hazard is complementarity: at an optimum roughly half of
``(x, w)`` / ``(y, z)`` sit at (numerical) zero, and a PDIP step from
an exactly-boundary point stalls — the ratio test returns a zero step
and the complementarity diagonals underflow the conductance range.
:func:`warm_start_state` therefore clamps every coordinate at a small
fraction of the cold-start ``initial_value``, re-centering the point
just inside the cone while keeping it close enough to the old optimum
that only a few polish iterations remain.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import LinearProgram
from repro.core.result import SolverResult
from repro.core.settings import CrossbarSolverSettings

#: Fraction of ``settings.initial_value`` used as the interior floor.
#: 2% keeps the point close enough to the old optimum for a short
#: polish while leaving the complementarity diagonals representable on
#: the analog array: smaller floors (1e-3) were observed to turn the
#: first Newton system near-singular under device variation.
DEFAULT_FLOOR_SCALE = 0.02

#: Type of a warm-start state: ``(x, y, w, z)`` arrays.
WarmState = "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]"


def warm_start_state(
    result: SolverResult,
    problem: LinearProgram,
    settings: CrossbarSolverSettings,
    *,
    floor_scale: float = DEFAULT_FLOOR_SCALE,
):
    """Build a PDIP starting state ``(x, y, w, z)`` from a prior result.

    ``result`` is the previous solve of a problem with the same
    structure (same ``A`` shape; typically the same ``A``), ``problem``
    the new instance.  Every coordinate is clamped at
    ``settings.initial_value * floor_scale`` so the state is strictly
    interior (see module note).  Raises :class:`ValueError` when the
    stored iterates do not match the problem's dimensions — callers
    treat that as "no warm start available" and fall back cold.
    """
    m, n = problem.A.shape
    floor = float(settings.initial_value) * float(floor_scale)
    if floor <= 0.0:
        raise ValueError("floor_scale must leave a positive interior floor")
    parts = []
    for label, values, size in (
        ("x", result.x, n),
        ("y", result.y, m),
        ("w", result.w, m),
        ("z", result.z, n),
    ):
        arr = np.asarray(values, dtype=float)
        if arr.shape != (size,):
            raise ValueError(
                f"previous result's {label} has shape {arr.shape}, "
                f"expected ({size},) for this problem"
            )
        if not np.all(np.isfinite(arr)):
            raise ValueError(f"previous result's {label} is not finite")
        parts.append(np.maximum(arr, floor))
    return tuple(parts)


def validated_state(
    initial_state,
    m: int,
    n: int,
    settings: CrossbarSolverSettings,
):
    """Coerce a caller-supplied ``(x, y, w, z)`` state for ``_solve_once``.

    Both crossbar solvers call this at the top of an attempt: the
    state is copied, shape- and finiteness-checked against the problem
    dimensions, and clamped at ``settings.positivity_floor`` (the same
    floor the PDIP loop enforces between iterations).  Raises
    :class:`ValueError` on any mismatch.
    """
    try:
        x, y, w, z = initial_state
    except (TypeError, ValueError) as exc:
        raise ValueError(
            "initial_state must be a (x, y, w, z) quadruple"
        ) from exc
    floor = float(settings.positivity_floor)
    parts = []
    for label, values, size in (
        ("x", x, n), ("y", y, m), ("w", w, m), ("z", z, n)
    ):
        arr = np.array(values, dtype=float, copy=True)
        if arr.shape != (size,):
            raise ValueError(
                f"initial_state {label} has shape {arr.shape}, "
                f"expected ({size},)"
            )
        if not np.all(np.isfinite(arr)):
            raise ValueError(f"initial_state {label} is not finite")
        parts.append(np.maximum(arr, floor))
    return tuple(parts)
