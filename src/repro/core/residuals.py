"""PDIP residuals, duality gap, and the centering parameter.

These are the scalar quantities steering every PDIP variant in the
paper:

- primal infeasibility  ``A x + w - b``             (Eqn. 9a residual)
- dual infeasibility    ``A^T y - z - c``           (Eqn. 9b residual)
- duality gap           ``z^T x + y^T w``
- centering parameter   ``mu = delta * gap / (n + m)``   (Eqn. 8)
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import LinearProgram


def primal_residual(
    problem: LinearProgram, x: np.ndarray, w: np.ndarray
) -> np.ndarray:
    """``b - A x - w`` — zero when the primal equality holds."""
    return problem.b - problem.A @ x - w


def dual_residual(
    problem: LinearProgram, y: np.ndarray, z: np.ndarray
) -> np.ndarray:
    """``c - A^T y + z`` — zero when the dual equality holds."""
    return problem.c - problem.A.T @ y + z


def primal_infeasibility(
    problem: LinearProgram, x: np.ndarray, w: np.ndarray
) -> float:
    """Infinity norm of the primal residual."""
    return float(np.max(np.abs(primal_residual(problem, x, w)), initial=0.0))


def dual_infeasibility(
    problem: LinearProgram, y: np.ndarray, z: np.ndarray
) -> float:
    """Infinity norm of the dual residual."""
    return float(np.max(np.abs(dual_residual(problem, y, z)), initial=0.0))


def duality_gap(
    x: np.ndarray, y: np.ndarray, w: np.ndarray, z: np.ndarray
) -> float:
    """Complementarity gap ``z^T x + y^T w`` (>= 0 on the interior)."""
    return float(z @ x + y @ w)


def centering_mu(
    x: np.ndarray,
    y: np.ndarray,
    w: np.ndarray,
    z: np.ndarray,
    delta: float,
) -> float:
    """The paper's Eqn. 8: ``mu = delta * (z^T x + y^T w) / (n + m)``.

    ``delta`` must lie strictly between 0 and 1: too large and the
    iterates drift to the analytic center, too small and they jam into
    the boundary (Section 3.1).
    """
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must lie in (0, 1), got {delta}")
    n = x.shape[0]
    m = y.shape[0]
    return delta * duality_gap(x, y, w, z) / (n + m)


def converged(
    primal_inf: float,
    dual_inf: float,
    gap: float,
    *,
    eps_primal: float,
    eps_dual: float,
    eps_gap: float,
) -> bool:
    """Algorithm 1's exit test: all three criteria below tolerance."""
    return (
        primal_inf <= eps_primal
        and dual_inf <= eps_dual
        and gap <= eps_gap
    )
