"""Lockstep batched execution of Algorithm 1 across a fleet of LPs.

:func:`solve_crossbar_batch` evaluates many independent crossbar PDIP
solves together: problems whose augmented Newton systems share a
structural signature (size + diagonal-update cell positions) are
mapped onto one :class:`~repro.crossbar.opstack.AnalogOperatorStack`
and iterated in lockstep — per iteration, ONE batched diagonal
rewrite, ONE batched analog multiply and ONE batched analog solve
replace K python-level operator round-trips.  This is the sweep
engine's trial fan-out fast path.

Reproducibility is the design constraint, not a best effort:

- each member draws its attempt seed from its own generator exactly
  as the serial recovery ladder does, and all variation lands on
  per-member generators, so with the numpy backend **every member's
  result is bitwise what the serial solver returns** for the same
  problem/settings/generator — iterates, statuses, messages, write
  counters, attempt records;
- only the *first* ladder attempt runs in lockstep.  Members whose
  attempt concludes (OPTIMAL / INFEASIBLE — in practice almost all of
  them) take their result straight from the batch; a member that needs
  the recovery ladder has its generator rewound to the pre-attempt
  state and re-runs the full serial ladder, reproducing attempt 1
  bitwise before escalating;
- per-member control flow (convergence, stalls, divergence,
  relaxed-feasibility exits) is evaluated with the *serial* helper
  functions on that member's vectors — only the analog tensor ops are
  batched.

Workloads that need the serial path fall back transparently: row
scaling, health probes, per-iteration tracing, warm starts, and
structural singletons all run the plain solver per problem.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.backend import Backend
from repro.core.crossbar_solver import CrossbarPDIPSolver
from repro.core.feasibility import (
    DivergenceKind,
    collapse_threshold,
    detect_divergence,
    scaled_big_m,
)
from repro.core.newton import AugmentedNewtonSystem
from repro.core.problem import LinearProgram
from repro.core.residuals import centering_mu, converged, duality_gap
from repro.core.result import (
    CrossbarCounters,
    FailureReason,
    SolverResult,
    SolveStatus,
    with_attempts,
)
from repro.core.settings import CrossbarSolverSettings
from repro.core.stepsize import ratio_test_theta
from repro.crossbar.opstack import AnalogOperatorStack
from repro.obs.clock import Stopwatch
from repro.reliability.policy import RecoveryPolicy
from repro.reliability.recovery import _record_for
from repro.reliability.telemetry import RecoveryAction

_CONCLUSIVE = (SolveStatus.OPTIMAL, SolveStatus.INFEASIBLE)


def _group_key(system: AugmentedNewtonSystem) -> tuple:
    """Structural signature two systems must share to iterate in lockstep.

    The batched diagonal rewrite needs identical cell positions across
    the stack; those positions are fixed by the layout (n, m and the
    sign-pattern compensation counts), so the signature is the system
    size plus the exact diagonal-update coordinates.
    """
    rows, cols, _ = system.diagonal_update(
        np.zeros(system.n), np.zeros(system.m),
        np.zeros(system.m), np.zeros(system.n),
    )
    return (system.size, rows.tobytes(), cols.tobytes())


@dataclasses.dataclass
class _Member:
    """Per-member lockstep state mirroring one serial ``_solve_once``."""

    problem: LinearProgram
    system: AugmentedNewtonSystem
    x: np.ndarray
    y: np.ndarray
    w: np.ndarray
    z: np.ndarray
    eps_primal: float
    eps_dual: float
    eps_gap: float
    divergence_bound: float
    collapse_bound: float
    best_score: float = np.inf
    best_state: tuple = ()
    stall: int = 0
    multiplies: int = 0
    solves: int = 0
    iterations: int = 0
    status: SolveStatus = SolveStatus.ITERATION_LIMIT
    message: str = ""
    reason: FailureReason = FailureReason.NONE
    done: bool = False

    def finish(self, status, message="", reason=FailureReason.NONE):
        self.status = status
        self.message = message
        self.reason = reason
        self.done = True


def _relaxed_ok(member: _Member, settings: CrossbarSolverSettings) -> bool:
    return member.problem.satisfies_relaxed_constraints(
        member.x,
        settings.alpha,
        member.problem.variation_row_tolerance(
            member.x, settings.variation.relative_magnitude
        ),
    )


def _lockstep_attempt(
    members: list[_Member],
    settings: CrossbarSolverSettings,
    seeds: list[int],
    backend: Backend | str | None,
) -> list[SolverResult]:
    """One cold recovery-ladder attempt for the whole group, batched.

    Mirrors ``CrossbarPDIPSolver._solve_once`` member-by-member; the
    construction, diagonal rewrites, multiplies and solves run as
    single stacked tensor ops.
    """
    k_members = len(members)
    size = members[0].system.size
    matrices = np.empty((k_members, size, size))
    for k, member in enumerate(members):
        matrices[k] = member.system.build_matrix(
            member.x, member.y, member.w, member.z
        )
    opstack = AnalogOperatorStack(
        matrices,
        params=settings.device,
        variation=settings.variation,
        rngs=[np.random.default_rng(seed) for seed in seeds],
        dac_bits=settings.dac_bits,
        adc_bits=settings.adc_bits,
        scale_headroom=settings.scale_headroom,
        off_state=settings.off_state,
        write_verify=settings.write_verify,
        backend=backend,
    )

    converter_bits = [
        bits
        for bits in (settings.dac_bits, settings.adc_bits)
        if bits is not None
    ]
    quant_rel = 3.0 * 2.0 ** -min(converter_bits) if converter_bits else 0.0
    diag_rows, diag_cols, _ = members[0].system.diagonal_update(
        members[0].x, members[0].y, members[0].w, members[0].z
    )

    for iteration in range(settings.max_iterations):
        active = [k for k in range(k_members) if not members[k].done]
        if not active:
            break
        mus = {}
        for k in active:
            member = members[k]
            mus[k] = centering_mu(
                member.x, member.y, member.w, member.z, settings.delta
            )
        if iteration:
            values = np.stack(
                [
                    members[k].system.diagonal_update(
                        members[k].x, members[k].y, members[k].w, members[k].z
                    )[2]
                    for k in active
                ]
            )
            opstack.update_coefficients(
                diag_rows,
                diag_cols,
                values,
                floor_to_representable=True,
                members=np.array(active),
            )

        # Compact tensors over the still-active members only: stragglers
        # near the iteration cap no longer drag the whole stack through
        # the analog ops (each member's row is computed independently,
        # so the subset results stay bitwise identical).
        state = np.empty((len(active), size))
        for pos, k in enumerate(active):
            member = members[k]
            state[pos] = member.system.state_vector(
                member.x, member.y, member.w, member.z
            )
        products = opstack.multiply(state, members=np.array(active))

        solving = []
        residual_rows = []
        for pos, k in enumerate(active):
            member = members[k]
            member.multiplies += 1
            residual = member.system.residual_from_product(
                products[pos], mus[k]
            )
            p_inf, d_inf = member.system.infeasibility_norms(residual)
            gap = duality_gap(member.x, member.y, member.w, member.z)
            lay = member.system.layout
            floor_p = quant_rel * float(
                np.max(np.abs(products[pos][lay.row_primal]), initial=0.0)
            )
            floor_d = quant_rel * float(
                np.max(np.abs(products[pos][lay.row_dual]), initial=0.0)
            )
            if converged(
                p_inf,
                d_inf,
                gap,
                eps_primal=max(member.eps_primal, floor_p),
                eps_dual=max(member.eps_dual, floor_d),
                eps_gap=member.eps_gap,
            ):
                member.finish(SolveStatus.OPTIMAL)
                continue

            score = max(
                p_inf / member.eps_primal,
                d_inf / member.eps_dual,
                gap / member.eps_gap,
            )
            if score < member.best_score * (1.0 - 1e-3):
                member.best_score = score
                member.best_state = (member.x, member.y, member.w, member.z)
                member.stall = 0
            else:
                member.stall += 1
                if member.stall >= settings.stall_iterations:
                    iterate_peak = max(
                        float(np.max(np.abs(member.x), initial=0.0)),
                        float(np.max(np.abs(member.y), initial=0.0)),
                    )
                    member.x, member.y, member.w, member.z = member.best_state
                    if iterate_peak > member.collapse_bound:
                        member.finish(
                            SolveStatus.INFEASIBLE, "stalled while diverging"
                        )
                    elif _relaxed_ok(member, settings):
                        member.finish(
                            SolveStatus.OPTIMAL,
                            "stalled at analog noise floor; relaxed "
                            "feasibility check passed",
                        )
                    else:
                        member.finish(
                            SolveStatus.ITERATION_LIMIT,
                            "stalled without a feasible iterate",
                            FailureReason.NO_FEASIBLE_ITERATE,
                        )
                    continue
            residual_rows.append(residual)
            solving.append(k)

        if not solving:
            continue
        deltas, errors = opstack.try_solve(
            np.stack(residual_rows), members=np.array(solving)
        )
        for pos, k in enumerate(solving):
            member = members[k]
            if errors[pos] is not None:
                iterate_peak = max(
                    float(np.max(np.abs(member.x), initial=0.0)),
                    float(np.max(np.abs(member.y), initial=0.0)),
                )
                if iterate_peak > member.collapse_bound:
                    member.finish(
                        SolveStatus.INFEASIBLE,
                        f"divergence collapsed the mapping: {errors[pos]}",
                    )
                else:
                    member.finish(
                        SolveStatus.NUMERICAL_FAILURE,
                        str(errors[pos]),
                        FailureReason.SINGULAR_SYSTEM,
                    )
                continue
            member.solves += 1
            dx, dy, dw, dz = member.system.extract_steps(deltas[pos])
            theta = ratio_test_theta(
                np.concatenate([member.x, member.y, member.w, member.z]),
                np.concatenate([dx, dy, dw, dz]),
                step_scale=settings.step_scale,
                ignore_below=settings.positivity_floor * 1e4,
            )
            floor = settings.positivity_floor
            member.x = np.maximum(member.x + theta * dx, floor)
            member.y = np.maximum(member.y + theta * dy, floor)
            member.w = np.maximum(member.w + theta * dw, floor)
            member.z = np.maximum(member.z + theta * dz, floor)
            member.iterations = iteration + 1

            divergence = detect_divergence(
                member.x, member.y, member.divergence_bound
            )
            if divergence is not DivergenceKind.NONE:
                member.finish(SolveStatus.INFEASIBLE, divergence.value)

    results = []
    for k, member in enumerate(members):
        if (
            member.status is SolveStatus.ITERATION_LIMIT
            and not member.message
        ):
            member.x, member.y, member.w, member.z = member.best_state
            if _relaxed_ok(member, settings):
                member.status = SolveStatus.OPTIMAL
                member.message = (
                    "iteration limit; accepted best feasible iterate"
                )
            else:
                member.message = "iteration limit without a feasible iterate"
                member.reason = FailureReason.NO_FEASIBLE_ITERATE

        if member.status is SolveStatus.OPTIMAL and not _relaxed_ok(
            member, settings
        ):
            member.status = SolveStatus.NUMERICAL_FAILURE
            member.message = "final constraint check A x <= alpha b failed"
            member.reason = FailureReason.FINAL_CHECK_FAILED

        if member.status in _CONCLUSIVE:
            member.reason = FailureReason.NONE

        report = opstack.write_reports[k]
        counters = CrossbarCounters(
            multiplies=member.multiplies,
            solves=member.solves,
            cells_written=report.cells_written,
            write_pulses=report.pulses,
            write_latency_s=report.latency_s,
            write_energy_j=report.energy_j,
            array_size=member.system.size,
            verify_reads=report.verify_reads,
            verify_repulsed=report.repulsed_cells,
            verify_unverified=report.unverified_cells,
        )
        results.append(
            SolverResult(
                status=member.status,
                x=member.x,
                y=member.y,
                w=member.w,
                z=member.z,
                objective=member.problem.objective(member.x),
                iterations=member.iterations,
                crossbar=counters,
                message=member.message,
                failure_reason=member.reason,
            )
        )
    return results


def _make_member(
    problem: LinearProgram,
    system: AugmentedNewtonSystem,
    settings: CrossbarSolverSettings,
) -> _Member:
    m, n = problem.A.shape
    x = np.full(n, settings.initial_value)
    z = np.full(n, settings.initial_value)
    y = np.full(m, settings.initial_value)
    w = np.full(m, settings.initial_value)
    gap0 = (n + m) * settings.initial_value**2
    member = _Member(
        problem=problem,
        system=system,
        x=x,
        y=y,
        w=w,
        z=z,
        eps_primal=settings.eps_primal
        * (1.0 + float(np.max(np.abs(problem.b), initial=0.0))),
        eps_dual=settings.eps_dual
        * (1.0 + float(np.max(np.abs(problem.c), initial=0.0))),
        eps_gap=settings.eps_gap * max(1.0, gap0),
        divergence_bound=scaled_big_m(problem, settings.big_m),
        collapse_bound=collapse_threshold(
            problem,
            settings.device.resistance_ratio,
            settings.scale_headroom,
        ),
    )
    member.best_state = (x, y, w, z)
    return member


def solve_crossbar_batch(
    problems: list[LinearProgram],
    settings: CrossbarSolverSettings | None = None,
    *,
    rngs: list[np.random.Generator] | None = None,
    recovery: RecoveryPolicy | None = None,
    trace: bool = False,
    backend: Backend | str | None = None,
    min_group: int = 2,
) -> list[SolverResult]:
    """Solve many LPs on batched crossbar fleets, bitwise == serial.

    Parameters
    ----------
    problems:
        The LPs to solve; arbitrary shapes (grouped internally).
    settings:
        One configuration shared by every solve.
    rngs:
        One generator per problem (defaults to fresh independent
        generators).  Each is consumed exactly as a serial
        ``solve_crossbar(problem, settings, rng=rng)`` call would —
        callers can mix batched and serial execution freely without
        perturbing downstream draws.
    recovery:
        Recovery policy (default: the paper's retry scheme).  Policies
        with a health probe fall back to serial execution.
    trace:
        Per-iteration tracing forces the serial path (trace records
        are inherently per-member).
    backend:
        Tensor backend for the batched analog ops (name, instance, or
        ``None`` for the config/env default).
    min_group:
        Smallest structural group worth stacking; smaller groups run
        serially.

    Returns the per-problem :class:`SolverResult` list, index-aligned
    with ``problems``.
    """
    settings = settings if settings is not None else CrossbarSolverSettings()
    if rngs is None:
        rngs = [np.random.default_rng() for _ in problems]
    if len(rngs) != len(problems):
        raise ValueError(
            f"need one generator per problem: {len(problems)} problems, "
            f"{len(rngs)} generators"
        )
    recovery = (
        recovery
        if recovery is not None
        else RecoveryPolicy.from_settings(settings)
    )

    def serial(index: int) -> SolverResult:
        solver = CrossbarPDIPSolver(
            problems[index], settings, rng=rngs[index], recovery=recovery
        )
        return solver.solve(trace=trace)

    results: list[SolverResult | None] = [None] * len(problems)
    batchable = not (
        trace or settings.row_scaling or recovery.probe is not None
    )
    if not batchable:
        return [serial(index) for index in range(len(problems))]

    systems = [AugmentedNewtonSystem(problem) for problem in problems]
    groups: dict[tuple, list[int]] = {}
    for index, system in enumerate(systems):
        groups.setdefault(_group_key(system), []).append(index)

    for indices in groups.values():
        if len(indices) < max(2, min_group):
            for index in indices:
                results[index] = serial(index)
            continue
        # Mirror the serial ladder's attempt bookkeeping: snapshot each
        # generator, then draw the attempt seed from it exactly as
        # solve_with_recovery does.
        snapshots = [rngs[index].bit_generator.state for index in indices]
        seeds = [int(rngs[index].integers(0, 2**63)) for index in indices]
        members = [
            _make_member(problems[index], systems[index], settings)
            for index in indices
        ]
        with Stopwatch() as clock:
            attempt_results = _lockstep_attempt(
                members, settings, seeds, backend
            )
        for pos, index in enumerate(indices):
            result = attempt_results[pos]
            if result.status in _CONCLUSIVE:
                record = _record_for(
                    0, RecoveryAction.INITIAL, result, seeds[pos], None
                )
                results[index] = dataclasses.replace(
                    with_attempts(result, [record]),
                    elapsed_seconds=clock.elapsed_seconds,
                )
            else:
                # Inconclusive first attempt: rewind this member's
                # generator to before the seed draw and run the full
                # serial recovery ladder — it reproduces attempt 1
                # bitwise, then escalates.
                rngs[index].bit_generator.state = snapshots[pos]
                results[index] = serial(index)
    return results
