"""Solver results and per-iteration traces."""

from __future__ import annotations

import dataclasses
import enum

import numpy as np


class SolveStatus(enum.Enum):
    """Terminal state of a solver run."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    ITERATION_LIMIT = "iteration_limit"
    NUMERICAL_FAILURE = "numerical_failure"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class FailureReason(enum.Enum):
    """Machine-readable cause of an unsuccessful solve attempt.

    The recovery ladder (:mod:`repro.reliability.recovery`) branches on
    this enum instead of matching substrings of the human-readable
    ``message``.  ``NONE`` marks a conclusive attempt (OPTIMAL or
    INFEASIBLE — both are answers, not failures).
    """

    NONE = "none"
    #: Stalled at the analog noise floor, or hit the iteration cap,
    #: without any iterate passing the A x <= alpha b check.
    NO_FEASIBLE_ITERATE = "no_feasible_iterate"
    #: The analog solve failed: the perturbed conductance matrix was
    #: singular or produced non-finite rails (Section 4.3).
    SINGULAR_SYSTEM = "singular_system"
    #: Converged, but the final constraints check A x <= alpha b
    #: rejected the returned point (Section 3.2).
    FINAL_CHECK_FAILED = "final_check_failed"
    #: The post-programming health probe rejected the array before the
    #: PDIP loop started (stuck cells / corrupted mapping).
    PROBE_UNHEALTHY = "probe_unhealthy"
    #: The digital fallback solver itself failed to classify.
    FALLBACK_FAILED = "fallback_failed"
    #: The serving layer could not place the job on any pool member
    #: (all schedulable arrays excluded, draining, or retired).
    NO_CAPACITY = "no_capacity"
    #: The job's wall-clock deadline ran out.  Checked between recovery
    #: rungs and between PDIP iterations, so an expired budget stops a
    #: solve after at most one more iteration's work.
    DEADLINE_EXCEEDED = "deadline_exceeded"
    #: The presolve pipeline proved the instance infeasible before any
    #: crossbar programming.  Unlike the other reasons this accompanies
    #: a *conclusive* INFEASIBLE status: it records provenance (the
    #: certificate came from :mod:`repro.presolve`, not the array) and
    #: that the verdict cost zero cell writes.
    INFEASIBLE_PRESOLVE = "infeasible_presolve"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclasses.dataclass(frozen=True)
class IterationRecord:
    """One PDIP iteration's diagnostics.

    Attributes
    ----------
    index:
        Iteration number (0-based).
    mu:
        Centering parameter used this iteration (Eqn. 8).
    duality_gap:
        ``z @ x + y @ w`` after the update.
    primal_infeasibility:
        ``max |A x + w - b|`` after the update.
    dual_infeasibility:
        ``max |A^T y - z - c|`` after the update.
    theta:
        Step length actually applied (Eqn. 11 or the constant policy).
    cells_written:
        Crossbar cells reprogrammed for this iteration's matrix update.
    """

    index: int
    mu: float
    duality_gap: float
    primal_infeasibility: float
    dual_infeasibility: float
    theta: float
    cells_written: int = 0


@dataclasses.dataclass(frozen=True)
class CrossbarCounters:
    """Aggregate analog-operation counts for one solve (cost-model input).

    Attributes
    ----------
    multiplies:
        Number of analog matrix-vector evaluations.
    solves:
        Number of analog linear-system evaluations.
    cells_written:
        Total crossbar cells reprogrammed (incl. initial programming).
    write_pulses:
        Total programming pulses issued.
    write_latency_s / write_energy_j:
        Accumulated physical write cost from the device model.
    array_size:
        Dimension of the (largest) crossbar system that was solved.
    """

    multiplies: int = 0
    solves: int = 0
    cells_written: int = 0
    write_pulses: int = 0
    write_latency_s: float = 0.0
    write_energy_j: float = 0.0
    array_size: int = 0
    #: Write-verify accounting (0 when verification is disabled):
    #: cell read-backs performed, cells that needed corrective
    #: re-pulses, and cells still out of tolerance when the pulse
    #: budget ran out (persistent / stuck deviations).
    verify_reads: int = 0
    verify_repulsed: int = 0
    verify_unverified: int = 0


@dataclasses.dataclass(frozen=True)
class SolverResult:
    """Outcome of an LP solve.

    Attributes
    ----------
    status:
        Terminal :class:`SolveStatus`.
    x, y, w, z:
        Final primal solution, dual solution, primal slacks, dual
        slacks (present whatever the status; meaningful for OPTIMAL).
    objective:
        Primal objective ``c @ x`` at the returned point.
    iterations:
        Number of PDIP iterations executed.
    trace:
        Per-iteration diagnostics (empty if tracing was disabled).
    crossbar:
        Analog operation counters, or ``None`` for software solvers.
    message:
        Human-readable detail (failure reason, retry count, ...).
    failure_reason:
        Machine-readable cause when the run was not conclusive;
        :attr:`FailureReason.NONE` for OPTIMAL / INFEASIBLE results.
    attempts:
        Recovery-ladder history: one
        :class:`~repro.reliability.telemetry.AttemptRecord` per solve
        attempt (empty for software solvers and single-shot runs that
        bypass the ladder).
    elapsed_seconds:
        Wall-clock duration of the ``solve()`` call on the shared
        monotonic clock (:mod:`repro.obs.clock`), covering every
        recovery rung; ``0.0`` when the path was not timed (e.g. a
        bare ``_solve_once``).
    """

    status: SolveStatus
    x: np.ndarray
    y: np.ndarray
    w: np.ndarray
    z: np.ndarray
    objective: float
    iterations: int
    trace: tuple[IterationRecord, ...] = ()
    crossbar: CrossbarCounters | None = None
    message: str = ""
    failure_reason: FailureReason = FailureReason.NONE
    attempts: tuple = ()
    elapsed_seconds: float = 0.0

    @property
    def is_optimal(self) -> bool:
        return self.status is SolveStatus.OPTIMAL

    @property
    def success(self) -> bool:
        """Whether the solve produced a conclusive classification.

        OPTIMAL and INFEASIBLE are both answers; anything else
        (iteration limit, numerical failure, probe rejection, failed
        fallback) means the caller did not get a verdict.  The CLI and
        the serving layer map this to process exit codes and job
        rescheduling respectively.
        """
        return self.status in (SolveStatus.OPTIMAL, SolveStatus.INFEASIBLE)

    @property
    def duality_gap(self) -> float:
        """Complementarity gap ``z @ x + y @ w`` at the returned point."""
        return float(self.z @ self.x + self.y @ self.w)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SolverResult(status={self.status}, "
            f"objective={self.objective:.6g}, iterations={self.iterations})"
        )


def with_message(result: SolverResult, extra: str) -> SolverResult:
    """Copy of ``result`` with ``extra`` appended to its message."""
    message = f"{result.message}; {extra}" if result.message else extra
    return dataclasses.replace(result, message=message)


def with_status(
    result: SolverResult,
    status: SolveStatus,
    extra: str,
    *,
    failure_reason: FailureReason | None = None,
) -> SolverResult:
    """Copy of ``result`` with a new status and appended message.

    The failure reason follows the status unless given explicitly: a
    reclassification to OPTIMAL / INFEASIBLE clears it to ``NONE``,
    any other status keeps the original reason.
    """
    message = f"{result.message}; {extra}" if result.message else extra
    if failure_reason is None:
        conclusive = status in (SolveStatus.OPTIMAL, SolveStatus.INFEASIBLE)
        failure_reason = (
            FailureReason.NONE if conclusive else result.failure_reason
        )
    return dataclasses.replace(
        result, status=status, message=message, failure_reason=failure_reason
    )


def with_attempts(result: SolverResult, attempts) -> SolverResult:
    """Copy of ``result`` carrying the given attempt history."""
    return dataclasses.replace(result, attempts=tuple(attempts))
