"""Solver configuration dataclasses.

The knobs follow Algorithm 1 / Algorithm 2 of the paper:

- ``delta`` — centering parameter of Eqn. 8, strictly in (0, 1);
- ``step_scale`` — the ratio-test damping ``r`` of Eqn. 11, "less than
  but close to 1";
- ``eps_primal`` / ``eps_dual`` / ``eps_gap`` — exit tolerances
  (``eps_b``, ``eps_c``, ``eps_g`` in Algorithm 1).  They are applied
  *relative* to the problem scale: the effective primal tolerance is
  ``eps_primal * (1 + max|b|)``, the dual one
  ``eps_dual * (1 + max|c|)``, and the gap one
  ``eps_gap * max(1, initial gap)``;
- ``big_m`` — the unboundedness bound behind infeasibility detection
  (relative to problem scale as well);
- ``alpha`` — the variation-tolerant final check ``A x <= alpha b``.

Hardware-facing options (device preset, variation model, converter
bits, retry policy) live on :class:`CrossbarSolverSettings`;
Solver 2 additions (regularization magnitude, constant step) on
:class:`ScalableSolverSettings`.
"""

from __future__ import annotations

import dataclasses

from repro.devices.models import YAKOPCIC_NAECON14, DeviceParameters
from repro.devices.variation import NoVariation, VariationModel
from repro.reliability.verify import WriteVerifyPolicy


@dataclasses.dataclass(frozen=True)
class PDIPSettings:
    """Shared PDIP algorithm parameters (software and crossbar)."""

    delta: float = 0.1
    step_scale: float = 0.99
    max_iterations: int = 500
    eps_primal: float = 1e-8
    eps_dual: float = 1e-8
    eps_gap: float = 1e-8
    big_m: float = 1e6
    alpha: float = 1.05
    initial_value: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.delta < 1.0:
            raise ValueError(f"delta must lie in (0, 1), got {self.delta}")
        if not 0.0 < self.step_scale < 1.0:
            raise ValueError(
                f"step_scale must lie in (0, 1), got {self.step_scale}"
            )
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be positive")
        for label in ("eps_primal", "eps_dual", "eps_gap"):
            if getattr(self, label) <= 0:
                raise ValueError(f"{label} must be positive")
        if self.big_m <= 1:
            raise ValueError("big_m must exceed 1")
        if self.alpha < 1.0:
            raise ValueError(f"alpha must be >= 1, got {self.alpha}")
        if self.initial_value <= 0:
            raise ValueError("initial_value must be positive")


@dataclasses.dataclass(frozen=True)
class CrossbarSolverSettings(PDIPSettings):
    """Solver 1 settings: algorithm knobs plus the hardware model.

    The default tolerances are far looser than the software solver's:
    8-bit converters put a noise floor of roughly ``1/256`` of the
    residual-vector peak under each iteration, so demanding 1e-8 would
    simply spin until the iteration cap.
    """

    eps_primal: float = 5e-3
    eps_dual: float = 5e-3
    eps_gap: float = 5e-3
    max_iterations: int = 300
    device: DeviceParameters = YAKOPCIC_NAECON14
    variation: VariationModel = dataclasses.field(
        default_factory=NoVariation
    )
    dac_bits: int | None = 8
    adc_bits: int | None = 8
    off_state: str = "zero"
    scale_headroom: float = 2.0
    row_scaling: bool = False
    stall_iterations: int = 25
    #: Legacy retry count (the paper's Section 4.5 "double checking
    #: scheme").  Only consulted when no explicit
    #: :class:`~repro.reliability.policy.RecoveryPolicy` is passed to
    #: the solver: the default policy then uses this many reprogram
    #: attempts with no remap/probe/fallback rungs.
    retries: int = 2
    #: Closed-loop programming: read back written cells and re-pulse
    #: out-of-tolerance ones (see
    #: :class:`~repro.reliability.verify.WriteVerifyPolicy`).  ``None``
    #: keeps the paper's open-loop programming.
    write_verify: WriteVerifyPolicy | None = None
    #: Iterates are clamped at this floor after every update so analog
    #: noise cannot push a variable to exactly zero and freeze the
    #: Eqn. 11 ratio test.
    positivity_floor: float = 1e-12

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.scale_headroom < 1.0:
            raise ValueError("scale_headroom must be >= 1")
        if self.stall_iterations < 1:
            raise ValueError("stall_iterations must be positive")
        if self.retries < 0:
            raise ValueError("retries must be non-negative")


@dataclasses.dataclass(frozen=True)
class ScalableSolverSettings(CrossbarSolverSettings):
    """Solver 2 settings (Algorithm 2).

    ``constant_theta`` replaces the ratio test — Section 3.4 found a
    constant step length "better to guarantee convergence" for the
    split iteration; iterates that stray non-positive are clamped at
    ``positivity_floor`` (the hardware cannot program negative values
    anyway).

    The three mode switches select between the functional reading of
    Eqns. 16–17 (defaults) and the literal printed equations (ablation;
    see the module docstring of :mod:`repro.core.scalable_system`):

    - ``coupling``: ``"state"`` (RU = -W/Y, RL = Z/X, updated per
      iteration) or ``"constant"`` (RU = -eps I, RL = eps I).
    - ``rhs_mode``: ``"exact"`` (``b - Ax - μ/y`` / ``c - Aᵀy + μ/x``)
      or ``"paper"`` (``b - Ax - w`` / ``c - Aᵀy + z``).
    - ``recovery``: ``"coupled"`` (r2 includes the ZΔx / WΔy products)
      or ``"paper"`` (literal Eqn. 17b).
    """

    constant_theta: float = 0.5
    regularization: float = 5e-3
    max_iterations: int = 300
    coupling: str = "state"
    rhs_mode: str = "exact"
    recovery: str = "coupled"
    #: "capped_ratio" (default): the Eqn. 11 ratio test, capped at
    #: ``constant_theta`` — the step never exceeds the paper's constant
    #: and never crosses the positivity boundary, which shields the
    #: constant-step policy from the occasional garbage direction an
    #: ill-conditioned analog solve produces at 8-bit precision.
    #: "constant": the literal Section 3.4 policy (ablation).
    step_policy: str = "capped_ratio"
    row_scaling: bool = True
    ratio_floor: float = 1e-6
    ratio_cap: float = 1e6
    positivity_floor: float = 1e-10

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.constant_theta <= 1.0:
            raise ValueError(
                f"constant_theta must lie in (0, 1], got "
                f"{self.constant_theta}"
            )
        if self.regularization <= 0:
            raise ValueError("regularization must be positive")
        if self.coupling not in ("state", "constant"):
            raise ValueError(f"unknown coupling mode {self.coupling!r}")
        if self.rhs_mode not in ("exact", "paper"):
            raise ValueError(f"unknown rhs mode {self.rhs_mode!r}")
        if self.recovery not in ("coupled", "paper"):
            raise ValueError(f"unknown recovery mode {self.recovery!r}")
        if self.ratio_cap <= 0:
            raise ValueError("ratio_cap must be positive")
        if not 0.0 < self.ratio_floor <= self.ratio_cap:
            raise ValueError(
                "ratio_floor must be positive and below ratio_cap"
            )
        if self.positivity_floor <= 0:
            raise ValueError("positivity_floor must be positive")
        if self.step_policy not in ("capped_ratio", "constant"):
            raise ValueError(f"unknown step policy {self.step_policy!r}")
