"""Deterministic LP reduction + scaling that runs before crossbar mapping.

The crossbar pays O(N^2) cell writes to program a matrix, so every row
or column the front end removes is quadratic work the array never
does — and every decade of dynamic range removed by equilibration is
conductance resolution the mapping gets back (Section 3.2's 8-bit
budget).  :func:`presolve` applies a fixpoint of exact, order-stable
reductions to ``maximize c @ x  s.t.  A x <= b, x >= 0``:

- **empty rows** — no surviving coefficients: infeasible certificate
  when ``b_i < 0``, otherwise dropped;
- **singleton rows** — one coefficient ``a`` on ``x_j``: ``a > 0``
  with ``b_i / a < 0`` is an infeasibility certificate, ``b_i / a = 0``
  pins ``x_j = 0``; ``a < 0`` with ``b_i / a <= 0`` is redundant
  against ``x_j >= 0``;
- **proportional row families** — rows that are scalar multiples of
  one another bound the same functional ``s = r @ x``; the family
  collapses to its tightest upper and lower bound, and an empty
  interval (lower > upper) is an infeasibility certificate.  The
  generator's planted infeasible pair (``u``, ``-u`` with contradicting
  right-hand sides) is caught here before any programming;
- **empty columns** — unconstrained ``x_j``: unboundedness certificate
  when ``c_j > 0``, otherwise fixed at 0;
- **duplicate columns** — bit-identical columns merge onto the one
  with the larger objective coefficient (dropped variable exactly 0).

What survives is equilibrated (:mod:`repro.presolve.scaling`) with
power-of-two scales, so :meth:`PresolvedLP.postsolve` restores original
coordinates exactly: eliminated variables are exactly ``0.0`` and kept
coordinates are un-scaled by a float exponent shift, never a rounding
multiply.
"""

from __future__ import annotations

import dataclasses
import enum

import numpy as np

from repro.core.problem import LinearProgram
from repro.core.result import FailureReason, SolverResult, SolveStatus
from repro.presolve.scaling import (
    SCALING_METHODS,
    coefficient_decades,
    equilibrate,
)

#: Relative tolerance for declaring two rows proportional.  The
#: reductions are meant for *structurally* duplicated rows (exact
#: scalar multiples, as planted workloads and rolling-horizon streams
#: produce); near-misses stay in the problem.
_PROPORTIONAL_RTOL = 1e-12


class PresolveStatus(enum.Enum):
    """Terminal classification of a presolve pass."""

    #: A nonempty reduced problem remains for the solver.
    REDUCED = "reduced"
    #: Every row and column was eliminated; ``x = 0`` is optimal.
    SOLVED = "solved"
    #: A certificate of primal infeasibility was found.
    INFEASIBLE = "infeasible"
    #: A certificate of an unbounded objective was found.
    UNBOUNDED = "unbounded"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclasses.dataclass(frozen=True)
class PresolveReport:
    """Machine-readable account of what one presolve pass did.

    Attributes
    ----------
    status:
        Terminal :class:`PresolveStatus`.
    rows_before / cols_before / rows_after / cols_after:
        Problem shape either side of the reductions (``rows_after`` /
        ``cols_after`` count surviving rows/cols at the point the
        pipeline stopped, 0 when fully solved).
    empty_rows / redundant_rows / duplicate_rows:
        Rows dropped with no surviving coefficients, dominated by the
        sign constraints, or collapsed out of a proportional family.
    forced_cols / empty_cols / duplicate_cols:
        Columns pinned to zero by a forcing row, fixed at zero for
        lack of constraints and reward, or merged into an identical
        twin.
    passes:
        Fixpoint sweeps executed.
    scaling:
        Equilibration method applied to the surviving matrix
        (one of :data:`repro.presolve.scaling.SCALING_METHODS`).
    decades_before / decades_after:
        Conductance dynamic range (:func:`repro.presolve.scaling.
        coefficient_decades`) of the original matrix and of the scaled
        reduced matrix the mapping will actually see.
    detail:
        Human-readable certificate for INFEASIBLE / UNBOUNDED.
    """

    status: PresolveStatus
    rows_before: int
    cols_before: int
    rows_after: int
    cols_after: int
    empty_rows: int = 0
    redundant_rows: int = 0
    duplicate_rows: int = 0
    forced_cols: int = 0
    empty_cols: int = 0
    duplicate_cols: int = 0
    passes: int = 0
    scaling: str = "none"
    decades_before: float = 0.0
    decades_after: float = 0.0
    detail: str = ""

    @property
    def rows_eliminated(self) -> int:
        """Total rows removed by the reductions."""
        return self.empty_rows + self.redundant_rows + self.duplicate_rows

    @property
    def cols_eliminated(self) -> int:
        """Total columns removed by the reductions."""
        return self.forced_cols + self.empty_cols + self.duplicate_cols

    def to_dict(self) -> dict:
        """JSON-friendly form (enum flattened to its value)."""
        data = dataclasses.asdict(self)
        data["status"] = self.status.value
        return data

    def summary(self) -> str:
        """One-line human summary for CLI output and logs."""
        line = (
            f"{self.rows_before}x{self.cols_before} -> "
            f"{self.rows_after}x{self.cols_after}"
            f" (rows -{self.rows_eliminated}, cols -{self.cols_eliminated},"
            f" {self.passes} passes)"
            f" scaling={self.scaling}"
            f" decades {self.decades_before:.2f} -> {self.decades_after:.2f}"
            f" status={self.status.value}"
        )
        if self.detail:
            line += f": {self.detail}"
        return line


@dataclasses.dataclass
class PresolvedLP:
    """A reduced, scaled problem plus the recipe to undo both.

    ``problem`` is the LP to hand to the solver (``None`` when the
    report's status is terminal — use :meth:`solution` instead).
    ``row_index`` / ``col_index`` map reduced coordinates back to
    original ones; ``row_scale`` / ``col_scale`` are the power-of-two
    equilibration factors (``A' = diag(row_scale) @ A @
    diag(col_scale)``).
    """

    original: LinearProgram
    problem: LinearProgram | None
    report: PresolveReport
    row_index: np.ndarray
    col_index: np.ndarray
    row_scale: np.ndarray
    col_scale: np.ndarray

    def postsolve(self, result: SolverResult) -> SolverResult:
        """Map a solve of the reduced problem back to original coordinates.

        Exactness contract: eliminated variables come back as exactly
        ``0.0``; kept primal/dual coordinates are un-scaled by
        power-of-two factors, which is a float exponent shift and
        therefore bit-exact.  Slacks of dropped rows and reduced costs
        of dropped columns are recomputed from the restored point
        (dropped rows carry ``y = 0``), so the returned vectors are
        mutually consistent.  The objective is re-evaluated on the
        original problem; with power-of-two scaling it equals the
        reduced objective up to the dot-product rounding of the
        restored point.
        """
        if self.problem is None:
            raise ValueError(
                "presolve terminated with status "
                f"{self.report.status.value}; there is no reduced problem "
                "to postsolve — use solution()"
            )
        m, n = self.original.A.shape
        x_red = np.asarray(result.x, dtype=float)
        if x_red.shape != self.col_index.shape:
            raise ValueError(
                f"result has {x_red.shape[0]} variables, reduced problem "
                f"has {self.col_index.shape[0]}"
            )
        x = np.zeros(n)
        x[self.col_index] = self.col_scale * x_red
        y = np.zeros(m)
        y[self.row_index] = self.row_scale * np.asarray(result.y, dtype=float)
        w = self.original.b - self.original.A @ x
        w[self.row_index] = np.asarray(result.w, dtype=float) / self.row_scale
        z = self.original.A.T @ y - self.original.c
        z[self.col_index] = np.asarray(result.z, dtype=float) / self.col_scale
        return dataclasses.replace(
            result,
            x=x,
            y=y,
            w=w,
            z=z,
            objective=self.original.objective(x),
        )

    def solution(self) -> SolverResult:
        """The result presolve itself proved, for terminal statuses.

        SOLVED maps to OPTIMAL at ``x = 0`` (every variable was fixed
        at zero).  INFEASIBLE and UNBOUNDED both map to the solver
        family's INFEASIBLE status — the analog solvers certify "no
        finite optimum" through big-M divergence without separating
        the two cases — with :attr:`~repro.core.result.FailureReason.
        INFEASIBLE_PRESOLVE` recording that the certificate came from
        the reduction pipeline, not the array; the report keeps the
        precise UNBOUNDED/INFEASIBLE distinction.
        """
        report = self.report
        if report.status is PresolveStatus.REDUCED:
            raise ValueError(
                "presolve left a reduced problem; solve it and call "
                "postsolve() instead of solution()"
            )
        if report.status is PresolveStatus.SOLVED:
            result = _zero_point_result(
                self.original,
                SolveStatus.OPTIMAL,
                f"presolve: fully reduced in {report.passes} passes; "
                "x = 0 is optimal",
                FailureReason.NONE,
            )
            return result
        return infeasible_result(self.original, report.detail)

    def to_dict(self) -> dict:
        """JSON-friendly summary (report + index/scale vectors)."""
        return {
            "report": self.report.to_dict(),
            "row_index": [int(i) for i in self.row_index],
            "col_index": [int(j) for j in self.col_index],
            "row_scale": [float(v) for v in self.row_scale],
            "col_scale": [float(v) for v in self.col_scale],
        }


def _zero_point_result(
    problem: LinearProgram,
    status: SolveStatus,
    message: str,
    reason: FailureReason,
) -> SolverResult:
    """A zero-iteration result anchored at ``x = y = 0``."""
    m, n = problem.A.shape
    return SolverResult(
        status=status,
        x=np.zeros(n),
        y=np.zeros(m),
        w=problem.b.copy(),
        z=-problem.c,
        objective=0.0,
        iterations=0,
        message=message,
        failure_reason=reason,
    )


def infeasible_result(problem: LinearProgram, detail: str) -> SolverResult:
    """A conclusive INFEASIBLE result carrying a presolve certificate.

    Built directly (never through a solver) so the
    ``INFEASIBLE_PRESOLVE`` failure reason survives: solver paths reset
    the reason to NONE for conclusive statuses, but here the reason is
    provenance — the verdict cost zero crossbar programming.
    """
    return _zero_point_result(
        problem,
        SolveStatus.INFEASIBLE,
        f"presolve: {detail}",
        FailureReason.INFEASIBLE_PRESOLVE,
    )


class _Counts:
    """Mutable reduction counters (flattened into the report)."""

    def __init__(self) -> None:
        self.empty_rows = 0
        self.redundant_rows = 0
        self.duplicate_rows = 0
        self.forced_cols = 0
        self.empty_cols = 0
        self.duplicate_cols = 0


def _reduce_rows(
    A: np.ndarray,
    b: np.ndarray,
    row_alive: np.ndarray,
    col_alive: np.ndarray,
    counts: _Counts,
) -> tuple[bool, str | None]:
    """Empty- and singleton-row rules; returns (changed, certificate)."""
    changed = False
    cols = np.flatnonzero(col_alive)
    for i in np.flatnonzero(row_alive):
        support = cols[A[i, cols] != 0.0] if cols.size else cols
        if support.size == 0:
            if b[i] < 0.0:
                return changed, (
                    f"row {i} has no coefficients but b[{i}] = "
                    f"{b[i]:.6g} < 0"
                )
            row_alive[i] = False
            counts.empty_rows += 1
            changed = True
        elif support.size == 1:
            j = int(support[0])
            coeff = A[i, j]
            bound = b[i] / coeff
            if coeff > 0.0:
                if bound < 0.0:
                    return changed, (
                        f"row {i} forces x[{j}] <= {bound:.6g} < 0"
                    )
                if bound == 0.0:
                    col_alive[j] = False
                    row_alive[i] = False
                    counts.forced_cols += 1
                    changed = True
            elif bound <= 0.0:
                # x_j >= bound is implied by x_j >= 0: redundant row.
                row_alive[i] = False
                counts.redundant_rows += 1
                changed = True
    return changed, None


def _collapse_proportional_rows(
    A: np.ndarray,
    b: np.ndarray,
    row_alive: np.ndarray,
    col_alive: np.ndarray,
    counts: _Counts,
) -> tuple[bool, str | None]:
    """Proportional-family rule; returns (changed, certificate).

    Rows that are scalar multiples of a representative ``r`` all bound
    the same functional ``s = r @ x``: positive factors give upper
    bounds ``s <= b_i / t_i``, negative factors lower bounds.  The
    family keeps only the tightest of each; ``lower > upper`` is an
    infeasibility certificate (this is where a planted ``u`` / ``-u``
    contradiction is caught).
    """
    rows = np.flatnonzero(row_alive)
    cols = np.flatnonzero(col_alive)
    if rows.size < 2 or cols.size == 0:
        return False, None
    sub = A[np.ix_(rows, cols)]
    changed = False
    used = np.zeros(rows.size, dtype=bool)
    for p in range(rows.size):
        if used[p]:
            continue
        rep = sub[p]
        pivot = int(np.argmax(np.abs(rep)))
        peak = abs(rep[pivot])
        if peak == 0.0:
            continue  # empty row; the row rule owns it
        members = [p]
        factors = [1.0]
        for q in range(p + 1, rows.size):
            if used[q]:
                continue
            factor = sub[q, pivot] / rep[pivot]
            if factor == 0.0:
                continue
            budget = _PROPORTIONAL_RTOL * peak * max(1.0, abs(factor))
            if np.max(np.abs(sub[q] - factor * rep)) <= budget:
                members.append(q)
                factors.append(factor)
        if len(members) == 1:
            continue
        used[members] = True
        uppers = [
            (b[rows[g]] / t, g) for g, t in zip(members, factors) if t > 0.0
        ]
        lowers = [
            (b[rows[g]] / t, g) for g, t in zip(members, factors) if t < 0.0
        ]
        keep: set[int] = set()
        upper = lower = None
        if uppers:
            upper = min(uppers, key=lambda v: (v[0], rows[v[1]]))
            keep.add(upper[1])
        if lowers:
            lower = max(lowers, key=lambda v: (v[0], -rows[v[1]]))
            keep.add(lower[1])
        if upper is not None and lower is not None and lower[0] > upper[0]:
            return changed, (
                f"rows {rows[lower[1]]} and {rows[upper[1]]} are "
                f"proportional with an empty bound interval "
                f"({lower[0]:.6g} > {upper[0]:.6g})"
            )
        for g in members:
            if g not in keep:
                row_alive[rows[g]] = False
                counts.duplicate_rows += 1
                changed = True
    return changed, None


def _reduce_cols(
    A: np.ndarray,
    c: np.ndarray,
    row_alive: np.ndarray,
    col_alive: np.ndarray,
    counts: _Counts,
) -> tuple[bool, str | None]:
    """Empty- and duplicate-column rules; returns (changed, certificate)."""
    changed = False
    rows = np.flatnonzero(row_alive)
    for j in np.flatnonzero(col_alive):
        if rows.size and np.any(A[rows, j] != 0.0):
            continue
        if c[j] > 0.0:
            return changed, (
                f"column {j} is unconstrained with c[{j}] = "
                f"{c[j]:.6g} > 0 (objective unbounded above)"
            )
        col_alive[j] = False
        counts.empty_cols += 1
        changed = True
    cols = np.flatnonzero(col_alive)
    if rows.size and cols.size >= 2:
        seen: dict[bytes, int] = {}
        for j in cols:
            key = A[rows, j].tobytes()
            twin = seen.get(key)
            if twin is None:
                seen[key] = int(j)
                continue
            # Merge onto the better objective coefficient; ties keep
            # the lower index.  The dropped variable is exactly 0 in
            # any restored solution (mass shifts to the kept twin
            # without changing A @ x and without lowering c @ x).
            if c[j] > c[twin]:
                drop, seen[key] = twin, int(j)
            else:
                drop = int(j)
            col_alive[drop] = False
            counts.duplicate_cols += 1
            changed = True
    return changed, None


def presolve(
    problem: LinearProgram, *, scaling: str = "ruiz"
) -> PresolvedLP:
    """Reduce and equilibrate ``problem`` ahead of crossbar mapping.

    Runs the reduction rules (module docstring) to a fixpoint, then
    applies power-of-two equilibration (``scaling`` in
    :data:`~repro.presolve.scaling.SCALING_METHODS`) to the surviving
    matrix.  The returned :class:`PresolvedLP` carries the reduced
    problem (or a terminal verdict), the :class:`PresolveReport`, and
    the exact postsolve recipe.  Deterministic: same problem in, same
    reductions out, no randomness anywhere.
    """
    if scaling not in SCALING_METHODS:
        raise ValueError(
            f"unknown scaling method {scaling!r}; expected one of "
            f"{SCALING_METHODS}"
        )
    A, b, c = problem.A, problem.b, problem.c
    m, n = A.shape
    row_alive = np.ones(m, dtype=bool)
    col_alive = np.ones(n, dtype=bool)
    counts = _Counts()
    passes = 0
    status = PresolveStatus.REDUCED
    detail = ""
    changed = True
    while changed and status is PresolveStatus.REDUCED:
        passes += 1
        changed = False
        for rule, kind in (
            (lambda: _reduce_rows(A, b, row_alive, col_alive, counts),
             PresolveStatus.INFEASIBLE),
            (lambda: _collapse_proportional_rows(
                A, b, row_alive, col_alive, counts),
             PresolveStatus.INFEASIBLE),
            (lambda: _reduce_cols(A, c, row_alive, col_alive, counts),
             PresolveStatus.UNBOUNDED),
        ):
            step_changed, certificate = rule()
            changed = changed or step_changed
            if certificate is not None:
                status = kind
                detail = certificate
                break
    rows = np.flatnonzero(row_alive)
    cols = np.flatnonzero(col_alive)
    if status is PresolveStatus.REDUCED and cols.size == 0:
        status = PresolveStatus.SOLVED
    decades_before = coefficient_decades(A)
    reduced_problem = None
    row_scale = np.ones(rows.size)
    col_scale = np.ones(cols.size)
    decades_after = 0.0
    if status is PresolveStatus.REDUCED:
        core = A[np.ix_(rows, cols)]
        row_scale, col_scale = equilibrate(core, method=scaling)
        scaled = core * row_scale[:, None] * col_scale[None, :]
        decades_after = coefficient_decades(scaled)
        reduced_problem = LinearProgram(
            c=c[cols] * col_scale,
            A=scaled,
            b=b[rows] * row_scale,
            name=f"{problem.name}:presolved" if problem.name else "presolved",
        )
    report = PresolveReport(
        status=status,
        rows_before=m,
        cols_before=n,
        rows_after=int(rows.size),
        cols_after=int(cols.size),
        empty_rows=counts.empty_rows,
        redundant_rows=counts.redundant_rows,
        duplicate_rows=counts.duplicate_rows,
        forced_cols=counts.forced_cols,
        empty_cols=counts.empty_cols,
        duplicate_cols=counts.duplicate_cols,
        passes=passes,
        scaling=scaling if status is PresolveStatus.REDUCED else "none",
        decades_before=decades_before,
        decades_after=decades_after,
        detail=detail,
    )
    return PresolvedLP(
        original=problem,
        problem=reduced_problem,
        report=report,
        row_index=rows,
        col_index=cols,
        row_scale=row_scale,
        col_scale=col_scale,
    )


def detect_infeasible(problem: LinearProgram) -> str | None:
    """Cheap admission screen: certificate string if provably infeasible.

    Runs the reduction fixpoint without scaling and reports the
    infeasibility certificate, or ``None`` when presolve cannot rule
    the instance out (which is *not* a feasibility proof).  The
    serving layer calls this before placing a job so a doomed instance
    never burns O(N^2) programming writes.
    """
    reduced = presolve(problem, scaling="none")
    if reduced.report.status is PresolveStatus.INFEASIBLE:
        return reduced.report.detail
    return None
