"""Matrix equilibration for the conductance-mapping front end.

Crossbar programming quantizes ``|A|`` onto a shared conductance range
(:mod:`repro.crossbar.mapping`), so every decade of dynamic range the
coefficient matrix spans costs resolution at the low end.  This module
computes positive row/column scale vectors ``r``/``s`` such that
``diag(r) @ A @ diag(s)`` spans fewer decades, by either

- **Ruiz equilibration** (iterated inf-norm scaling; the default), or
- **geometric-mean scaling** (each row/column divided by
  ``sqrt(max * min)`` of its nonzero magnitudes).

Both round the final scales to exact powers of two so that applying and
removing a scale is a float exponent shift — ``(v * s) / s == v``
bit-for-bit — which is what makes :meth:`repro.presolve.PresolvedLP.
postsolve` exact on the primal coordinates.
"""

from __future__ import annotations

import numpy as np

#: Recognised equilibration method names.
SCALING_METHODS = ("ruiz", "geometric", "none")


def coefficient_decades(matrix: np.ndarray) -> float:
    """Decades of dynamic range the nonzero magnitudes of ``matrix`` span.

    ``log10(max|a| / min|a|)`` over nonzero entries — the figure of
    merit the conductance mapping cares about: a matrix spanning 3+
    decades leaves its smallest coefficients below one quantization
    step of an 8-bit device.  Returns 0.0 for empty or all-zero input.
    """
    magnitudes = np.abs(np.asarray(matrix, dtype=float))
    nonzero = magnitudes[magnitudes > 0.0]
    if nonzero.size == 0:
        return 0.0
    return float(np.log10(nonzero.max() / nonzero.min()))


def _pow2_round(scales: np.ndarray) -> np.ndarray:
    """Round positive scales to the nearest power of two (exactness)."""
    return np.exp2(np.round(np.log2(scales)))


def _guarded_max(magnitudes: np.ndarray, axis: int) -> np.ndarray:
    """Per-row/col max magnitude with zeros replaced by 1 (no-op scale)."""
    peak = magnitudes.max(axis=axis)
    return np.where(peak > 0.0, peak, 1.0)


def ruiz_scales(
    matrix: np.ndarray, *, iterations: int = 10, tol: float = 1e-2
) -> tuple[np.ndarray, np.ndarray]:
    """Ruiz inf-norm equilibration scales for ``matrix``.

    Iteratively divides each row and column by the square root of its
    maximum magnitude until every row/col max is within ``tol`` of 1 or
    ``iterations`` passes elapse, then rounds the accumulated scales to
    powers of two.  Returns ``(r, s)`` with the scaled matrix being
    ``diag(r) @ matrix @ diag(s)``.
    """
    work = np.abs(np.asarray(matrix, dtype=float))
    m, n = work.shape
    r = np.ones(m)
    s = np.ones(n)
    for _ in range(max(1, iterations)):
        row_peak = _guarded_max(work, axis=1)
        col_peak = _guarded_max(work, axis=0)
        if (
            np.max(np.abs(1.0 - row_peak), initial=0.0) <= tol
            and np.max(np.abs(1.0 - col_peak), initial=0.0) <= tol
        ):
            break
        row_step = 1.0 / np.sqrt(row_peak)
        col_step = 1.0 / np.sqrt(col_peak)
        r *= row_step
        s *= col_step
        work *= row_step[:, None]
        work *= col_step[None, :]
    return _pow2_round(r), _pow2_round(s)


def geometric_mean_scales(
    matrix: np.ndarray, *, iterations: int = 2
) -> tuple[np.ndarray, np.ndarray]:
    """Geometric-mean equilibration scales for ``matrix``.

    Each pass divides every row, then every column, by
    ``sqrt(max * min)`` of its nonzero magnitudes — centering each
    slice's dynamic range around 1 rather than pinning its peak there.
    Scales are rounded to powers of two.  Returns ``(r, s)`` as in
    :func:`ruiz_scales`.
    """
    work = np.abs(np.asarray(matrix, dtype=float))
    m, n = work.shape
    r = np.ones(m)
    s = np.ones(n)

    def _slice_scale(mags: np.ndarray, axis: int) -> np.ndarray:
        peak = mags.max(axis=axis)
        floored = np.where(mags > 0.0, mags, np.inf)
        trough = floored.min(axis=axis)
        center = np.sqrt(peak * np.where(np.isfinite(trough), trough, 1.0))
        return np.where(peak > 0.0, 1.0 / center, 1.0)

    for _ in range(max(1, iterations)):
        row_step = _slice_scale(work, axis=1)
        r *= row_step
        work *= row_step[:, None]
        col_step = _slice_scale(work, axis=0)
        s *= col_step
        work *= col_step[None, :]
    return _pow2_round(r), _pow2_round(s)


def equilibrate(
    matrix: np.ndarray, *, method: str = "ruiz"
) -> tuple[np.ndarray, np.ndarray]:
    """Compute power-of-two row/col scales by the named method.

    ``method`` is one of :data:`SCALING_METHODS`; ``"none"`` returns
    unit scales (the pipeline still records decades for the report).
    """
    matrix = np.asarray(matrix, dtype=float)
    if method == "ruiz":
        return ruiz_scales(matrix)
    if method == "geometric":
        return geometric_mean_scales(matrix)
    if method == "none":
        return np.ones(matrix.shape[0]), np.ones(matrix.shape[1])
    raise ValueError(
        f"unknown scaling method {method!r}; expected one of {SCALING_METHODS}"
    )
