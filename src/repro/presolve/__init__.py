"""Presolve front end: reductions + equilibration before the crossbar.

See :mod:`repro.presolve.pipeline` for the reduction rules and the
postsolve exactness contract, and :mod:`repro.presolve.scaling` for the
power-of-two equilibration that shrinks the conductance dynamic range
the mapping must span.
"""

from repro.presolve.pipeline import (
    PresolvedLP,
    PresolveReport,
    PresolveStatus,
    detect_infeasible,
    infeasible_result,
    presolve,
)
from repro.presolve.scaling import (
    SCALING_METHODS,
    coefficient_decades,
    equilibrate,
    geometric_mean_scales,
    ruiz_scales,
)

__all__ = [
    "PresolvedLP",
    "PresolveReport",
    "PresolveStatus",
    "SCALING_METHODS",
    "coefficient_decades",
    "detect_infeasible",
    "equilibrate",
    "geometric_mean_scales",
    "infeasible_result",
    "presolve",
    "ruiz_scales",
]
