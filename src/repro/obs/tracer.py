"""Hierarchical tracing: spans, counters, and gauges.

The instrumentation substrate for the solvers and the crossbar
simulator.  Three event kinds:

- **spans** — named, nested wall-clock intervals (``iteration`` >
  ``analog_solve`` > ``op.solve``) opened with :meth:`Tracer.span` as
  context managers;
- **counters** — monotonically accumulating totals
  (``analog.multiplies``, ``crossbar.cells_written``) bumped with
  :meth:`Tracer.count`;
- **gauges** — last-value-wins observations (``solver.iterations``)
  set with :meth:`Tracer.gauge`;
- **histogram observations** — distribution samples
  (``service.latency_s``) folded with :meth:`Tracer.observe` into a
  per-name :class:`~repro.obs.metrics.StreamingHistogram` (fixed log
  buckets, so worker streams merge exactly; see
  :mod:`repro.obs.metrics`).

The default tracer is the module-level :data:`NOOP` singleton: every
hook is an O(1) constant-returning method, so instrumented code paths
cost one attribute lookup and call per hook when tracing is off.  Hot
loops that would build argument dicts can guard on
:attr:`Tracer.enabled` to skip even that.

A :class:`RecordingTracer` keeps the full event stream (spans close in
end-time order; counter/gauge events carry the innermost open span id,
so a replay can attribute them to a subtree) plus aggregated counter
and gauge maps.  Export goes through :mod:`repro.obs.sinks`; summary
tables and reconciliation against
:class:`~repro.core.result.CrossbarCounters` live in
:mod:`repro.analysis.spans`.
"""

from __future__ import annotations

import dataclasses
import itertools

from repro.obs.clock import monotonic
from repro.obs.metrics import StreamingHistogram


@dataclasses.dataclass(frozen=True)
class SpanEvent:
    """One closed span: a named interval in the trace hierarchy."""

    name: str
    span_id: int
    parent_id: int | None
    start_s: float
    duration_s: float
    attrs: dict

    def to_dict(self) -> dict:
        return {
            "kind": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attrs": self.attrs,
        }


@dataclasses.dataclass(frozen=True)
class CountEvent:
    """One counter increment, attributed to the innermost open span."""

    name: str
    value: float
    t_s: float
    span_id: int | None

    def to_dict(self) -> dict:
        return {
            "kind": "count",
            "name": self.name,
            "value": self.value,
            "t_s": self.t_s,
            "span_id": self.span_id,
        }


@dataclasses.dataclass(frozen=True)
class GaugeEvent:
    """One gauge observation, attributed to the innermost open span."""

    name: str
    value: float
    t_s: float
    span_id: int | None

    def to_dict(self) -> dict:
        return {
            "kind": "gauge",
            "name": self.name,
            "value": self.value,
            "t_s": self.t_s,
            "span_id": self.span_id,
        }


@dataclasses.dataclass(frozen=True)
class HistEvent:
    """One histogram observation, attributed to the innermost open span."""

    name: str
    value: float
    t_s: float
    span_id: int | None

    def to_dict(self) -> dict:
        return {
            "kind": "hist",
            "name": self.name,
            "value": self.value,
            "t_s": self.t_s,
            "span_id": self.span_id,
        }


class _NullSpan:
    """Reusable do-nothing span handle (singleton)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        """Ignore attribute updates."""


_NULL_SPAN = _NullSpan()


class Tracer:
    """The no-op tracer: every hook does (almost) nothing.

    Also the base interface :class:`RecordingTracer` implements.  Use
    the shared :data:`NOOP` singleton rather than constructing one.
    """

    enabled: bool = False

    def span(self, name: str, **attrs) -> _NullSpan:
        """Open a span; use as a context manager."""
        return _NULL_SPAN

    def count(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to the counter ``name``."""

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value``."""

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into the histogram ``name``."""


#: Shared zero-overhead tracer; the default everywhere.
NOOP = Tracer()


class _RecordingSpan:
    """Open-span handle; records a :class:`SpanEvent` on exit."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "attrs",
                 "start_s")

    def __init__(
        self,
        tracer: "RecordingTracer",
        name: str,
        parent_id: int | None,
        attrs: dict,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = next(tracer._ids)
        self.parent_id = parent_id
        self.attrs = attrs
        self.start_s = 0.0

    def set(self, **attrs) -> None:
        """Attach or update span attributes before it closes."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_RecordingSpan":
        self._tracer._stack.append(self.span_id)
        self.start_s = monotonic()
        return self

    def __exit__(self, *exc) -> bool:
        end = monotonic()
        stack = self._tracer._stack
        # Tolerate mis-nested exits rather than corrupting the stack.
        if stack and stack[-1] == self.span_id:
            stack.pop()
        elif self.span_id in stack:  # pragma: no cover - defensive
            stack.remove(self.span_id)
        self._tracer.events.append(
            SpanEvent(
                name=self.name,
                span_id=self.span_id,
                parent_id=self.parent_id,
                start_s=self.start_s,
                duration_s=end - self.start_s,
                attrs=self.attrs,
            )
        )
        return False


class RecordingTracer(Tracer):
    """Tracer that keeps the full event stream plus aggregates.

    Attributes
    ----------
    events:
        Chronological event list (spans appended when they *close*).
    counters:
        ``name -> accumulated total`` over all :meth:`count` calls.
    gauges:
        ``name -> last value`` over all :meth:`gauge` calls.
    histograms:
        ``name -> StreamingHistogram`` over all :meth:`observe` calls
        (default bucket scheme, so histograms merge across tracers).
    """

    enabled = True

    def __init__(self) -> None:
        self.events: list = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, StreamingHistogram] = {}
        self._stack: list[int] = []
        self._ids = itertools.count(1)

    def span(self, name: str, **attrs) -> _RecordingSpan:
        parent = self._stack[-1] if self._stack else None
        return _RecordingSpan(self, name, parent, attrs)

    def count(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value
        self.events.append(
            CountEvent(
                name=name,
                value=value,
                t_s=monotonic(),
                span_id=self._stack[-1] if self._stack else None,
            )
        )

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value
        self.events.append(
            GaugeEvent(
                name=name,
                value=value,
                t_s=monotonic(),
                span_id=self._stack[-1] if self._stack else None,
            )
        )

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = StreamingHistogram()
        hist.observe(value)
        self.events.append(
            HistEvent(
                name=name,
                value=value,
                t_s=monotonic(),
                span_id=self._stack[-1] if self._stack else None,
            )
        )

    def event_dicts(self) -> list[dict]:
        """The event stream as plain dicts (the JSONL payload)."""
        return [event.to_dict() for event in self.events]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RecordingTracer(events={len(self.events)}, "
            f"counters={len(self.counters)}, gauges={len(self.gauges)})"
        )
