"""Service-level objectives: error budgets and burn-rate gauges.

An SLO names a target good-event fraction over a budget window ("99%
of jobs succeed over the last hour").  The serving layer tracks two of
them — availability (job success) and deadline adherence — and reports
each as *burn rates* over multiple look-back windows, the
multi-window alerting idiom: burn rate 1.0 means errors arrive exactly
at the sustainable budget rate; burn rate 10 means the window's budget
would be gone in a tenth of the window.

Everything is clock-injectable: production uses the shared monotonic
clock, tests drive a fake clock, and burn rates stay meaningful in
simulation where a thousand jobs complete in a second (the windows
just all see the same burst).
"""

from __future__ import annotations

import collections
import dataclasses

from repro.obs.clock import monotonic

__all__ = ["SLOPolicy", "ErrorBudget", "SLOTracker"]


@dataclasses.dataclass(frozen=True)
class SLOPolicy:
    """One objective: a good-fraction target over a budget window.

    Parameters
    ----------
    name:
        Short series label (``availability``, ``deadline``).
    objective:
        Target good-event fraction in ``(0, 1)``; the error budget is
        ``1 - objective`` of the window's events.
    window_s:
        The budget window (seconds) the objective is defined over.
    burn_windows_s:
        Look-back windows for the burn-rate gauges, shortest first
        (fast/slow multi-window pair by default).
    """

    name: str = "availability"
    objective: float = 0.99
    window_s: float = 3600.0
    burn_windows_s: tuple[float, ...] = (60.0, 600.0)

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must lie in (0, 1)")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if not self.burn_windows_s:
            raise ValueError("need at least one burn window")
        for window in self.burn_windows_s:
            if not 0 < window <= self.window_s:
                raise ValueError(
                    "burn windows must lie in (0, window_s]"
                )

    @property
    def budget_fraction(self) -> float:
        """Allowed bad-event fraction (``1 - objective``)."""
        return 1.0 - self.objective


class ErrorBudget:
    """Timestamped good/bad event log scoped to one :class:`SLOPolicy`.

    Events older than the policy window are trimmed on every write and
    read, so memory is bounded by the window's event count.
    """

    def __init__(self, policy: SLOPolicy, *, clock=monotonic) -> None:
        self.policy = policy
        self._clock = clock
        #: ``(t_s, good)`` pairs, oldest first.
        self._events: collections.deque = collections.deque()
        self.total = 0
        self.bad_total = 0

    def record(self, good: bool, *, t_s: float | None = None) -> None:
        """Fold one event in (``good=False`` burns budget)."""
        t_s = self._clock() if t_s is None else t_s
        self._events.append((t_s, bool(good)))
        self.total += 1
        if not good:
            self.bad_total += 1
        self._trim(t_s)

    def _trim(self, now: float) -> None:
        horizon = now - self.policy.window_s
        while self._events and self._events[0][0] < horizon:
            self._events.popleft()

    def _window_counts(
        self, window_s: float, now: float
    ) -> tuple[int, int]:
        horizon = now - window_s
        total = bad = 0
        for t_s, good in reversed(self._events):
            if t_s < horizon:
                break
            total += 1
            if not good:
                bad += 1
        return total, bad

    def error_rate(
        self, window_s: float | None = None, *, now: float | None = None
    ) -> float:
        """Bad-event fraction over ``window_s`` (policy window default)."""
        now = self._clock() if now is None else now
        self._trim(now)
        window_s = self.policy.window_s if window_s is None else window_s
        total, bad = self._window_counts(window_s, now)
        return bad / total if total else 0.0

    def burn_rate(
        self, window_s: float | None = None, *, now: float | None = None
    ) -> float:
        """Error rate over the window, in budget units (1.0 = on budget)."""
        return self.error_rate(window_s, now=now) / self.policy.budget_fraction

    def burn_rates(self, *, now: float | None = None) -> dict[float, float]:
        """``window_s -> burn rate`` for every policy burn window."""
        now = self._clock() if now is None else now
        return {
            window: self.burn_rate(window, now=now)
            for window in self.policy.burn_windows_s
        }

    def budget_remaining(self, *, now: float | None = None) -> float:
        """Fraction of the window's error budget left (floored at 0).

        1.0 with no (or no bad) events; 0.0 once the window's bad
        fraction has reached ``1 - objective``.
        """
        now = self._clock() if now is None else now
        self._trim(now)
        total, bad = self._window_counts(self.policy.window_s, now)
        if total == 0:
            return 1.0
        allowed = self.policy.budget_fraction * total
        if allowed <= 0:
            return 0.0 if bad else 1.0
        return max(0.0, 1.0 - bad / allowed)


class SLOTracker:
    """The serving layer's SLO pair: availability and deadline budgets.

    ``record(success=..., deadline_missed=...)`` feeds both budgets
    from one job outcome; :meth:`gauges` exports burn rates and budget
    remaining as flat gauge names
    (``slo.availability.burn.60s``, ``slo.deadline.budget_remaining``)
    for the tracer / registry, and :meth:`describe` renders the
    compact ``--stats-every`` fragment.
    """

    def __init__(
        self,
        *,
        availability: SLOPolicy | None = None,
        deadline: SLOPolicy | None = None,
        clock=monotonic,
    ) -> None:
        self.availability = ErrorBudget(
            availability
            if availability is not None
            else SLOPolicy(name="availability"),
            clock=clock,
        )
        self.deadline = ErrorBudget(
            deadline
            if deadline is not None
            else SLOPolicy(name="deadline", objective=0.95),
            clock=clock,
        )

    @property
    def budgets(self) -> tuple[ErrorBudget, ErrorBudget]:
        """Both tracked budgets, availability first."""
        return (self.availability, self.deadline)

    def record(
        self,
        *,
        success: bool,
        deadline_missed: bool = False,
        t_s: float | None = None,
    ) -> None:
        """Record one job outcome into both budgets (caller holds the lock)."""
        self.availability.record(success, t_s=t_s)
        self.deadline.record(not deadline_missed, t_s=t_s)

    def gauges(self, *, now: float | None = None) -> dict[str, float]:
        """Flat ``slo.*`` gauge map for export."""
        out: dict[str, float] = {}
        for budget in self.budgets:
            prefix = f"slo.{budget.policy.name}"
            for window, burn in budget.burn_rates(now=now).items():
                out[f"{prefix}.burn.{window:g}s"] = burn
            out[f"{prefix}.budget_remaining"] = budget.budget_remaining(
                now=now
            )
        return out

    def describe(self, *, now: float | None = None) -> str:
        """Compact fragment for the periodic stats line."""
        parts = []
        for budget in self.budgets:
            fastest = budget.policy.burn_windows_s[0]
            parts.append(
                f"{budget.policy.name[:5]}={budget.burn_rate(fastest, now=now):.2f}"
            )
        return "burn " + " ".join(parts)
