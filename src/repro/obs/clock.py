"""Shared monotonic-clock helpers.

Every wall-clock measurement in the package goes through this module
so timestamps are mutually comparable: span start/end times recorded
by :mod:`repro.obs.tracer`, the ``elapsed_seconds`` stamped onto
:class:`~repro.core.result.SolverResult`, and the :class:`Deadline`
budgets the serving layer attaches to jobs all read the same monotonic
performance clock.
"""

from __future__ import annotations

import time
from typing import Callable


def monotonic() -> float:
    """Seconds on the process-wide monotonic performance clock."""
    return time.perf_counter()


class Stopwatch:
    """Context manager measuring elapsed monotonic seconds.

    >>> with Stopwatch() as clock:
    ...     do_work()
    >>> clock.elapsed_seconds
    0.0123...

    ``elapsed_seconds`` is also readable inside the ``with`` block
    (time since entry so far).
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self._elapsed: float | None = None

    def __enter__(self) -> "Stopwatch":
        self._start = monotonic()
        self._elapsed = None
        return self

    def __exit__(self, *exc) -> bool:
        self._elapsed = monotonic() - self._start
        return False

    @property
    def elapsed_seconds(self) -> float:
        """Elapsed time; final once the block exits, running before."""
        if self._start is None:
            return 0.0
        if self._elapsed is None:
            return monotonic() - self._start
        return self._elapsed


class Deadline:
    """A monotonic wall-clock budget: "be done ``budget_s`` from now".

    The serving layer attaches one per job at first dispatch; the
    solvers check it between recovery rungs and between PDIP
    iterations, so an expired deadline stops a job *inside* a solve
    after at most one more iteration's work instead of letting it burn
    the full iteration cap and recovery ladder.

    ``clock`` is injectable (tests drive a fake clock so deadline
    behaviour is deterministic); production code uses the shared
    monotonic performance clock.
    """

    __slots__ = ("budget_s", "expires_at", "_clock")

    def __init__(
        self,
        budget_s: float,
        *,
        clock: Callable[[], float] = monotonic,
    ) -> None:
        if budget_s <= 0:
            raise ValueError("deadline budget must be positive")
        self.budget_s = float(budget_s)
        self._clock = clock
        self.expires_at = clock() + self.budget_s

    @property
    def expired(self) -> bool:
        """Whether the budget has run out."""
        return self._clock() >= self.expires_at

    def remaining_s(self) -> float:
        """Seconds left, floored at zero."""
        return max(0.0, self.expires_at - self._clock())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Deadline(budget_s={self.budget_s}, "
            f"remaining_s={self.remaining_s():.3g})"
        )
