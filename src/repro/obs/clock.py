"""Shared monotonic-clock helpers.

Every wall-clock measurement in the package goes through this module
so timestamps are mutually comparable: span start/end times recorded
by :mod:`repro.obs.tracer` and the ``elapsed_seconds`` stamped onto
:class:`~repro.core.result.SolverResult` all read the same monotonic
performance clock.
"""

from __future__ import annotations

import time


def monotonic() -> float:
    """Seconds on the process-wide monotonic performance clock."""
    return time.perf_counter()


class Stopwatch:
    """Context manager measuring elapsed monotonic seconds.

    >>> with Stopwatch() as clock:
    ...     do_work()
    >>> clock.elapsed_seconds
    0.0123...

    ``elapsed_seconds`` is also readable inside the ``with`` block
    (time since entry so far).
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self._elapsed: float | None = None

    def __enter__(self) -> "Stopwatch":
        self._start = monotonic()
        self._elapsed = None
        return self

    def __exit__(self, *exc) -> bool:
        self._elapsed = monotonic() - self._start
        return False

    @property
    def elapsed_seconds(self) -> float:
        """Elapsed time; final once the block exits, running before."""
        if self._start is None:
            return 0.0
        if self._elapsed is None:
            return monotonic() - self._start
        return self._elapsed
