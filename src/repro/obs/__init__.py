"""Observability: spans, analog-op metrics, and trace export.

The measurement substrate for the solver stack (DESIGN.md §9, §14):

- :mod:`repro.obs.clock` — the shared monotonic clock and
  :class:`Stopwatch` behind every ``elapsed_seconds``.
- :mod:`repro.obs.tracer` — the hierarchical :class:`Tracer` API
  (spans / counters / gauges / histogram observations), its
  zero-overhead :data:`NOOP` default and the in-memory
  :class:`RecordingTracer`.
- :mod:`repro.obs.metrics` — streaming fixed-log-bucket histograms
  with quantile estimation, sliding windows, and the labeled
  :class:`MetricsRegistry` behind live serving telemetry.
- :mod:`repro.obs.slo` — error budgets and multi-window burn-rate
  gauges for the serving SLOs.
- :mod:`repro.obs.recorder` — the bounded flight-recorder ring buffer
  dumped to JSONL when something noteworthy trips it.
- :mod:`repro.obs.sinks` — JSONL event-stream export and the
  Prometheus-style textfile snapshot (histogram bucket/sum/count and
  labeled registry series included).

Summary tables and reconciliation against
:class:`~repro.core.result.CrossbarCounters` live in
:mod:`repro.analysis.spans` (the analysis layer depends on obs, never
the reverse).
"""

from repro.obs.clock import Stopwatch, monotonic
from repro.obs.metrics import (
    DEFAULT_SCHEME,
    BucketScheme,
    MetricsRegistry,
    StreamingHistogram,
    WindowedHistogram,
    exact_quantile,
)
from repro.obs.recorder import FlightRecorder, read_flight_jsonl
from repro.obs.sinks import (
    label_name,
    metric_name,
    read_trace_jsonl,
    render_histogram,
    render_metrics,
    render_registry,
    write_metrics_textfile,
    write_trace_jsonl,
)
from repro.obs.slo import ErrorBudget, SLOPolicy, SLOTracker
from repro.obs.tracer import (
    NOOP,
    CountEvent,
    GaugeEvent,
    HistEvent,
    RecordingTracer,
    SpanEvent,
    Tracer,
)

__all__ = [
    "monotonic",
    "Stopwatch",
    "Tracer",
    "RecordingTracer",
    "NOOP",
    "SpanEvent",
    "CountEvent",
    "GaugeEvent",
    "HistEvent",
    "BucketScheme",
    "DEFAULT_SCHEME",
    "StreamingHistogram",
    "WindowedHistogram",
    "MetricsRegistry",
    "exact_quantile",
    "SLOPolicy",
    "ErrorBudget",
    "SLOTracker",
    "FlightRecorder",
    "read_flight_jsonl",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "write_metrics_textfile",
    "render_metrics",
    "render_registry",
    "render_histogram",
    "metric_name",
    "label_name",
]
