"""Observability: spans, analog-op metrics, and trace export.

The measurement substrate for the solver stack (DESIGN.md §9):

- :mod:`repro.obs.clock` — the shared monotonic clock and
  :class:`Stopwatch` behind every ``elapsed_seconds``.
- :mod:`repro.obs.tracer` — the hierarchical :class:`Tracer` API
  (spans / counters / gauges), its zero-overhead :data:`NOOP` default
  and the in-memory :class:`RecordingTracer`.
- :mod:`repro.obs.sinks` — JSONL event-stream export and the
  Prometheus-style textfile snapshot.

Summary tables and reconciliation against
:class:`~repro.core.result.CrossbarCounters` live in
:mod:`repro.analysis.spans` (the analysis layer depends on obs, never
the reverse).
"""

from repro.obs.clock import Stopwatch, monotonic
from repro.obs.sinks import (
    read_trace_jsonl,
    render_metrics,
    write_metrics_textfile,
    write_trace_jsonl,
)
from repro.obs.tracer import (
    NOOP,
    CountEvent,
    GaugeEvent,
    RecordingTracer,
    SpanEvent,
    Tracer,
)

__all__ = [
    "monotonic",
    "Stopwatch",
    "Tracer",
    "RecordingTracer",
    "NOOP",
    "SpanEvent",
    "CountEvent",
    "GaugeEvent",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "write_metrics_textfile",
    "render_metrics",
]
