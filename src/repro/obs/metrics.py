"""Streaming metrics: mergeable histograms, windows, and a registry.

The live half of the observability layer (DESIGN.md §14).  The tracer
(:mod:`repro.obs.tracer`) records *everything* for offline replay; the
primitives here answer "what is the p99 latency right now" while a
batch is still running, in O(1) memory per series:

- :class:`StreamingHistogram` — a fixed logarithmic-bucket histogram.
  ``count`` / ``sum`` / ``min`` / ``max`` are exact; quantiles are
  estimated by linear interpolation inside the bucket holding the
  target rank, so an estimate is off by at most one bucket width
  (relative error ≤ :attr:`BucketScheme.relative_error`, ~12% with the
  default 20 buckets/decade, typically far less).  Two histograms with
  the same :class:`BucketScheme` merge by bucket-wise addition —
  merging worker streams is exact, never a re-estimate.
- :class:`WindowedHistogram` — a sliding time window over a histogram,
  kept as a ring of per-slice sub-histograms; ``snapshot()`` merges
  the live slices, so "p99 over the last minute" is one merge away.
- :class:`MetricsRegistry` — named counter / gauge / histogram series
  with label sets (``{"priority": "2"}``), the container behind the
  serving layer's per-priority and per-fingerprint-group breakdowns
  and the labeled Prometheus rendering in :mod:`repro.obs.sinks`.

Plus the shared quantile helpers (:func:`exact_quantile`) the
benchmarks use instead of ad-hoc sorted-list percentile math.
"""

from __future__ import annotations

import collections
import dataclasses
import math
from typing import Iterable, Iterator, Mapping

from repro.obs.clock import monotonic

#: Canonical label-set key: sorted ``(key, value)`` pairs.
LabelKey = "tuple[tuple[str, str], ...]"


def label_key(labels: Mapping[str, str] | None) -> tuple[tuple[str, str], ...]:
    """Canonical, hashable form of a label mapping (sorted pairs)."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def exact_quantile(values: Iterable[float], q: float) -> float:
    """Exact quantile of a finite sample, linear interpolation.

    The shared percentile helper for benchmarks and summaries (numpy's
    default ``linear`` method, without requiring an array): ``q=0``
    is the minimum, ``q=1`` the maximum, ``q=0.5`` the median.
    Returns 0.0 for an empty sample.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must lie in [0, 1]")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    position = q * (len(ordered) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return float(ordered[low])
    fraction = position - low
    return float(ordered[low] * (1.0 - fraction) + ordered[high] * fraction)


@dataclasses.dataclass(frozen=True)
class BucketScheme:
    """Fixed logarithmic bucket layout shared by mergeable histograms.

    Buckets span ``[lo, hi)`` with ``buckets_per_decade`` log-spaced
    buckets per factor of ten; values below ``lo`` (including zero and
    negatives) land in an underflow bucket, values at or above ``hi``
    in an overflow bucket.  Two histograms merge only when their
    schemes are equal, which is why the scheme is a frozen value type.
    """

    lo: float = 1e-9
    hi: float = 1e9
    buckets_per_decade: int = 20

    def __post_init__(self) -> None:
        if not 0 < self.lo < self.hi:
            raise ValueError("need 0 < lo < hi")
        if self.buckets_per_decade < 1:
            raise ValueError("buckets_per_decade must be >= 1")

    @property
    def decades(self) -> float:
        """How many factors of ten the ``[lo, hi)`` span covers."""
        return math.log10(self.hi / self.lo)

    @property
    def n_buckets(self) -> int:
        """Log-spaced buckets, excluding under/overflow."""
        return int(math.ceil(self.decades * self.buckets_per_decade - 1e-9))

    @property
    def relative_error(self) -> float:
        """Documented quantile error bound: one bucket's relative width.

        A quantile estimate lands inside the bucket holding the true
        value, so it is off by at most ``upper/lower - 1`` of that
        bucket: ``10 ** (1 / buckets_per_decade) - 1``.
        """
        return 10.0 ** (1.0 / self.buckets_per_decade) - 1.0

    def index(self, value: float) -> int:
        """Bucket index for ``value``: 0 = underflow, n+1 = overflow."""
        if value < self.lo:
            return 0
        if value >= self.hi:
            return self.n_buckets + 1
        raw = int(math.log10(value / self.lo) * self.buckets_per_decade)
        return min(max(raw, 0), self.n_buckets - 1) + 1

    def bounds(self, index: int) -> tuple[float, float]:
        """``(lower, upper)`` value bounds of bucket ``index``."""
        if index == 0:
            return (0.0, self.lo)
        if index == self.n_buckets + 1:
            return (self.hi, math.inf)
        exponent = (index - 1) / self.buckets_per_decade
        lower = self.lo * 10.0**exponent
        upper = min(
            self.hi, self.lo * 10.0 ** (index / self.buckets_per_decade)
        )
        return (lower, upper)

    def upper_bounds(self) -> list[float]:
        """Inclusive upper bounds of every bucket (Prometheus ``le``)."""
        return [
            self.bounds(index)[1] for index in range(self.n_buckets + 1)
        ] + [math.inf]

    def to_dict(self) -> dict:
        """JSON-ready form (embedded in histogram snapshots)."""
        return {
            "lo": self.lo,
            "hi": self.hi,
            "buckets_per_decade": self.buckets_per_decade,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BucketScheme":
        """Rebuild a scheme from its :meth:`to_dict` form."""
        return cls(**data)


#: The default scheme: nanoseconds-to-gigaseconds (or nJ-to-GJ), 20
#: buckets per decade — ≤12.2% quantile error, 361 integer buckets.
DEFAULT_SCHEME = BucketScheme()


class StreamingHistogram:
    """Fixed log-bucket histogram: O(1) observe, mergeable, quantiles.

    ``count``, ``total`` (the sum), ``min_value`` and ``max_value``
    are exact; :meth:`quantile` estimates are within the scheme's
    :attr:`~BucketScheme.relative_error` of the true sample quantile
    (and clamped into ``[min_value, max_value]``).
    """

    __slots__ = ("scheme", "_counts", "count", "total", "min_value",
                 "max_value")

    def __init__(self, scheme: BucketScheme = DEFAULT_SCHEME) -> None:
        self.scheme = scheme
        #: Sparse ``bucket index -> count`` (most series touch few).
        self._counts: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf

    def observe(self, value: float) -> None:
        """Fold one observation in."""
        value = float(value)
        index = self.scheme.index(value)
        self._counts[index] = self._counts.get(index, 0) + 1
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value

    @property
    def mean(self) -> float:
        """Exact sample mean (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "StreamingHistogram") -> "StreamingHistogram":
        """Fold ``other`` in by bucket-wise addition (exact); returns self."""
        if other.scheme != self.scheme:
            raise ValueError(
                "cannot merge histograms with different bucket schemes: "
                f"{self.scheme} vs {other.scheme}"
            )
        for index, count in other._counts.items():
            self._counts[index] = self._counts.get(index, 0) + count
        self.count += other.count
        self.total += other.total
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)
        return self

    def quantile(self, q: float) -> float:
        """Estimated sample quantile (see the class error bound)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must lie in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        last_index = max(self._counts)
        for index in sorted(self._counts):
            count = self._counts[index]
            if cumulative + count >= target or index == last_index:
                lower, upper = self.scheme.bounds(index)
                fraction = (target - cumulative) / count
                fraction = min(max(fraction, 0.0), 1.0)
                if not math.isfinite(upper):
                    estimate = self.max_value
                else:
                    estimate = lower + fraction * (upper - lower)
                return min(max(estimate, self.min_value), self.max_value)
            cumulative += count
        raise AssertionError("unreachable: count > 0")  # pragma: no cover

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper bound, cumulative count)`` per bucket, Prometheus-style.

        Empty trailing buckets are elided but the ``+Inf`` bucket is
        always present and equals :attr:`count`.
        """
        out: list[tuple[float, int]] = []
        cumulative = 0
        touched = sorted(self._counts)
        bounds = self.scheme.upper_bounds()
        previous = -1
        for index in touched:
            # Emit the (empty-delta) bucket just before a jump so the
            # rendered series shows where mass starts.
            if index - 1 > previous and index - 1 >= 0:
                out.append((bounds[index - 1], cumulative))
            cumulative += self._counts[index]
            out.append((bounds[index], cumulative))
            previous = index
        if not out or not math.isinf(out[-1][0]):
            out.append((math.inf, cumulative))
        return out

    def to_dict(self) -> dict:
        """JSON-ready snapshot (the cross-worker merge payload)."""
        return {
            "scheme": self.scheme.to_dict(),
            "counts": {str(k): v for k, v in sorted(self._counts.items())},
            "count": self.count,
            "total": self.total,
            "min": self.min_value if self.count else None,
            "max": self.max_value if self.count else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StreamingHistogram":
        """Rebuild a histogram from a :meth:`to_dict` snapshot."""
        hist = cls(BucketScheme.from_dict(data["scheme"]))
        hist._counts = {int(k): int(v) for k, v in data["counts"].items()}
        hist.count = int(data["count"])
        hist.total = float(data["total"])
        hist.min_value = (
            float(data["min"]) if data.get("min") is not None else math.inf
        )
        hist.max_value = (
            float(data["max"]) if data.get("max") is not None else -math.inf
        )
        return hist

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamingHistogram):
            return NotImplemented
        return (
            self.scheme == other.scheme
            and {k: v for k, v in self._counts.items() if v}
            == {k: v for k, v in other._counts.items() if v}
            and self.count == other.count
            and math.isclose(self.total, other.total, rel_tol=1e-12)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"StreamingHistogram(count={self.count}, mean={self.mean:.4g}, "
            f"p50={self.quantile(0.5):.4g}, p99={self.quantile(0.99):.4g})"
        )


class WindowedHistogram:
    """A sliding time window over a streaming histogram.

    Observations land in per-slice sub-histograms (``slices`` of
    ``window_s / slices`` seconds each); :meth:`snapshot` merges the
    slices still inside the window, so the estimate covers between
    ``window_s * (1 - 1/slices)`` and ``window_s`` seconds of data.
    The clock is injectable for deterministic tests.
    """

    def __init__(
        self,
        scheme: BucketScheme = DEFAULT_SCHEME,
        *,
        window_s: float = 60.0,
        slices: int = 6,
        clock=monotonic,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if slices < 1:
            raise ValueError("slices must be >= 1")
        self.scheme = scheme
        self.window_s = float(window_s)
        self.slices = slices
        self.slice_s = self.window_s / slices
        self._clock = clock
        self._ring: collections.deque = collections.deque()

    def _slice_index(self, t_s: float) -> int:
        return int(t_s // self.slice_s)

    def _evict(self, now_index: int) -> None:
        oldest_live = now_index - self.slices + 1
        while self._ring and self._ring[0][0] < oldest_live:
            self._ring.popleft()

    def observe(self, value: float, *, t_s: float | None = None) -> None:
        """Fold one observation into the current time slice."""
        t_s = self._clock() if t_s is None else t_s
        index = self._slice_index(t_s)
        self._evict(index)
        if not self._ring or self._ring[-1][0] != index:
            self._ring.append((index, StreamingHistogram(self.scheme)))
        self._ring[-1][1].observe(value)

    def snapshot(self, *, t_s: float | None = None) -> StreamingHistogram:
        """Merged histogram over the slices inside the window."""
        t_s = self._clock() if t_s is None else t_s
        self._evict(self._slice_index(t_s))
        merged = StreamingHistogram(self.scheme)
        for _, hist in self._ring:
            merged.merge(hist)
        return merged


@dataclasses.dataclass
class HistogramSeries:
    """One labeled histogram series: cumulative plus sliding window."""

    name: str
    labels: tuple[tuple[str, str], ...]
    cumulative: StreamingHistogram
    window: WindowedHistogram


class MetricsRegistry:
    """Named counter / gauge / histogram series with label sets.

    The serving layer's live-metrics container: one registry per
    service, series keyed by ``(name, sorted labels)``.  Histogram
    series keep both a cumulative histogram (the Prometheus rendering,
    and what reconciles against offline replay) and a sliding-window
    one (the "now" view behind ``--stats-every`` lines).

    Thread safety: the registry does **no** internal locking.  In the
    concurrent service every write goes through
    :class:`~repro.service.telemetry.ServiceTelemetry`, whose hooks
    run only under the service scheduler lock — which is also what
    makes live totals reconcile exactly with the record stream.
    Callers outside that path must serialize access themselves.
    """

    def __init__(
        self,
        *,
        scheme: BucketScheme = DEFAULT_SCHEME,
        window_s: float = 60.0,
        slices: int = 6,
        clock=monotonic,
    ) -> None:
        self.scheme = scheme
        self.window_s = window_s
        self.slices = slices
        self.clock = clock
        self._counters: dict[tuple, float] = {}
        self._gauges: dict[tuple, float] = {}
        self._histograms: dict[tuple, HistogramSeries] = {}

    # -- writes --------------------------------------------------------------

    def inc(
        self,
        name: str,
        value: float = 1.0,
        *,
        labels: Mapping[str, str] | None = None,
    ) -> None:
        """Add ``value`` to a counter series (caller holds the lock)."""
        key = (name, label_key(labels))
        self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(
        self,
        name: str,
        value: float,
        *,
        labels: Mapping[str, str] | None = None,
    ) -> None:
        """Set a gauge series (caller holds the lock)."""
        self._gauges[(name, label_key(labels))] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        *,
        labels: Mapping[str, str] | None = None,
        t_s: float | None = None,
    ) -> None:
        """Observe into both halves of a histogram series (caller holds the lock)."""
        self.histogram(name, labels=labels)
        series = self._histograms[(name, label_key(labels))]
        series.cumulative.observe(value)
        series.window.observe(value, t_s=t_s)

    def histogram(
        self,
        name: str,
        *,
        labels: Mapping[str, str] | None = None,
    ) -> HistogramSeries:
        """Get-or-create the histogram series for ``(name, labels)``."""
        key = (name, label_key(labels))
        series = self._histograms.get(key)
        if series is None:
            series = HistogramSeries(
                name=name,
                labels=key[1],
                cumulative=StreamingHistogram(self.scheme),
                window=WindowedHistogram(
                    self.scheme,
                    window_s=self.window_s,
                    slices=self.slices,
                    clock=self.clock,
                ),
            )
            self._histograms[key] = series
        return series

    # -- reads ---------------------------------------------------------------

    def counter_value(
        self, name: str, *, labels: Mapping[str, str] | None = None
    ) -> float:
        """Current counter total (0.0 for a series never written)."""
        return self._counters.get((name, label_key(labels)), 0.0)

    def gauge_value(
        self,
        name: str,
        *,
        labels: Mapping[str, str] | None = None,
        default: float = 0.0,
    ) -> float:
        """Current gauge value (``default`` for a series never set)."""
        return self._gauges.get((name, label_key(labels)), default)

    def counters(self) -> Iterator[tuple[str, tuple, float]]:
        """``(name, labels, value)`` in sorted series order."""
        for (name, labels), value in sorted(self._counters.items()):
            yield name, labels, value

    def gauges(self) -> Iterator[tuple[str, tuple, float]]:
        """``(name, labels, value)`` in sorted series order."""
        for (name, labels), value in sorted(self._gauges.items()):
            yield name, labels, value

    def histograms(self) -> Iterator[HistogramSeries]:
        """Histogram series in sorted ``(name, labels)`` order."""
        for _, series in sorted(self._histograms.items()):
            yield series

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, "
            f"histograms={len(self._histograms)})"
        )
