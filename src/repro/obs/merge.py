"""Merging worker traces into a parent tracer.

The sweep engine (:mod:`repro.experiments.engine`) runs each grid
cell in a worker process with its own :class:`~repro.obs.tracer.
RecordingTracer`, ships the serialized event stream back, and calls
:func:`absorb_events` to splice it into the parent tracer:

- every worker span id is remapped into the parent's id space, so the
  merged stream has globally unique ids and intact parent links;
- worker *root* spans (no parent inside the absorbed stream) are
  re-parented onto the parent tracer's innermost open span, so an
  absorbed ``sweep_cell`` subtree nests where the merge happened;
- counter / gauge / histogram events update the parent's aggregate
  maps, keeping :func:`~repro.obs.sinks.render_metrics` and
  :mod:`repro.analysis.spans` replay consistent.  Counter folding is
  additive, gauges are last-write-wins (stream order), and histogram
  observations fold into the parent's per-name
  :class:`~repro.obs.metrics.StreamingHistogram` — replaying every
  worker observation is identical to bucket-wise histogram addition,
  so merged quantile estimates equal a single-stream run's.

Span *durations* are exact; span *start times* stay on the worker's
monotonic clock (process-local origin), so ordering across absorbed
subtrees is only meaningful within one worker.  Replay helpers never
compare start times across subtrees, so this does not affect
``span_totals`` or ``reconcile_with_counters``.
"""

from __future__ import annotations

from typing import Iterable

from repro.obs.metrics import StreamingHistogram
from repro.obs.tracer import (
    CountEvent,
    GaugeEvent,
    HistEvent,
    RecordingTracer,
    SpanEvent,
)


def absorb_events(
    tracer: RecordingTracer,
    events: Iterable[dict],
    *,
    root_attrs: dict | None = None,
) -> int:
    """Splice a serialized child event stream into ``tracer``.

    Parameters
    ----------
    tracer:
        The parent tracer receiving the events.
    events:
        Event dicts as produced by
        :meth:`~repro.obs.tracer.RecordingTracer.event_dicts` (or read
        back from a JSONL trace / sweep cache).
    root_attrs:
        Extra attributes merged into the absorbed stream's *root*
        spans (e.g. ``{"worker": pid}``).

    Returns
    -------
    int
        Number of events absorbed.
    """
    events = list(events)
    attach_to = tracer._stack[-1] if tracer._stack else None
    # Two passes: spans close child-before-parent, so a child's
    # parent_id can reference a span that appears later in the stream.
    id_map = {
        event["span_id"]: next(tracer._ids)
        for event in events
        if event["kind"] == "span"
    }
    absorbed = 0
    for event in events:
        kind = event["kind"]
        if kind == "span":
            parent = event["parent_id"]
            is_root = parent is None or parent not in id_map
            attrs = dict(event["attrs"])
            if is_root and root_attrs:
                attrs.update(root_attrs)
            tracer.events.append(
                SpanEvent(
                    name=event["name"],
                    span_id=id_map[event["span_id"]],
                    parent_id=attach_to if is_root else id_map[parent],
                    start_s=event["start_s"],
                    duration_s=event["duration_s"],
                    attrs=attrs,
                )
            )
        elif kind == "count":
            tracer.counters[event["name"]] = (
                tracer.counters.get(event["name"], 0.0) + event["value"]
            )
            tracer.events.append(
                CountEvent(
                    name=event["name"],
                    value=event["value"],
                    t_s=event["t_s"],
                    span_id=id_map.get(event["span_id"], attach_to),
                )
            )
        elif kind == "gauge":
            tracer.gauges[event["name"]] = event["value"]
            tracer.events.append(
                GaugeEvent(
                    name=event["name"],
                    value=event["value"],
                    t_s=event["t_s"],
                    span_id=id_map.get(event["span_id"], attach_to),
                )
            )
        elif kind == "hist":
            hist = tracer.histograms.get(event["name"])
            if hist is None:
                hist = tracer.histograms[event["name"]] = (
                    StreamingHistogram()
                )
            hist.observe(event["value"])
            tracer.events.append(
                HistEvent(
                    name=event["name"],
                    value=event["value"],
                    t_s=event["t_s"],
                    span_id=id_map.get(event["span_id"], attach_to),
                )
            )
        else:
            raise ValueError(f"unknown event kind {kind!r}")
        absorbed += 1
    return absorbed
