"""Flight recorder: a bounded ring of recent events, dumped on trips.

A crashing batch is debugged from its *recent past*: which member the
failing job ran on, what the breaker did, which chaos event fired just
before.  The :class:`FlightRecorder` keeps the last ``capacity``
telemetry events (job completions, attempt outcomes, breaker and
brownout transitions, chaos injections) in memory at O(1) cost, and
:meth:`~FlightRecorder.trip` dumps the whole ring to a JSONL file when
something noteworthy happens — a job failure, a breaker opening, a
brownout tier change.

The dump format mirrors the trace JSONL convention: a ``meta`` header
line, then one event object per line, the *triggering* event last.
Dumps are capped (``max_dumps``) so a fault storm cannot flood the
disk; suppressed trips are still counted.
"""

from __future__ import annotations

import json
import pathlib
import re

from repro.obs.clock import monotonic

__all__ = ["FlightRecorder", "FLIGHT_FORMAT", "FLIGHT_VERSION"]

#: Format tag written into the dump's meta header.
FLIGHT_FORMAT = "repro-flight"
FLIGHT_VERSION = 1

_SLUG = re.compile(r"[^a-zA-Z0-9_.-]+")


class FlightRecorder:
    """Bounded in-memory event ring with triggered JSONL dumps.

    Parameters
    ----------
    capacity:
        Events retained; older events fall off the front.
    directory:
        Where :meth:`trip` writes dumps; ``None`` keeps the recorder
        purely in-memory (trips are recorded but nothing hits disk).
    max_dumps:
        File-count cap; trips past it only bump
        :attr:`suppressed_trips`.
    clock:
        Timestamp source (injectable for deterministic tests).
    """

    def __init__(
        self,
        capacity: int = 512,
        *,
        directory: str | pathlib.Path | None = None,
        max_dumps: int = 16,
        clock=monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if max_dumps < 0:
            raise ValueError("max_dumps must be non-negative")
        self.capacity = capacity
        self.directory = (
            pathlib.Path(directory) if directory is not None else None
        )
        self.max_dumps = max_dumps
        self._clock = clock
        self._events: list[dict] = []
        self._seq = 0
        self.dumps: list[pathlib.Path] = []
        self.trips = 0
        self.suppressed_trips = 0

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> tuple[dict, ...]:
        """The retained events, oldest first."""
        return tuple(self._events)

    def record(self, kind: str, **fields) -> dict:
        """Append one event to the ring; returns the stored dict."""
        event = {"seq": self._seq, "t_s": self._clock(), "kind": kind}
        event.update(fields)
        self._seq += 1
        self._events.append(event)
        if len(self._events) > self.capacity:
            del self._events[: len(self._events) - self.capacity]
        return event

    def trip(self, reason: str, **context) -> pathlib.Path | None:
        """Record a ``trip`` event and dump the ring to JSONL.

        The trip event (carrying ``reason`` and any ``context``) is
        appended *before* dumping, so every dump ends with its trigger.
        Returns the dump path, or ``None`` when no directory is
        configured or the dump cap is reached.
        """
        self.record("trip", reason=reason, **context)
        self.trips += 1
        if self.directory is None:
            return None
        if len(self.dumps) >= self.max_dumps:
            self.suppressed_trips += 1
            return None
        slug = _SLUG.sub("-", reason).strip("-") or "trip"
        path = self.directory / f"flight-{len(self.dumps):03d}-{slug}.jsonl"
        self.directory.mkdir(parents=True, exist_ok=True)
        lines = [
            json.dumps(
                {
                    "kind": "meta",
                    "format": FLIGHT_FORMAT,
                    "version": FLIGHT_VERSION,
                    "reason": reason,
                    "events": len(self._events),
                }
            )
        ]
        lines.extend(
            json.dumps(event, sort_keys=True, default=str)
            for event in self._events
        )
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        self.dumps.append(path)
        return path

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FlightRecorder(events={len(self._events)}, "
            f"trips={self.trips}, dumps={len(self.dumps)})"
        )


def read_flight_jsonl(path: str | pathlib.Path) -> list[dict]:
    """Load a flight dump; returns event dicts (header excluded).

    Raises ``ValueError`` if the file lacks the flight-format header.
    """
    path = pathlib.Path(path)
    records = [
        json.loads(line)
        for line in path.read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]
    if not records or records[0].get("format") != FLIGHT_FORMAT:
        raise ValueError(f"{path} is not a {FLIGHT_FORMAT} JSONL dump")
    return records[1:]
