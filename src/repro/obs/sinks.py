"""Trace export sinks.

Two machine-readable formats for a :class:`~repro.obs.tracer.
RecordingTracer`'s contents:

- **JSONL event stream** (:func:`write_trace_jsonl`) — one JSON object
  per line; the first line is a ``meta`` header, every following line
  a span / count / gauge event.  :func:`read_trace_jsonl` loads it
  back for replay (see :mod:`repro.analysis.spans`).
- **Prometheus-style textfile** (:func:`write_metrics_textfile`) — the
  aggregated counters, gauges, and histograms (rendered as cumulative
  ``_bucket{le=...}`` series plus ``_sum`` / ``_count``) and
  per-span-name call counts and cumulative seconds, in the
  node-exporter textfile-collector format.  A
  :class:`~repro.obs.metrics.MetricsRegistry` can ride along, its
  labeled series rendered with sanitized, escaped label pairs.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Mapping

from repro.obs.metrics import MetricsRegistry, StreamingHistogram
from repro.obs.tracer import RecordingTracer, SpanEvent

#: Format tag written into the JSONL meta header.
TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1

_METRIC_NAME = re.compile(r"[^a-zA-Z0-9_:]+")
_LABEL_NAME = re.compile(r"[^a-zA-Z0-9_]+")


def write_trace_jsonl(tracer: RecordingTracer, path: str | Path) -> Path:
    """Write the tracer's event stream as JSONL; returns the path."""
    path = Path(path)
    lines = [
        json.dumps(
            {
                "kind": "meta",
                "format": TRACE_FORMAT,
                "version": TRACE_VERSION,
                "events": len(tracer.events),
            }
        )
    ]
    lines.extend(
        json.dumps(event.to_dict(), sort_keys=True)
        for event in tracer.events
    )
    path.write_text("\n".join(lines) + "\n")
    return path


def read_trace_jsonl(path: str | Path) -> list[dict]:
    """Load a JSONL trace; returns the event dicts (header excluded).

    Raises ``ValueError`` if the file does not carry the expected
    format header.
    """
    path = Path(path)
    records = [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]
    if not records or records[0].get("format") != TRACE_FORMAT:
        raise ValueError(f"{path} is not a {TRACE_FORMAT} JSONL trace")
    return records[1:]


def metric_name(name: str, suffix: str = "", *, prefix: str = "repro_") -> str:
    """Sanitize an event name into a legal Prometheus metric name.

    Every character outside ``[a-zA-Z0-9_:]`` (dots, dashes, slashes,
    spaces, …) collapses to a single underscore; a name whose first
    character would be a digit (possible when ``prefix`` is empty or
    label-ish names like ``"0err/s"`` are passed) gains a leading
    underscore, since metric names must match
    ``[a-zA-Z_:][a-zA-Z0-9_:]*``.
    """
    base = _METRIC_NAME.sub("_", name)
    full = prefix + base + suffix
    if not full or full[0].isdigit():
        full = "_" + full
    return full


def label_name(name: str) -> str:
    """Sanitize into a legal Prometheus label name
    (``[a-zA-Z_][a-zA-Z0-9_]*``; colons are metric-name-only).
    """
    base = _LABEL_NAME.sub("_", name)
    if not base or base[0].isdigit():
        base = "_" + base
    return base


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def render_labels(labels: Mapping[str, str] | tuple | None) -> str:
    """``{k="v",...}`` fragment with sanitized names and escaped values;
    the empty string for no labels."""
    if not labels:
        return ""
    pairs = labels.items() if isinstance(labels, Mapping) else labels
    body = ",".join(
        f'{label_name(str(k))}="{_escape_label_value(str(v))}"'
        for k, v in pairs
    )
    return "{" + body + "}"


def _format_le(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else f"{bound:.6g}"


def render_histogram(
    name: str,
    hist: StreamingHistogram,
    *,
    labels: Mapping[str, str] | tuple | None = None,
    help_text: str | None = None,
) -> list[str]:
    """Prometheus histogram exposition: ``_bucket``/``_sum``/``_count``.

    Buckets are cumulative with inclusive ``le`` upper bounds, ending
    at ``+Inf`` (== ``_count``), the native histogram text format.
    """
    base = metric_name(name)
    label_pairs = (
        tuple(labels.items()) if isinstance(labels, Mapping) else labels
    ) or ()
    lines = [
        f"# HELP {base} {help_text or f'histogram of {name}'}",
        f"# TYPE {base} histogram",
    ]
    for bound, cumulative in hist.cumulative_buckets():
        bucket_labels = render_labels(
            label_pairs + (("le", _format_le(bound)),)
        )
        lines.append(f"{base}_bucket{bucket_labels} {cumulative}")
    suffix_labels = render_labels(label_pairs)
    lines.append(f"{base}_sum{suffix_labels} {hist.total:.12g}")
    lines.append(f"{base}_count{suffix_labels} {hist.count}")
    return lines


def render_registry(registry: MetricsRegistry) -> str:
    """The Prometheus textfile body for a labeled metrics registry."""
    lines: list[str] = []
    seen_types: set[str] = set()

    def header(base: str, kind: str, help_text: str) -> None:
        if base in seen_types:
            return
        seen_types.add(base)
        lines.append(f"# HELP {base} {help_text}")
        lines.append(f"# TYPE {base} {kind}")

    for name, labels, value in registry.counters():
        base = metric_name(name, "_total")
        header(base, "counter", f"accumulated total of {name}")
        lines.append(f"{base}{render_labels(labels)} {value:.12g}")
    for name, labels, value in registry.gauges():
        base = metric_name(name)
        header(base, "gauge", f"last observed value of {name}")
        lines.append(f"{base}{render_labels(labels)} {value:.12g}")
    for series in registry.histograms():
        base = metric_name(series.name)
        if base in seen_types:
            # Same histogram name, another label set: data lines only.
            rendered = render_histogram(
                series.name, series.cumulative, labels=series.labels
            )[2:]
        else:
            seen_types.add(base)
            rendered = render_histogram(
                series.name, series.cumulative, labels=series.labels
            )
        lines.extend(rendered)
    return "\n".join(lines) + ("\n" if lines else "")


def render_metrics(
    tracer: RecordingTracer, *, registry: MetricsRegistry | None = None
) -> str:
    """The Prometheus textfile body for the tracer's aggregates.

    With ``registry``, its labeled series are appended after the
    tracer-level metrics.
    """
    lines: list[str] = []

    def emit(name: str, kind: str, value: float, help_text: str) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name} {value:.12g}")

    for name in sorted(tracer.counters):
        emit(
            metric_name(name, "_total"),
            "counter",
            tracer.counters[name],
            f"accumulated total of {name}",
        )
    for name in sorted(tracer.gauges):
        emit(
            metric_name(name),
            "gauge",
            tracer.gauges[name],
            f"last observed value of {name}",
        )
    for name in sorted(getattr(tracer, "histograms", {})):
        lines.extend(render_histogram(name, tracer.histograms[name]))

    calls: dict[str, int] = {}
    seconds: dict[str, float] = {}
    for event in tracer.events:
        if isinstance(event, SpanEvent):
            calls[event.name] = calls.get(event.name, 0) + 1
            seconds[event.name] = (
                seconds.get(event.name, 0.0) + event.duration_s
            )
    if calls:
        lines.append(
            "# HELP repro_span_calls_total times each span was entered"
        )
        lines.append("# TYPE repro_span_calls_total counter")
        for name in sorted(calls):
            label = name.replace("\\", "\\\\").replace('"', '\\"')
            lines.append(
                f'repro_span_calls_total{{span="{label}"}} {calls[name]}'
            )
        lines.append(
            "# HELP repro_span_seconds_total cumulative seconds per span"
        )
        lines.append("# TYPE repro_span_seconds_total counter")
        for name in sorted(seconds):
            label = name.replace("\\", "\\\\").replace('"', '\\"')
            lines.append(
                f'repro_span_seconds_total{{span="{label}"}} '
                f"{seconds[name]:.12g}"
            )
    body = "\n".join(lines) + "\n"
    if registry is not None:
        body += render_registry(registry)
    return body


def write_metrics_textfile(
    tracer: RecordingTracer,
    path: str | Path,
    *,
    registry: MetricsRegistry | None = None,
) -> Path:
    """Write the Prometheus-style snapshot; returns the path."""
    path = Path(path)
    path.write_text(render_metrics(tracer, registry=registry))
    return path
