"""Trace export sinks.

Two machine-readable formats for a :class:`~repro.obs.tracer.
RecordingTracer`'s contents:

- **JSONL event stream** (:func:`write_trace_jsonl`) — one JSON object
  per line; the first line is a ``meta`` header, every following line
  a span / count / gauge event.  :func:`read_trace_jsonl` loads it
  back for replay (see :mod:`repro.analysis.spans`).
- **Prometheus-style textfile** (:func:`write_metrics_textfile`) — the
  aggregated counters and gauges plus per-span-name call counts and
  cumulative seconds, in the node-exporter textfile-collector format.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.obs.tracer import RecordingTracer, SpanEvent

#: Format tag written into the JSONL meta header.
TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1

_METRIC_NAME = re.compile(r"[^a-zA-Z0-9_:]")


def write_trace_jsonl(tracer: RecordingTracer, path: str | Path) -> Path:
    """Write the tracer's event stream as JSONL; returns the path."""
    path = Path(path)
    lines = [
        json.dumps(
            {
                "kind": "meta",
                "format": TRACE_FORMAT,
                "version": TRACE_VERSION,
                "events": len(tracer.events),
            }
        )
    ]
    lines.extend(
        json.dumps(event.to_dict(), sort_keys=True)
        for event in tracer.events
    )
    path.write_text("\n".join(lines) + "\n")
    return path


def read_trace_jsonl(path: str | Path) -> list[dict]:
    """Load a JSONL trace; returns the event dicts (header excluded).

    Raises ``ValueError`` if the file does not carry the expected
    format header.
    """
    path = Path(path)
    records = [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]
    if not records or records[0].get("format") != TRACE_FORMAT:
        raise ValueError(f"{path} is not a {TRACE_FORMAT} JSONL trace")
    return records[1:]


def metric_name(name: str, suffix: str = "") -> str:
    """Sanitize an event name into a Prometheus metric name."""
    return "repro_" + _METRIC_NAME.sub("_", name) + suffix


def render_metrics(tracer: RecordingTracer) -> str:
    """The Prometheus textfile body for the tracer's aggregates."""
    lines: list[str] = []

    def emit(name: str, kind: str, value: float, help_text: str) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name} {value:.12g}")

    for name in sorted(tracer.counters):
        emit(
            metric_name(name, "_total"),
            "counter",
            tracer.counters[name],
            f"accumulated total of {name}",
        )
    for name in sorted(tracer.gauges):
        emit(
            metric_name(name),
            "gauge",
            tracer.gauges[name],
            f"last observed value of {name}",
        )

    calls: dict[str, int] = {}
    seconds: dict[str, float] = {}
    for event in tracer.events:
        if isinstance(event, SpanEvent):
            calls[event.name] = calls.get(event.name, 0) + 1
            seconds[event.name] = (
                seconds.get(event.name, 0.0) + event.duration_s
            )
    if calls:
        lines.append(
            "# HELP repro_span_calls_total times each span was entered"
        )
        lines.append("# TYPE repro_span_calls_total counter")
        for name in sorted(calls):
            label = name.replace("\\", "\\\\").replace('"', '\\"')
            lines.append(
                f'repro_span_calls_total{{span="{label}"}} {calls[name]}'
            )
        lines.append(
            "# HELP repro_span_seconds_total cumulative seconds per span"
        )
        lines.append("# TYPE repro_span_seconds_total counter")
        for name in sorted(seconds):
            label = name.replace("\\", "\\\\").replace('"', '\\"')
            lines.append(
                f'repro_span_seconds_total{{span="{label}"}} '
                f"{seconds[name]:.12g}"
            )
    return "\n".join(lines) + "\n"


def write_metrics_textfile(
    tracer: RecordingTracer, path: str | Path
) -> Path:
    """Write the Prometheus-style snapshot; returns the path."""
    path = Path(path)
    path.write_text(render_metrics(tracer))
    return path
