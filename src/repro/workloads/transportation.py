"""Transportation / assignment linear programs.

The classic Hitchcock transportation problem: route goods from supply
nodes to demand nodes at minimum cost.  In the package's max-form:
maximize the *negated* shipping cost of a plan that ships each
destination at least its demand, within each origin's supply.

These problems are totally unimodular (integral vertices), making them
good integration targets: the crossbar solvers' answers can be checked
against an exact combinatorial bound.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import LinearProgram


def transportation_lp(
    supply: np.ndarray,
    demand: np.ndarray,
    cost: np.ndarray,
    *,
    name: str = "",
) -> tuple[LinearProgram, tuple[int, int]]:
    """Minimum-cost transportation as a standard-form LP.

    Variables ``x[i, j]`` (flattened row-major): quantity shipped from
    origin i to destination j.  Constraints: per-origin supply caps and
    per-destination demand *minimums* (``-sum_i x[i,j] <= -demand_j``).
    Objective: maximize ``-cost . x`` (negate the optimum to read the
    minimum shipping cost).

    Parameters
    ----------
    supply:
        Per-origin capacities, shape (n_origins,).
    demand:
        Per-destination requirements, shape (n_destinations,); total
        demand must not exceed total supply or the LP is infeasible.
    cost:
        Unit shipping costs, shape (n_origins, n_destinations), >= 0.

    Returns
    -------
    (problem, shape)
        The LP and ``(n_origins, n_destinations)`` for reshaping
        solution vectors.
    """
    supply = np.asarray(supply, dtype=float)
    demand = np.asarray(demand, dtype=float)
    cost = np.asarray(cost, dtype=float)
    if supply.ndim != 1 or demand.ndim != 1:
        raise ValueError("supply and demand must be 1-D")
    n_origins = supply.shape[0]
    n_dest = demand.shape[0]
    if cost.shape != (n_origins, n_dest):
        raise ValueError(
            f"cost has shape {cost.shape}, expected "
            f"({n_origins}, {n_dest})"
        )
    if np.any(supply < 0) or np.any(demand < 0) or np.any(cost < 0):
        raise ValueError("supply, demand, and cost must be non-negative")

    n = n_origins * n_dest

    def col(i: int, j: int) -> int:
        return i * n_dest + j

    rows: list[np.ndarray] = []
    rhs: list[float] = []
    for i in range(n_origins):
        row = np.zeros(n)
        for j in range(n_dest):
            row[col(i, j)] = 1.0
        rows.append(row)
        rhs.append(float(supply[i]))
    for j in range(n_dest):
        row = np.zeros(n)
        for i in range(n_origins):
            row[col(i, j)] = -1.0
        rows.append(row)
        rhs.append(float(-demand[j]))

    problem = LinearProgram(
        c=-cost.ravel(),
        A=np.vstack(rows),
        b=np.asarray(rhs),
        name=name or f"transportation-{n_origins}x{n_dest}",
    )
    return problem, (n_origins, n_dest)


def random_transportation_lp(
    n_origins: int,
    n_destinations: int,
    *,
    rng: np.random.Generator,
    name: str = "",
) -> tuple[LinearProgram, tuple[int, int]]:
    """A random feasible transportation instance.

    Supplies are drawn first; demands are drawn to total ~80% of the
    supply so the instance is comfortably feasible.
    """
    if n_origins < 1 or n_destinations < 1:
        raise ValueError("need at least one origin and destination")
    supply = rng.uniform(2.0, 6.0, size=n_origins)
    raw = rng.uniform(0.5, 1.5, size=n_destinations)
    demand = raw * (0.8 * supply.sum() / raw.sum())
    cost = rng.uniform(1.0, 9.0, size=(n_origins, n_destinations))
    return transportation_lp(supply, demand, cost, name=name)


def shipping_cost(
    solution: np.ndarray, cost: np.ndarray
) -> float:
    """Total shipping cost of a (flattened) plan."""
    cost = np.asarray(cost, dtype=float)
    return float(np.asarray(solution, dtype=float) @ cost.ravel())
