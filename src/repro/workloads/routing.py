"""Network-routing linear programs (networkx-based).

The paper motivates LP solving with "routing, scheduling, and various
optimization problems".  This module builds routing LPs in the
package's standard form (max c'x, Ax <= b, x >= 0):

- :func:`max_flow_lp` — single-commodity maximum flow;
- :func:`multicommodity_routing_lp` — maximize concurrently routed
  demand for several commodities sharing edge capacities.

Flow conservation (an equality) is expressed as two opposing
inequalities, which matches how the PDIP solvers ingest problems.
"""

from __future__ import annotations

import numpy as np

import networkx as nx

from repro.core.problem import LinearProgram


def _edge_index(graph: nx.DiGraph) -> dict[tuple, int]:
    return {edge: i for i, edge in enumerate(graph.edges())}


def max_flow_lp(
    graph: nx.DiGraph,
    source,
    sink,
    *,
    capacity: str = "capacity",
    conservation_slack: float = 0.05,
) -> tuple[LinearProgram, dict[tuple, int]]:
    """Maximum s-t flow as an LP.

    Variables are edge flows ``f_e >= 0``; the objective maximizes net
    flow leaving ``source``; constraints are edge capacities plus flow
    conservation (two inequalities per internal node).

    Parameters
    ----------
    graph:
        Directed graph; each edge needs a ``capacity`` attribute.
    source, sink:
        Terminal nodes.
    capacity:
        Edge-attribute name holding capacities.
    conservation_slack:
        Epsilon on each conservation inequality (``|in - out| <=
        slack`` instead of ``= 0``).  A strict equality pair leaves the
        feasible region without an interior point, which interior-point
        methods (and the analog solvers especially) cannot traverse;
        the epsilon restores a strict interior at the cost of a
        bounded conservation error per node.

    Returns
    -------
    (problem, edge_index)
        The LP and the mapping from edge to variable index, for
        recovering per-edge flows from a solution vector.
    """
    if source not in graph or sink not in graph:
        raise ValueError("source and sink must be nodes of the graph")
    if source == sink:
        raise ValueError("source and sink must differ")
    edges = _edge_index(graph)
    n = len(edges)
    if n == 0:
        raise ValueError("graph has no edges")

    internal = [v for v in graph.nodes() if v not in (source, sink)]
    m = n + 2 * len(internal)
    A = np.zeros((m, n))
    b = np.zeros(m)
    for edge, j in edges.items():
        cap = graph.edges[edge].get(capacity)
        if cap is None or cap < 0:
            raise ValueError(f"edge {edge} lacks a non-negative capacity")
        A[j, j] = 1.0
        b[j] = float(cap)
    for i, v in enumerate(internal):
        row_out = n + 2 * i
        row_in = n + 2 * i + 1
        for u_, v_ in graph.in_edges(v):
            A[row_out, edges[(u_, v_)]] += 1.0   # inflow
            A[row_in, edges[(u_, v_)]] -= 1.0
        for u_, v_ in graph.out_edges(v):
            A[row_out, edges[(u_, v_)]] -= 1.0   # outflow
            A[row_in, edges[(u_, v_)]] += 1.0
        b[row_out] = conservation_slack
        b[row_in] = conservation_slack
        # |inflow - outflow| <= slack.
    c = np.zeros(n)
    for u_, v_ in graph.out_edges(source):
        c[edges[(u_, v_)]] += 1.0
    for u_, v_ in graph.in_edges(source):
        c[edges[(u_, v_)]] -= 1.0
    problem = LinearProgram(
        c=c, A=A, b=b, name=f"maxflow-{source}-{sink}"
    )
    return problem, edges


def flow_value(
    solution: np.ndarray,
    edge_index: dict[tuple, int],
    graph: nx.DiGraph,
    source,
) -> float:
    """Net flow out of ``source`` for a solution vector."""
    value = 0.0
    for u_, v_ in graph.out_edges(source):
        value += solution[edge_index[(u_, v_)]]
    for u_, v_ in graph.in_edges(source):
        value -= solution[edge_index[(u_, v_)]]
    return float(value)


def multicommodity_routing_lp(
    graph: nx.DiGraph,
    demands: list[tuple],
    *,
    capacity: str = "capacity",
    conservation_slack: float = 0.05,
) -> tuple[LinearProgram, dict[tuple, int]]:
    """Maximum concurrent multicommodity flow as an LP.

    Each demand is ``(source, sink, weight)``; variables are per-
    commodity edge flows.  The objective maximizes the weighted sum of
    delivered flow; shared edge capacities couple the commodities.

    Returns
    -------
    (problem, variable_index)
        ``variable_index[(k, edge)]`` is the column of commodity k's
        flow on ``edge``.
    """
    if not demands:
        raise ValueError("need at least one demand")
    edges = _edge_index(graph)
    n_edges = len(edges)
    if n_edges == 0:
        raise ValueError("graph has no edges")
    n_k = len(demands)
    n = n_k * n_edges

    var = {
        (k, edge): k * n_edges + j
        for k in range(n_k)
        for edge, j in edges.items()
    }
    rows: list[np.ndarray] = []
    rhs: list[float] = []
    # Shared capacities.
    for edge, j in edges.items():
        cap = graph.edges[edge].get(capacity)
        if cap is None or cap < 0:
            raise ValueError(f"edge {edge} lacks a non-negative capacity")
        row = np.zeros(n)
        for k in range(n_k):
            row[var[(k, edge)]] = 1.0
        rows.append(row)
        rhs.append(float(cap))
    # Per-commodity conservation at internal nodes.
    for k, (src, dst, _weight) in enumerate(demands):
        if src not in graph or dst not in graph:
            raise ValueError(f"demand {k} references unknown nodes")
        for v in graph.nodes():
            if v in (src, dst):
                continue
            balance = np.zeros(n)
            for u_, v_ in graph.in_edges(v):
                balance[var[(k, (u_, v_))]] += 1.0
            for u_, v_ in graph.out_edges(v):
                balance[var[(k, (u_, v_))]] -= 1.0
            if not np.any(balance):
                continue
            rows.append(balance)
            rhs.append(conservation_slack)
            rows.append(-balance)
            rhs.append(conservation_slack)
    c = np.zeros(n)
    for k, (src, _dst, weight) in enumerate(demands):
        for u_, v_ in graph.out_edges(src):
            c[var[(k, (u_, v_))]] += float(weight)
        for u_, v_ in graph.in_edges(src):
            c[var[(k, (u_, v_))]] -= float(weight)
    problem = LinearProgram(
        c=c,
        A=np.vstack(rows),
        b=np.asarray(rhs),
        name=f"multicommodity-{n_k}",
    )
    return problem, var


def random_routing_network(
    n_nodes: int,
    *,
    rng: np.random.Generator,
    edge_probability: float = 0.35,
    capacity_range: tuple[float, float] = (1.0, 10.0),
) -> nx.DiGraph:
    """A random connected-ish directed network with capacities."""
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    graph = nx.DiGraph()
    graph.add_nodes_from(range(n_nodes))
    lo, hi = capacity_range
    # A backbone path guarantees s-t connectivity.
    for v in range(n_nodes - 1):
        graph.add_edge(v, v + 1, capacity=float(rng.uniform(lo, hi)))
    for u in range(n_nodes):
        for v in range(n_nodes):
            if u != v and not graph.has_edge(u, v):
                if rng.random() < edge_probability:
                    graph.add_edge(
                        u, v, capacity=float(rng.uniform(lo, hi))
                    )
    return graph
