"""Random LP generators matching the paper's experiment setup.

Section 4.2: "linear problems with different number of constraints
were tested.  The number of constraints varies from 256 to 1024
exponentially while the number of variables is one third of the number
of constraints.  100 randomly generated feasible tests and 100
randomly generated infeasible tests were given" (the accuracy figures
sweep constraints from 4 to 1024).

The generator is not specified in the paper, so we construct:

- **feasible** instances by planting an interior point: draw a dense
  signed A and a positive point ``x0``, then set
  ``b = A x0 + slack`` with strictly positive slack, so ``x0`` is
  strictly feasible.  Objective coefficients are drawn mixed-sign
  (biased positive so the optimum is usually non-trivial); the region
  ``{Ax <= b, x >= 0, some rows of A positive}`` is bounded with
  overwhelming probability at the paper's shapes, and bounding rows
  are explicitly added to guarantee it.

- **infeasible** instances by planting a contradiction: take a
  feasible instance and append the constraint pair
  ``u·x <= d`` and ``-u·x <= -(d + margin)`` with ``u >= 0``,
  ``margin > 0`` — no ``x`` satisfies both.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import LinearProgram


def paper_sizes(max_constraints: int = 1024) -> list[int]:
    """The paper's sweep: constraints 4, 8, ..., doubling to the cap."""
    sizes = []
    m = 4
    while m <= max_constraints:
        sizes.append(m)
        m *= 2
    return sizes


def variables_for_constraints(m: int) -> int:
    """The paper's shape rule: n = m / 3 (at least 1)."""
    return max(1, m // 3)


def random_feasible_lp(
    m: int,
    n: int | None = None,
    *,
    rng: np.random.Generator,
    coefficient_range: tuple[float, float] = (-1.0, 1.0),
    name: str = "",
    structure_rng: np.random.Generator | None = None,
) -> LinearProgram:
    """A dense random LP guaranteed feasible and bounded.

    Parameters
    ----------
    m:
        Number of inequality constraints (before the added bounding
        rows; the returned problem has exactly ``m`` rows, the last
        ones replaced by bounding rows).
    n:
        Number of variables; defaults to the paper's ``m // 3``.
    rng:
        Random generator.
    coefficient_range:
        Range of the uniform entries of A.
    structure_rng:
        Separate generator for the constraint matrix A.  Two calls
        with identically seeded ``structure_rng`` but different ``rng``
        produce problems sharing the exact same A (and hence the same
        crossbar structural blocks) with independent b and c — the
        repeated-structure regime the serving layer's programming
        cache exploits.  Defaults to ``rng`` (fully independent draw).
    """
    if m < 2:
        raise ValueError("need at least 2 constraints")
    n = variables_for_constraints(m) if n is None else n
    if n < 1:
        raise ValueError("need at least 1 variable")
    lo, hi = coefficient_range
    a_rng = structure_rng if structure_rng is not None else rng
    A = a_rng.uniform(lo, hi, size=(m, n))
    # Replace the final row with an explicit bounding constraint
    # sum(x) <= m so the maximization cannot be unbounded.
    A[-1, :] = a_rng.uniform(0.5, 1.0, size=n)
    x0 = rng.uniform(0.5, 2.0, size=n)
    slack = rng.uniform(0.5, 1.5, size=m)
    b = A @ x0 + slack
    # Mixed-sign objective, biased positive so the optimum pushes into
    # the constraints rather than sitting at the origin.
    c = rng.uniform(-0.25, 1.0, size=n)
    return LinearProgram(c=c, A=A, b=b, name=name or f"feasible-{m}x{n}")


def random_infeasible_lp(
    m: int,
    n: int | None = None,
    *,
    rng: np.random.Generator,
    coefficient_range: tuple[float, float] = (-1.0, 1.0),
    name: str = "",
    structure_rng: np.random.Generator | None = None,
) -> LinearProgram:
    """A dense random LP guaranteed infeasible.

    Built from a feasible skeleton with a planted contradiction in its
    last two rows: ``u @ x <= d`` and ``-(u @ x) <= -(d + margin)``
    cannot both hold for any x.  As in :func:`random_feasible_lp`, a
    separate ``structure_rng`` pins the constraint matrix (including
    the contradiction direction ``u``, which lives in A) while the
    right-hand sides still vary with ``rng``.
    """
    if m < 3:
        raise ValueError("need at least 3 constraints to plant infeasibility")
    base = random_feasible_lp(
        m,
        n,
        rng=rng,
        coefficient_range=coefficient_range,
        structure_rng=structure_rng,
    )
    A = base.A.copy()
    b = base.b.copy()
    n_vars = A.shape[1]
    u_rng = structure_rng if structure_rng is not None else rng
    u = u_rng.uniform(0.25, 1.0, size=n_vars)
    d = float(rng.uniform(1.0, 2.0)) * np.sqrt(n_vars)
    # The contradiction margin scales with sqrt(n) so the *relative*
    # infeasibility stays constant across sizes: constraint rows are
    # sums of n terms, so problem magnitudes (and any solver's noise
    # floor) grow with sqrt(n); a fixed absolute margin would make
    # large instances "almost feasible" and undetectable in principle.
    margin = float(rng.uniform(0.5, 1.0)) * np.sqrt(n_vars)
    A[-2, :] = u
    b[-2] = d
    A[-1, :] = -u
    b[-1] = -(d + margin)
    return LinearProgram(
        c=base.c, A=A, b=b, name=name or f"infeasible-{m}x{A.shape[1]}"
    )


def paper_test_suite(
    m: int,
    *,
    rng: np.random.Generator,
    n_feasible: int = 100,
    n_infeasible: int = 100,
) -> tuple[list[LinearProgram], list[LinearProgram]]:
    """The paper's per-size batch: random feasible + infeasible tests."""
    feasible = [
        random_feasible_lp(m, rng=rng, name=f"feasible-{m}-{i}")
        for i in range(n_feasible)
    ]
    infeasible = [
        random_infeasible_lp(m, rng=rng, name=f"infeasible-{m}-{i}")
        for i in range(n_infeasible)
    ]
    return feasible, infeasible
