"""Scheduling / production-planning linear programs.

The second application family the paper's introduction motivates.
Two generators:

- :func:`production_planning_lp` — classic product-mix planning:
  maximize profit over production quantities subject to shared
  resource capacities;
- :func:`machine_scheduling_lp` — fractional job-to-machine
  assignment: maximize completed weighted work within per-machine time
  budgets (the LP relaxation of makespan-style scheduling).
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import LinearProgram


def production_planning_lp(
    n_products: int,
    n_resources: int,
    *,
    rng: np.random.Generator,
    name: str = "",
) -> LinearProgram:
    """Random product-mix planning problem.

    Variables: production quantity per product (>= 0).
    Objective: maximize total profit.
    Constraints: each resource's total consumption within capacity,
    plus per-product demand caps.
    """
    if n_products < 1 or n_resources < 1:
        raise ValueError("need at least one product and one resource")
    usage = rng.uniform(0.1, 2.0, size=(n_resources, n_products))
    # Capacities sized so a moderate mix is feasible but resources bind.
    capacity = usage @ rng.uniform(0.3, 1.2, size=n_products)
    demand_cap = rng.uniform(0.5, 3.0, size=n_products)
    profit = rng.uniform(0.5, 5.0, size=n_products)

    A = np.vstack([usage, np.eye(n_products)])
    b = np.concatenate([capacity, demand_cap])
    return LinearProgram(
        c=profit,
        A=A,
        b=b,
        name=name or f"production-{n_products}x{n_resources}",
    )


def machine_scheduling_lp(
    n_jobs: int,
    n_machines: int,
    *,
    rng: np.random.Generator,
    horizon: float = 8.0,
    name: str = "",
) -> tuple[LinearProgram, np.ndarray]:
    """Fractional job scheduling over parallel unrelated machines.

    Variables: ``x[j, k]`` — fraction of job j run on machine k
    (flattened row-major).  Objective: maximize weighted completed
    work.  Constraints: each machine's busy time within the horizon,
    and each job completed at most once.

    Returns
    -------
    (problem, processing_times)
        ``processing_times[j, k]`` is job j's duration on machine k.
    """
    if n_jobs < 1 or n_machines < 1:
        raise ValueError("need at least one job and one machine")
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    times = rng.uniform(0.5, 4.0, size=(n_jobs, n_machines))
    weights = rng.uniform(1.0, 10.0, size=n_jobs)
    n = n_jobs * n_machines

    def col(j: int, k: int) -> int:
        return j * n_machines + k

    rows: list[np.ndarray] = []
    rhs: list[float] = []
    for k in range(n_machines):
        row = np.zeros(n)
        for j in range(n_jobs):
            row[col(j, k)] = times[j, k]
        rows.append(row)
        rhs.append(horizon)
    for j in range(n_jobs):
        row = np.zeros(n)
        for k in range(n_machines):
            row[col(j, k)] = 1.0
        rows.append(row)
        rhs.append(1.0)
    c = np.zeros(n)
    for j in range(n_jobs):
        for k in range(n_machines):
            c[col(j, k)] = weights[j]
    problem = LinearProgram(
        c=c,
        A=np.vstack(rows),
        b=np.asarray(rhs),
        name=name or f"scheduling-{n_jobs}x{n_machines}",
    )
    return problem, times
