"""Workload generators: random LPs (Section 4.2), routing, scheduling."""

from repro.workloads.random_lp import (
    paper_sizes,
    paper_test_suite,
    random_feasible_lp,
    random_infeasible_lp,
    variables_for_constraints,
)
from repro.workloads.routing import (
    flow_value,
    max_flow_lp,
    multicommodity_routing_lp,
    random_routing_network,
)
from repro.workloads.scheduling import (
    machine_scheduling_lp,
    production_planning_lp,
)
from repro.workloads.streaming import (
    StreamStep,
    parameter_stream,
    rolling_horizon_stream,
)
from repro.workloads.transportation import (
    random_transportation_lp,
    shipping_cost,
    transportation_lp,
)

__all__ = [
    "random_feasible_lp",
    "random_infeasible_lp",
    "paper_sizes",
    "paper_test_suite",
    "variables_for_constraints",
    "max_flow_lp",
    "flow_value",
    "multicommodity_routing_lp",
    "random_routing_network",
    "production_planning_lp",
    "machine_scheduling_lp",
    "StreamStep",
    "parameter_stream",
    "rolling_horizon_stream",
    "transportation_lp",
    "random_transportation_lp",
    "shipping_cost",
]
