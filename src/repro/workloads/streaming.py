"""Rolling-horizon parameter streams for the warm re-solve tier.

Model-predictive control, intraday production planning, and traffic
engineering all re-solve the *same* LP structure over and over with
slowly drifting right-hand sides (capacities, demands) and objective
coefficients (prices).  On the crossbar that access pattern is golden:
the O(N²) structural program is paid once, and every subsequent step
is a parameter-only warm re-solve (:meth:`repro.service.service.
SolverService.resolve`) that rewrites zero cells.

:func:`parameter_stream` generates such a stream from any base LP as a
bounded geometric random walk on ``(b, c)``; :func:`rolling_horizon_
stream` wraps a production-planning instance into the service's spec
vocabulary (one :class:`~repro.service.jobs.JobSpec` followed by
:class:`~repro.service.jobs.ResolveSpec` steps) ready for ``repro
batch`` / ``repro resolve``.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

import numpy as np

from repro.core.problem import LinearProgram


@dataclasses.dataclass(frozen=True)
class StreamStep:
    """One step of a parameter stream: the drifted instance.

    Attributes
    ----------
    step:
        0-based step index.
    problem:
        The instance at this step — same ``A`` as the base, drifted
        ``b`` / ``c``.
    """

    step: int
    problem: LinearProgram


def parameter_stream(
    base: LinearProgram,
    steps: int,
    *,
    rng: np.random.Generator,
    drift: float = 0.02,
    bound: float = 0.25,
    drift_c: float | None = None,
) -> Iterator[StreamStep]:
    """Yield ``steps`` parameter-only drifts of ``base``.

    Each step multiplies every ``b`` entry by ``1 + drift * u`` with
    ``u ~ U(-1, 1)`` (and likewise ``c`` with ``drift_c``, defaulting
    to ``drift``), then clamps the cumulative factor to ``[1 - bound,
    1 + bound]`` of the base value so a long stream cannot wander into
    a different regime (or through zero) — the random walk is
    reflected at the band edges.  ``A`` is shared by reference: every
    yielded problem has the same structural fingerprint as ``base``.
    """
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    if not 0.0 <= drift < 1.0:
        raise ValueError(f"drift must be in [0, 1), got {drift}")
    drift_c = drift if drift_c is None else drift_c
    if not 0.0 <= drift_c < 1.0:
        raise ValueError(f"drift_c must be in [0, 1), got {drift_c}")
    if not 0.0 < bound < 1.0:
        raise ValueError(f"bound must be in (0, 1), got {bound}")
    lo, hi = 1.0 - bound, 1.0 + bound
    factor_b = np.ones(base.b.shape)
    factor_c = np.ones(base.c.shape)
    for step in range(steps):
        factor_b *= 1.0 + drift * rng.uniform(-1.0, 1.0, base.b.shape)
        factor_c *= 1.0 + drift_c * rng.uniform(-1.0, 1.0, base.c.shape)
        # Reflect at the band edges instead of clipping so the walk
        # keeps moving rather than sticking to the boundary.
        factor_b = np.where(factor_b > hi, 2 * hi - factor_b, factor_b)
        factor_b = np.where(factor_b < lo, 2 * lo - factor_b, factor_b)
        factor_c = np.where(factor_c > hi, 2 * hi - factor_c, factor_c)
        factor_c = np.where(factor_c < lo, 2 * lo - factor_c, factor_c)
        yield StreamStep(
            step=step,
            problem=LinearProgram(
                c=base.c * factor_c,
                A=base.A,
                b=base.b * factor_b,
                name=f"{base.name or 'stream'}:step{step:04d}",
            ),
        )


def rolling_horizon_stream(
    steps: int,
    *,
    constraints: int = 24,
    group: int = 0,
    seed: int = 0,
    drift: float = 0.02,
    bound: float = 0.25,
    prefix: str = "horizon",
    tenant: str | None = None,
    chain: bool = True,
):
    """A rolling-horizon stream in the service's spec vocabulary.

    Derives the base instance exactly the way the service will (the
    deterministic :func:`~repro.service.jobs.build_problem` derivation
    for ``JobSpec(prefix-base)`` under ``base_seed=seed``), walks its
    parameters with :func:`parameter_stream`, and emits ``[JobSpec(
    base), ResolveSpec(step 0), ...]`` with each step's explicit
    drifted ``(b, c)`` attached — exactly what ``SolverService.batch``
    / ``repro batch`` consume.

    With ``chain=True`` (default) each step names the *previous* step
    as its base, the receding-horizon pattern: the warm start is the
    optimum one small drift away, so a step typically polishes in a
    handful of iterations.  ``chain=False`` anchors every step to the
    base job instead — warm starts stay valid when steps complete out
    of order, at the price of more polish iterations as the walk
    wanders from the base optimum.

    Returns ``(base_problem, specs)``.  The service consuming
    ``specs`` must run with ``base_seed=seed`` or the attached
    parameter vectors will not correspond to its base instance.
    """
    from repro.service.jobs import (
        DEFAULT_TENANT,
        JobSpec,
        ResolveSpec,
        build_problem,
    )

    tenant = DEFAULT_TENANT if tenant is None else tenant
    base_spec = JobSpec(
        job_id=f"{prefix}-base",
        constraints=constraints,
        group=group,
        tenant=tenant,
    )
    base = build_problem(base_spec, seed)
    rng = np.random.default_rng(seed)
    specs: list = [base_spec]
    previous = base_spec.job_id
    for item in parameter_stream(
        base, steps, rng=rng, drift=drift, bound=bound
    ):
        job_id = f"{prefix}-r{item.step:04d}"
        specs.append(
            ResolveSpec(
                job_id=job_id,
                base_job_id=previous if chain else base_spec.job_id,
                tenant=tenant,
                b=tuple(float(v) for v in item.problem.b),
                c=tuple(float(v) for v in item.problem.c),
            )
        )
        if chain:
            previous = job_id
    return base, specs
