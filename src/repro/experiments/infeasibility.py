"""Infeasibility-detection study (Section 4.4 anchors).

The paper highlights infeasibility detection as the biggest win: at
m = 1024, Matlab linprog needs ~30 s to certify infeasibility while
the crossbar solver's big-M divergence test fires in ~265 ms (113x).
This experiment measures detection rate, iterations-to-detection, and
estimated detection latency on batches of planted-contradiction LPs.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.metrics import SampleStats
from repro.analysis.tables import render_table
from repro.core.result import SolveStatus
from repro.costmodel.cpu import linprog_latency
from repro.costmodel.latency import estimate_latency
from repro.experiments.runner import (
    SweepConfig,
    cell_seed,
    settings_for,
    solver_for,
)
from repro.obs.tracer import NOOP, Tracer
from repro.workloads.random_lp import random_infeasible_lp


@dataclasses.dataclass(frozen=True)
class InfeasibilityRow:
    """One sweep cell of the infeasibility-detection study."""

    solver: str
    constraints: int
    variation_percent: int
    trials: int
    detected: int
    iterations: SampleStats
    latency: SampleStats
    linprog_s: float

    @property
    def detection_rate(self) -> float:
        """Fraction of planted-infeasible problems flagged INFEASIBLE."""
        return self.detected / self.trials if self.trials else 0.0

    @property
    def speedup_vs_linprog(self) -> float:
        """linprog infeasibility latency / mean crossbar latency."""
        if self.latency.count == 0 or self.latency.mean == 0.0:
            return 0.0
        return self.linprog_s / self.latency.mean


def infeasibility_sweep(
    solver: str = "crossbar",
    config: SweepConfig | None = None,
    *,
    tracer: Tracer | None = None,
) -> list[InfeasibilityRow]:
    """Run the detection sweep and return one row per cell.

    Instrumented like :func:`repro.experiments.accuracy_sweep`: one
    ``sweep_cell`` span per grid cell, ``sweep.trials`` /
    ``sweep.detected`` counters across the run.
    """
    config = config if config is not None else SweepConfig()
    tracer = tracer if tracer is not None else NOOP
    rows: list[InfeasibilityRow] = []
    for m in config.sizes:
        for variation in config.variations:
          with tracer.span(
              "sweep_cell", solver=solver, size=m, variation=variation
          ):
            solve = solver_for(solver, variation, tracer=tracer)
            settings = settings_for(solver, variation)
            iteration_samples: list[float] = []
            latency_samples: list[float] = []
            detected = 0
            for trial in range(config.trials):
                seed = cell_seed(config, m, variation, trial)
                rng = np.random.default_rng(seed)
                problem = random_infeasible_lp(m, rng=rng)
                tracer.count("sweep.trials")
                result = solve(
                    problem, np.random.default_rng(seed.spawn(1)[0])
                )
                if result.status is SolveStatus.INFEASIBLE:
                    detected += 1
                    tracer.count("sweep.detected")
                    iteration_samples.append(float(result.iterations))
                    if result.crossbar is not None:
                        breakdown = estimate_latency(
                            result, settings.device
                        )
                        latency_samples.append(breakdown.total_s)
            rows.append(
                InfeasibilityRow(
                    solver=solver,
                    constraints=m,
                    variation_percent=variation,
                    trials=config.trials,
                    detected=detected,
                    iterations=SampleStats.from_samples(iteration_samples),
                    latency=SampleStats.from_samples(latency_samples),
                    linprog_s=linprog_latency(m, infeasible=True),
                )
            )
    return rows


def render_infeasibility(rows: list[InfeasibilityRow]) -> str:
    """Detection-study text table."""
    table = [
        [
            row.solver,
            row.constraints,
            row.variation_percent,
            f"{row.detected}/{row.trials}",
            row.iterations.mean,
            row.latency.mean * 1e3,
            row.linprog_s * 1e3,
            row.speedup_vs_linprog,
        ]
        for row in rows
    ]
    return render_table(
        [
            "solver",
            "constraints",
            "var%",
            "detected",
            "mean_iters",
            "crossbar_ms",
            "linprog_ms",
            "speedup",
        ],
        table,
    )
