"""Infeasibility-detection study (Section 4.4 anchors).

The paper highlights infeasibility detection as the biggest win: at
m = 1024, Matlab linprog needs ~30 s to certify infeasibility while
the crossbar solver's big-M divergence test fires in ~265 ms (113x).
This experiment measures detection rate, iterations-to-detection, and
estimated detection latency on batches of planted-contradiction LPs.

Execution goes through the sweep engine
(:mod:`repro.experiments.engine`) via :func:`infeasibility_trial` /
:func:`aggregate_infeasibility`, registered as :data:`SPEC` — so the
sweep parallelizes and resumes like every other experiment.
"""

from __future__ import annotations

import dataclasses
import pathlib

import numpy as np

from repro.analysis.metrics import SampleStats
from repro.analysis.tables import render_table
from repro.core.result import SolveStatus
from repro.costmodel.cpu import linprog_latency
from repro.costmodel.latency import estimate_latency
from repro.experiments.engine import SweepSpec, run_sweep
from repro.experiments.runner import (
    SweepConfig,
    cell_seed,
    settings_for,
    solver_for,
)
from repro.obs.tracer import Tracer
from repro.workloads.random_lp import random_infeasible_lp


@dataclasses.dataclass(frozen=True)
class InfeasibilityRow:
    """One sweep cell of the infeasibility-detection study."""

    solver: str
    constraints: int
    variation_percent: int
    trials: int
    detected: int
    iterations: SampleStats
    latency: SampleStats
    linprog_s: float

    @property
    def detection_rate(self) -> float:
        """Fraction of planted-infeasible problems flagged INFEASIBLE."""
        return self.detected / self.trials if self.trials else 0.0

    @property
    def speedup_vs_linprog(self) -> float:
        """linprog infeasibility latency / mean crossbar latency."""
        if self.latency.count == 0 or self.latency.mean == 0.0:
            return 0.0
        return self.linprog_s / self.latency.mean


def infeasibility_trial(
    solver: str,
    size: int,
    variation: int,
    trial: int,
    config: SweepConfig,
    tracer: Tracer,
) -> dict:
    """One detection trial: planted-infeasible LP, big-M divergence."""
    seed = cell_seed(config, size, variation, trial)
    rng = np.random.default_rng(seed)
    problem = random_infeasible_lp(size, rng=rng)
    tracer.count("sweep.trials")
    solve = solver_for(solver, variation, tracer=tracer)
    result = solve(problem, np.random.default_rng(seed.spawn(1)[0]))
    payload: dict = {"detected": False}
    if result.status is SolveStatus.INFEASIBLE:
        tracer.count("sweep.detected")
        payload.update(detected=True, iterations=float(result.iterations))
        if result.crossbar is not None:
            settings = settings_for(solver, variation)
            breakdown = estimate_latency(result, settings.device)
            payload["latency_s"] = breakdown.total_s
    return payload


def aggregate_infeasibility(
    solver: str,
    size: int,
    variation: int,
    config: SweepConfig,
    payloads: list[dict | None],
) -> InfeasibilityRow:
    """Fold one cell's per-trial payloads (trial order) into a row."""
    detected = [
        p for p in payloads if p is not None and p.get("detected")
    ]
    return InfeasibilityRow(
        solver=solver,
        constraints=size,
        variation_percent=variation,
        trials=config.trials,
        detected=len(detected),
        iterations=SampleStats.from_samples(
            [p["iterations"] for p in detected]
        ),
        latency=SampleStats.from_samples(
            [p["latency_s"] for p in detected if "latency_s" in p]
        ),
        linprog_s=linprog_latency(size, infeasible=True),
    )


def infeasibility_sweep(
    solver: str = "crossbar",
    config: SweepConfig | None = None,
    *,
    tracer: Tracer | None = None,
    workers: int = 1,
    cache_path: str | pathlib.Path | None = None,
) -> list[InfeasibilityRow]:
    """Run the detection sweep and return one row per cell.

    Instrumented like :func:`repro.experiments.accuracy_sweep`: one
    ``sweep_cell`` span per trial (attributes include the worker pid),
    ``sweep.trials`` / ``sweep.detected`` counters across the run.
    ``workers`` / ``cache_path`` enable parallel and resumable
    execution with bit-identical rows.
    """
    return run_sweep(
        "infeasibility",
        solver,
        config,
        tracer=tracer,
        workers=workers,
        cache_path=cache_path,
    ).rows


def render_infeasibility(rows: list[InfeasibilityRow]) -> str:
    """Detection-study text table."""
    table = [
        [
            row.solver,
            row.constraints,
            row.variation_percent,
            f"{row.detected}/{row.trials}",
            row.iterations.mean,
            row.latency.mean * 1e3,
            row.linprog_s * 1e3,
            row.speedup_vs_linprog,
        ]
        for row in rows
    ]
    return render_table(
        [
            "solver",
            "constraints",
            "var%",
            "detected",
            "mean_iters",
            "crossbar_ms",
            "linprog_ms",
            "speedup",
        ],
        table,
    )


#: Engine registration: per-trial work + per-cell fold + renderer.
SPEC = SweepSpec(
    name="infeasibility",
    trial=infeasibility_trial,
    aggregate=aggregate_infeasibility,
    render=render_infeasibility,
)
