"""Fig. 5 reproduction: accuracy of the crossbar solvers.

For each (constraint count, variation level) cell, solve a batch of
random feasible LPs on the chosen crossbar solver and compare the
optimal values against the software ground truth (scipy HiGHS — the
"Matlab linprog" stand-in), exactly the relative-error measure plotted
in Fig. 5(a) (Solver 1) and Fig. 5(b) (Solver 2).

Execution goes through the sweep engine
(:mod:`repro.experiments.engine`): the per-trial work is
:func:`accuracy_trial`, the per-cell fold is
:func:`aggregate_accuracy`, and :data:`SPEC` registers both — so
``accuracy_sweep(..., workers=N, cache_path=...)`` runs the grid in
parallel and resumably with bit-identical rows.
"""

from __future__ import annotations

import dataclasses
import pathlib

import numpy as np

from repro.analysis.metrics import SampleStats, relative_error
from repro.analysis.tables import render_table
from repro.baselines.scipy_linprog import solve_scipy
from repro.core.result import SolveStatus
from repro.core.batch_solver import solve_crossbar_batch
from repro.experiments.engine import SweepSpec, run_sweep
from repro.experiments.runner import (
    SweepConfig,
    cell_seed,
    settings_for,
    solver_for,
)
from repro.obs.tracer import Tracer
from repro.workloads.random_lp import random_feasible_lp


@dataclasses.dataclass(frozen=True)
class AccuracyRow:
    """One sweep cell of the Fig. 5 accuracy table.

    Attributes
    ----------
    solver:
        Registry name of the solver under test.
    constraints / variation_percent:
        Cell coordinates.
    trials:
        Problems attempted.
    solved:
        Problems that returned OPTIMAL.
    error:
        Relative-error statistics over the solved problems.
    iterations:
        Iteration-count statistics over the solved problems.
    """

    solver: str
    constraints: int
    variation_percent: int
    trials: int
    solved: int
    error: SampleStats
    iterations: SampleStats


def accuracy_trial(
    solver: str,
    size: int,
    variation: int,
    trial: int,
    config: SweepConfig,
    tracer: Tracer,
) -> dict:
    """One Fig. 5 trial: solve a random feasible LP, compare to truth.

    Runs in a sweep-engine worker; all randomness derives from
    :func:`~repro.experiments.runner.cell_seed`, so the payload is
    identical wherever (and whenever) the cell executes.
    """
    seed = cell_seed(config, size, variation, trial)
    rng = np.random.default_rng(seed)
    problem = random_feasible_lp(size, rng=rng)
    truth = solve_scipy(problem)
    if truth.status is not SolveStatus.OPTIMAL:
        return {"counted": False}  # extraordinarily rare; skip
    tracer.count("sweep.trials")
    solve = solver_for(solver, variation, tracer=tracer)
    result = solve(problem, np.random.default_rng(seed.spawn(1)[0]))
    payload: dict = {"counted": True, "solved": False}
    if result.status is SolveStatus.OPTIMAL:
        tracer.count("sweep.solved")
        payload.update(
            solved=True,
            error=relative_error(result.objective, truth.objective),
            iterations=float(result.iterations),
        )
    return payload


def accuracy_trial_batch(
    solver: str,
    keys: list,
    config: SweepConfig,
    tracer: Tracer,
) -> list[dict]:
    """A same-``(size, variation)`` group of Fig. 5 trials, batched.

    The crossbar solves for the whole group run as ONE lockstep fleet
    on stacked arrays (:func:`~repro.core.batch_solver.
    solve_crossbar_batch`); problem generation, ground truth, and seed
    derivation stay per-trial, exactly as :func:`accuracy_trial` does
    them, so every payload is bitwise what the serial path returns.
    Non-crossbar solvers have no batched engine and fall through to
    the per-trial function.
    """
    if solver != "crossbar":
        return [
            accuracy_trial(
                solver, key.size, key.variation, key.trial, config, tracer
            )
            for key in keys
        ]
    payloads: list[dict] = [{"counted": False} for _ in keys]
    live: list[int] = []
    problems = []
    rngs = []
    truths = {}
    for index, key in enumerate(keys):
        seed = cell_seed(config, key.size, key.variation, key.trial)
        rng = np.random.default_rng(seed)
        problem = random_feasible_lp(key.size, rng=rng)
        truth = solve_scipy(problem)
        if truth.status is not SolveStatus.OPTIMAL:
            continue  # extraordinarily rare; skip, like the serial path
        tracer.count("sweep.trials")
        live.append(index)
        problems.append(problem)
        rngs.append(np.random.default_rng(seed.spawn(1)[0]))
        truths[index] = truth
    if not live:
        return payloads
    if len({key.variation for key in keys}) != 1:
        raise ValueError("batched trials must share one variation level")
    settings = settings_for("crossbar", keys[live[0]].variation)
    results = solve_crossbar_batch(problems, settings, rngs=rngs)
    for index, result in zip(live, results):
        payload: dict = {"counted": True, "solved": False}
        if result.status is SolveStatus.OPTIMAL:
            tracer.count("sweep.solved")
            payload.update(
                solved=True,
                error=relative_error(
                    result.objective, truths[index].objective
                ),
                iterations=float(result.iterations),
            )
        payloads[index] = payload
    return payloads


def aggregate_accuracy(
    solver: str,
    size: int,
    variation: int,
    config: SweepConfig,
    payloads: list[dict | None],
) -> AccuracyRow:
    """Fold one cell's per-trial payloads (trial order) into a row."""
    solved_payloads = [
        p for p in payloads if p is not None and p.get("solved")
    ]
    return AccuracyRow(
        solver=solver,
        constraints=size,
        variation_percent=variation,
        trials=config.trials,
        solved=len(solved_payloads),
        error=SampleStats.from_samples(
            [p["error"] for p in solved_payloads]
        ),
        iterations=SampleStats.from_samples(
            [p["iterations"] for p in solved_payloads]
        ),
    )


def accuracy_sweep(
    solver: str = "crossbar",
    config: SweepConfig | None = None,
    *,
    tracer: Tracer | None = None,
    workers: int = 1,
    cache_path: str | pathlib.Path | None = None,
    batch_trials: bool = False,
) -> list[AccuracyRow]:
    """Run the Fig. 5 sweep and return one row per cell.

    With a recording ``tracer``, each trial runs inside a
    ``sweep_cell`` span (attributes: solver, size, variation, trial,
    worker) and the ``sweep.trials`` / ``sweep.solved`` counters
    accumulate across the grid.  ``workers`` fans trials out to a
    process pool (rows are bit-identical at any worker count);
    ``cache_path`` makes the run resumable.  ``batch_trials`` runs
    each cell's crossbar solves as one lockstep stacked-array fleet —
    rows stay bit-identical.
    """
    return run_sweep(
        "accuracy",
        solver,
        config,
        tracer=tracer,
        workers=workers,
        cache_path=cache_path,
        batch_trials=batch_trials,
    ).rows


def render_accuracy(rows: list[AccuracyRow]) -> str:
    """Fig. 5-style text table: relative error per cell."""
    table = [
        [
            row.solver,
            row.constraints,
            row.variation_percent,
            f"{row.solved}/{row.trials}",
            row.error.mean,
            row.error.maximum,
            row.iterations.mean,
        ]
        for row in rows
    ]
    return render_table(
        [
            "solver",
            "constraints",
            "var%",
            "solved",
            "mean_rel_err",
            "max_rel_err",
            "mean_iters",
        ],
        table,
    )


#: Engine registration: per-trial work + per-cell fold + renderer.
SPEC = SweepSpec(
    name="accuracy",
    trial=accuracy_trial,
    aggregate=aggregate_accuracy,
    render=render_accuracy,
    trial_batch=accuracy_trial_batch,
)
