"""Fig. 5 reproduction: accuracy of the crossbar solvers.

For each (constraint count, variation level) cell, solve a batch of
random feasible LPs on the chosen crossbar solver and compare the
optimal values against the software ground truth (scipy HiGHS — the
"Matlab linprog" stand-in), exactly the relative-error measure plotted
in Fig. 5(a) (Solver 1) and Fig. 5(b) (Solver 2).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.metrics import SampleStats, relative_error
from repro.analysis.tables import render_table
from repro.baselines.scipy_linprog import solve_scipy
from repro.core.result import SolveStatus
from repro.experiments.runner import SweepConfig, cell_seed, solver_for
from repro.obs.tracer import NOOP, Tracer
from repro.workloads.random_lp import random_feasible_lp


@dataclasses.dataclass(frozen=True)
class AccuracyRow:
    """One sweep cell of the Fig. 5 accuracy table.

    Attributes
    ----------
    solver:
        Registry name of the solver under test.
    constraints / variation_percent:
        Cell coordinates.
    trials:
        Problems attempted.
    solved:
        Problems that returned OPTIMAL.
    error:
        Relative-error statistics over the solved problems.
    iterations:
        Iteration-count statistics over the solved problems.
    """

    solver: str
    constraints: int
    variation_percent: int
    trials: int
    solved: int
    error: SampleStats
    iterations: SampleStats


def accuracy_sweep(
    solver: str = "crossbar",
    config: SweepConfig | None = None,
    *,
    tracer: Tracer | None = None,
) -> list[AccuracyRow]:
    """Run the Fig. 5 sweep and return one row per cell.

    With a recording ``tracer``, each cell runs inside a
    ``sweep_cell`` span (attributes: size, variation) and the
    ``sweep.trials`` / ``sweep.solved`` counters accumulate across the
    grid, so a trace shows where a long sweep spends its time.
    """
    config = config if config is not None else SweepConfig()
    tracer = tracer if tracer is not None else NOOP
    rows: list[AccuracyRow] = []
    for m in config.sizes:
        for variation in config.variations:
          with tracer.span(
              "sweep_cell", solver=solver, size=m, variation=variation
          ):
            solve = solver_for(solver, variation, tracer=tracer)
            errors: list[float] = []
            iteration_counts: list[float] = []
            solved = 0
            for trial in range(config.trials):
                seed = cell_seed(config, m, variation, trial)
                rng = np.random.default_rng(seed)
                problem = random_feasible_lp(m, rng=rng)
                truth = solve_scipy(problem)
                if truth.status is not SolveStatus.OPTIMAL:
                    continue  # extraordinarily rare; skip the trial
                tracer.count("sweep.trials")
                result = solve(problem, np.random.default_rng(seed.spawn(1)[0]))
                if result.status is SolveStatus.OPTIMAL:
                    solved += 1
                    tracer.count("sweep.solved")
                    errors.append(
                        relative_error(result.objective, truth.objective)
                    )
                    iteration_counts.append(float(result.iterations))
            rows.append(
                AccuracyRow(
                    solver=solver,
                    constraints=m,
                    variation_percent=variation,
                    trials=config.trials,
                    solved=solved,
                    error=SampleStats.from_samples(errors),
                    iterations=SampleStats.from_samples(iteration_counts),
                )
            )
    return rows


def render_accuracy(rows: list[AccuracyRow]) -> str:
    """Fig. 5-style text table: relative error per cell."""
    table = [
        [
            row.solver,
            row.constraints,
            row.variation_percent,
            f"{row.solved}/{row.trials}",
            row.error.mean,
            row.error.maximum,
            row.iterations.mean,
        ]
        for row in rows
    ]
    return render_table(
        [
            "solver",
            "constraints",
            "var%",
            "solved",
            "mean_rel_err",
            "max_rel_err",
            "mean_iters",
        ],
        table,
    )
