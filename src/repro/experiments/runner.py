"""Shared experiment infrastructure.

The paper's evaluation (Section 4.2) sweeps the number of constraints
from 4 to 1024 (doubling), with n = m/3 variables, under process
variation of 0 / 5 / 10 / 20 %, over batches of random feasible and
infeasible tests.  :class:`SweepConfig` captures that grid;
:func:`solver_for` builds a configured solver callable by name so
every experiment module runs the same way.

Defaults are scaled down (sizes to 64, a few trials) so the benchmark
suite completes in minutes; pass ``paper_scale()`` for the full grid.

:func:`cell_seed` is the determinism anchor: a sweep cell's entire
random stream derives from ``(config.seed, size, variation, trial)``,
which is what lets the execution engine
(:mod:`repro.experiments.engine`) run cells in any order, on any
number of workers, and still produce bit-identical tables.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

from repro.core.problem import LinearProgram
from repro.core.reference_pdip import solve_reference
from repro.core.result import SolverResult
from repro.core.settings import (
    CrossbarSolverSettings,
    PDIPSettings,
    ScalableSolverSettings,
)
from repro.core.crossbar_solver import solve_crossbar
from repro.core.scalable_solver import solve_crossbar_large_scale
from repro.devices.variation import variation_from_percent
from repro.obs.tracer import Tracer

#: Solver registry: name -> factory(variation_percent) -> callable.
SOLVER_NAMES = ("crossbar", "large_scale", "reference")

SolverFn = Callable[[LinearProgram, np.random.Generator], SolverResult]


@dataclasses.dataclass(frozen=True)
class SweepConfig:
    """Grid of an accuracy/latency/energy sweep.

    Attributes
    ----------
    sizes:
        Constraint counts m (paper: 4, 8, ..., 1024).
    variations:
        Process-variation percentages (paper: 0, 5, 10, 20).
    trials:
        Random problems per (size, variation) cell (paper: 100).
    seed:
        Base seed; each cell derives child seeds deterministically.
    """

    sizes: tuple[int, ...] = (4, 8, 16, 32, 64)
    variations: tuple[int, ...] = (0, 5, 10, 20)
    trials: int = 5
    seed: int = 2016

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ValueError("need at least one size")
        if any(m < 2 for m in self.sizes):
            raise ValueError("sizes must be >= 2")
        if not self.variations:
            raise ValueError("need at least one variation level")
        if self.trials < 1:
            raise ValueError("trials must be positive")


def paper_scale() -> SweepConfig:
    """The full Section 4.2 grid (hours of simulation)."""
    return SweepConfig(
        sizes=(4, 8, 16, 32, 64, 128, 256, 512, 1024),
        variations=(0, 5, 10, 20),
        trials=100,
    )


def solver_for(
    name: str,
    variation_percent: float,
    *,
    overrides: dict | None = None,
    tracer: Tracer | None = None,
) -> SolverFn:
    """Build a configured solver callable by registry name.

    Parameters
    ----------
    name:
        One of ``"crossbar"`` (Solver 1), ``"large_scale"``
        (Solver 2), or ``"reference"`` (software PDIP; ignores
        variation).
    variation_percent:
        Process-variation level for the hardware model.
    overrides:
        Extra settings fields (e.g. ``{"adc_bits": None}``).
    tracer:
        Observability sink forwarded to the hardware solvers (the
        reference solver has no analog phases to trace).
    """
    overrides = dict(overrides or {})
    if name == "crossbar":
        settings = CrossbarSolverSettings(
            variation=variation_from_percent(variation_percent), **overrides
        )
        return lambda problem, rng: solve_crossbar(
            problem, settings, rng=rng, tracer=tracer
        )
    if name == "large_scale":
        settings = ScalableSolverSettings(
            variation=variation_from_percent(variation_percent), **overrides
        )
        return lambda problem, rng: solve_crossbar_large_scale(
            problem, settings, rng=rng, tracer=tracer
        )
    if name == "reference":
        settings = PDIPSettings(**overrides)
        return lambda problem, rng: solve_reference(problem, settings)
    raise ValueError(
        f"unknown solver {name!r}; expected one of {SOLVER_NAMES}"
    )


def settings_for(name: str, variation_percent: float, **overrides):
    """The settings object :func:`solver_for` would configure."""
    if name == "crossbar":
        return CrossbarSolverSettings(
            variation=variation_from_percent(variation_percent), **overrides
        )
    if name == "large_scale":
        return ScalableSolverSettings(
            variation=variation_from_percent(variation_percent), **overrides
        )
    if name == "reference":
        return PDIPSettings(**overrides)
    raise ValueError(
        f"unknown solver {name!r}; expected one of {SOLVER_NAMES}"
    )


def cell_seed(config: SweepConfig, m: int, variation: float, trial: int
              ) -> np.random.SeedSequence:
    """Deterministic per-trial seed for a sweep cell."""
    return np.random.SeedSequence(
        entropy=config.seed,
        spawn_key=(int(m), int(round(variation * 10)), int(trial)),
    )
