"""Table/figure regeneration harness (Figs. 5-7, Section 4.4 anchors).

Every sweep executes on the parallel, resumable engine
(:mod:`repro.experiments.engine`); pass ``workers=N`` /
``cache_path=...`` to any ``*_sweep`` function, or call
:func:`~repro.experiments.engine.run_sweep` directly for the full
:class:`~repro.experiments.engine.SweepRunResult` (failures, cache
hits, fingerprint).
"""

from repro.experiments.accuracy import (
    AccuracyRow,
    accuracy_sweep,
    render_accuracy,
)
from repro.experiments.engine import (
    CellFailure,
    CellKey,
    CellOutcome,
    SweepCache,
    SweepRunResult,
    SweepSpec,
    grid_keys,
    run_sweep,
    sweep_fingerprint,
)
from repro.experiments.energy import EnergyRow, energy_sweep, render_energy
from repro.experiments.infeasibility import (
    InfeasibilityRow,
    infeasibility_sweep,
    render_infeasibility,
)
from repro.experiments.latency import (
    LatencyRow,
    latency_sweep,
    render_latency,
)
from repro.experiments.parasitics import (
    ParasiticsRow,
    max_usable_tile,
    parasitics_sweep,
    render_parasitics,
)
from repro.experiments.reproduce import (
    ReproductionArtifact,
    reproduce_all,
)
from repro.experiments.runner import (
    SOLVER_NAMES,
    SweepConfig,
    paper_scale,
    settings_for,
    solver_for,
)

__all__ = [
    "SweepConfig",
    "paper_scale",
    "run_sweep",
    "sweep_fingerprint",
    "grid_keys",
    "SweepSpec",
    "SweepRunResult",
    "SweepCache",
    "CellKey",
    "CellOutcome",
    "CellFailure",
    "solver_for",
    "settings_for",
    "SOLVER_NAMES",
    "AccuracyRow",
    "accuracy_sweep",
    "render_accuracy",
    "LatencyRow",
    "latency_sweep",
    "render_latency",
    "EnergyRow",
    "energy_sweep",
    "render_energy",
    "InfeasibilityRow",
    "infeasibility_sweep",
    "render_infeasibility",
    "ParasiticsRow",
    "parasitics_sweep",
    "max_usable_tile",
    "render_parasitics",
    "ReproductionArtifact",
    "reproduce_all",
]
