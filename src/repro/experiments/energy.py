"""Fig. 7 reproduction: estimated energy consumption.

Same methodology as the latency experiment (measured counters priced
by the device + periphery model) with the CPU side converted to energy
at the paper-implied package power (~35 W).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.metrics import SampleStats
from repro.analysis.tables import render_table
from repro.core.result import SolveStatus
from repro.costmodel.cpu import (
    cpu_energy,
    linprog_latency,
    software_pdip_latency,
)
from repro.costmodel.energy import estimate_energy
from repro.experiments.runner import (
    SweepConfig,
    cell_seed,
    settings_for,
    solver_for,
)
from repro.workloads.random_lp import random_feasible_lp


@dataclasses.dataclass(frozen=True)
class EnergyRow:
    """One sweep cell of the Fig. 7 energy comparison (joules)."""

    solver: str
    constraints: int
    variation_percent: int
    solved: int
    trials: int
    crossbar: SampleStats
    linprog_j: float
    pdip_matlab_j: float

    @property
    def gain_vs_linprog(self) -> float:
        """linprog energy / mean crossbar energy (0 if unsolved)."""
        if self.crossbar.count == 0 or self.crossbar.mean == 0.0:
            return 0.0
        return self.linprog_j / self.crossbar.mean


def energy_sweep(
    solver: str = "crossbar",
    config: SweepConfig | None = None,
) -> list[EnergyRow]:
    """Run the Fig. 7 sweep and return one row per cell."""
    config = config if config is not None else SweepConfig()
    rows: list[EnergyRow] = []
    for m in config.sizes:
        for variation in config.variations:
            solve = solver_for(solver, variation)
            settings = settings_for(solver, variation)
            samples: list[float] = []
            solved = 0
            for trial in range(config.trials):
                seed = cell_seed(config, m, variation, trial)
                rng = np.random.default_rng(seed)
                problem = random_feasible_lp(m, rng=rng)
                result = solve(
                    problem, np.random.default_rng(seed.spawn(1)[0])
                )
                if result.status is SolveStatus.OPTIMAL:
                    solved += 1
                    breakdown = estimate_energy(result, settings.device)
                    samples.append(breakdown.total_j)
            rows.append(
                EnergyRow(
                    solver=solver,
                    constraints=m,
                    variation_percent=variation,
                    solved=solved,
                    trials=config.trials,
                    crossbar=SampleStats.from_samples(samples),
                    linprog_j=cpu_energy(linprog_latency(m)),
                    pdip_matlab_j=cpu_energy(software_pdip_latency(m)),
                )
            )
    return rows


def render_energy(rows: list[EnergyRow]) -> str:
    """Fig. 7-style text table (energies in joules)."""
    table = [
        [
            row.solver,
            row.constraints,
            row.variation_percent,
            f"{row.solved}/{row.trials}",
            row.crossbar.mean,
            row.linprog_j,
            row.pdip_matlab_j,
            row.gain_vs_linprog,
        ]
        for row in rows
    ]
    return render_table(
        [
            "solver",
            "constraints",
            "var%",
            "solved",
            "crossbar_J",
            "linprog_J",
            "pdip_matlab_J",
            "gain",
        ],
        table,
    )
