"""Fig. 7 reproduction: estimated energy consumption.

Same methodology as the latency experiment (measured counters priced
by the device + periphery model) with the CPU side converted to energy
at the paper-implied package power (~35 W).

Execution goes through the sweep engine
(:mod:`repro.experiments.engine`) via :func:`energy_trial` /
:func:`aggregate_energy`, registered as :data:`SPEC`.
"""

from __future__ import annotations

import dataclasses
import pathlib

import numpy as np

from repro.analysis.metrics import SampleStats
from repro.analysis.tables import render_table
from repro.core.result import SolveStatus
from repro.costmodel.cpu import (
    cpu_energy,
    linprog_latency,
    software_pdip_latency,
)
from repro.costmodel.energy import estimate_energy
from repro.experiments.engine import SweepSpec, run_sweep
from repro.experiments.runner import (
    SweepConfig,
    cell_seed,
    settings_for,
    solver_for,
)
from repro.obs.tracer import Tracer
from repro.workloads.random_lp import random_feasible_lp


@dataclasses.dataclass(frozen=True)
class EnergyRow:
    """One sweep cell of the Fig. 7 energy comparison (joules)."""

    solver: str
    constraints: int
    variation_percent: int
    solved: int
    trials: int
    crossbar: SampleStats
    linprog_j: float
    pdip_matlab_j: float

    @property
    def gain_vs_linprog(self) -> float:
        """linprog energy / mean crossbar energy (0 if unsolved)."""
        if self.crossbar.count == 0 or self.crossbar.mean == 0.0:
            return 0.0
        return self.linprog_j / self.crossbar.mean


def energy_trial(
    solver: str,
    size: int,
    variation: int,
    trial: int,
    config: SweepConfig,
    tracer: Tracer,
) -> dict:
    """One Fig. 7 trial: solve, then price the measured counters."""
    seed = cell_seed(config, size, variation, trial)
    rng = np.random.default_rng(seed)
    problem = random_feasible_lp(size, rng=rng)
    tracer.count("sweep.trials")
    solve = solver_for(solver, variation, tracer=tracer)
    result = solve(problem, np.random.default_rng(seed.spawn(1)[0]))
    payload: dict = {"solved": False}
    if result.status is SolveStatus.OPTIMAL:
        tracer.count("sweep.solved")
        settings = settings_for(solver, variation)
        breakdown = estimate_energy(result, settings.device)
        payload.update(solved=True, energy_j=breakdown.total_j)
    return payload


def aggregate_energy(
    solver: str,
    size: int,
    variation: int,
    config: SweepConfig,
    payloads: list[dict | None],
) -> EnergyRow:
    """Fold one cell's per-trial payloads (trial order) into a row."""
    solved = [p for p in payloads if p is not None and p.get("solved")]
    return EnergyRow(
        solver=solver,
        constraints=size,
        variation_percent=variation,
        solved=len(solved),
        trials=config.trials,
        crossbar=SampleStats.from_samples(
            [p["energy_j"] for p in solved]
        ),
        linprog_j=cpu_energy(linprog_latency(size)),
        pdip_matlab_j=cpu_energy(software_pdip_latency(size)),
    )


def energy_sweep(
    solver: str = "crossbar",
    config: SweepConfig | None = None,
    *,
    tracer: Tracer | None = None,
    workers: int = 1,
    cache_path: str | pathlib.Path | None = None,
) -> list[EnergyRow]:
    """Run the Fig. 7 sweep and return one row per cell.

    ``workers`` / ``cache_path`` enable parallel and resumable
    execution with bit-identical rows (see
    :mod:`repro.experiments.engine`).
    """
    return run_sweep(
        "energy",
        solver,
        config,
        tracer=tracer,
        workers=workers,
        cache_path=cache_path,
    ).rows


def render_energy(rows: list[EnergyRow]) -> str:
    """Fig. 7-style text table (energies in joules)."""
    table = [
        [
            row.solver,
            row.constraints,
            row.variation_percent,
            f"{row.solved}/{row.trials}",
            row.crossbar.mean,
            row.linprog_j,
            row.pdip_matlab_j,
            row.gain_vs_linprog,
        ]
        for row in rows
    ]
    return render_table(
        [
            "solver",
            "constraints",
            "var%",
            "solved",
            "crossbar_J",
            "linprog_J",
            "pdip_matlab_J",
            "gain",
        ],
        table,
    )


#: Engine registration: per-trial work + per-cell fold + renderer.
SPEC = SweepSpec(
    name="energy",
    trial=energy_trial,
    aggregate=aggregate_energy,
    render=render_energy,
)
