"""Wire-parasitics study: how large can one crossbar tile be?

Section 3.4 motivates the NoC with manufacturing and performance
limits on crossbar size.  The performance limit is IR drop: wire
segment resistance between crosspoints makes the realized read-out
deviate from the ideal Eqn. 5 as arrays grow.  This experiment sweeps
array size and wire resistance with the detailed nodal-analysis model
and reports the worst-case relative read-out error — the quantity that
bounds usable tile size for a given technology.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.tables import render_table
from repro.crossbar.circuit import DetailedCrossbarCircuit
from repro.devices.models import DeviceParameters, YAKOPCIC_NAECON14


@dataclasses.dataclass(frozen=True)
class ParasiticsRow:
    """One cell of the IR-drop sweep.

    Attributes
    ----------
    size:
        Array dimension (size x size).
    wire_resistance:
        Per-segment wire resistance, ohms.
    ir_drop_error:
        Worst-case relative deviation of the network solution from the
        ideal Eqn. 5 read-out, maximized over the sampled inputs.
    """

    size: int
    wire_resistance: float
    ir_drop_error: float


def parasitics_sweep(
    sizes: tuple[int, ...] = (8, 16, 32),
    wire_resistances: tuple[float, ...] = (0.5, 2.0, 5.0),
    *,
    params: DeviceParameters = YAKOPCIC_NAECON14,
    samples: int = 3,
    rng: np.random.Generator | None = None,
) -> list[ParasiticsRow]:
    """Run the IR-drop sweep.

    Conductances are drawn uniformly over the device window (the
    worst case for column currents); inputs over the read range.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    rows: list[ParasiticsRow] = []
    for size in sizes:
        conductances = rng.uniform(
            params.g_off, params.g_on, size=(size, size)
        )
        inputs = [
            rng.uniform(0.0, params.v_read, size=size)
            for _ in range(samples)
        ]
        for resistance in wire_resistances:
            circuit = DetailedCrossbarCircuit(
                conductances,
                g_sense=params.g_on,
                wire_resistance=resistance,
            )
            error = max(
                circuit.ir_drop_error(v_in) for v_in in inputs
            )
            rows.append(
                ParasiticsRow(
                    size=size,
                    wire_resistance=resistance,
                    ir_drop_error=error,
                )
            )
    return rows


def max_usable_tile(
    rows: list[ParasiticsRow], error_budget: float
) -> dict[float, int]:
    """Largest array size whose IR drop stays within the budget.

    Returns a mapping ``wire_resistance -> max size`` (0 when even the
    smallest sampled size exceeds the budget).
    """
    if error_budget <= 0:
        raise ValueError("error_budget must be positive")
    result: dict[float, int] = {}
    for row in rows:
        best = result.setdefault(row.wire_resistance, 0)
        if row.ir_drop_error <= error_budget and row.size > best:
            result[row.wire_resistance] = row.size
    return result


def render_parasitics(rows: list[ParasiticsRow]) -> str:
    """IR-drop sweep as a text table."""
    return render_table(
        ["size", "wire_ohm", "ir_drop_rel_err"],
        [
            [row.size, row.wire_resistance, row.ir_drop_error]
            for row in rows
        ],
    )
