"""Fig. 6 reproduction: estimated computation latency.

Follows the paper's estimation methodology exactly: run the simulated
solver to obtain measured iteration counts and analog-operation /
write counters, price them with the device + periphery cost model,
and compare against the anchored CPU models of Matlab ``linprog`` and
PDIP-in-Matlab (Fig. 6(a): Solver 1 vs both CPU curves; Fig. 6(b):
Solver 2 vs linprog).

Execution goes through the sweep engine
(:mod:`repro.experiments.engine`) via :func:`latency_trial` /
:func:`aggregate_latency`, registered as :data:`SPEC`.
"""

from __future__ import annotations

import dataclasses
import pathlib

import numpy as np

from repro.analysis.metrics import SampleStats
from repro.analysis.tables import render_table
from repro.core.result import SolveStatus
from repro.costmodel.cpu import linprog_latency, software_pdip_latency
from repro.costmodel.latency import estimate_latency
from repro.experiments.engine import SweepSpec, run_sweep
from repro.experiments.runner import (
    SweepConfig,
    cell_seed,
    settings_for,
    solver_for,
)
from repro.obs.tracer import Tracer
from repro.workloads.random_lp import random_feasible_lp


@dataclasses.dataclass(frozen=True)
class LatencyRow:
    """One sweep cell of the Fig. 6 latency comparison.

    Latencies in seconds; ``speedup_vs_linprog`` is the headline ratio
    the paper reports (26x-113x at m=1024).
    """

    solver: str
    constraints: int
    variation_percent: int
    solved: int
    trials: int
    crossbar: SampleStats
    linprog_s: float
    pdip_matlab_s: float

    @property
    def speedup_vs_linprog(self) -> float:
        """linprog latency / mean crossbar latency (0 if unsolved)."""
        if self.crossbar.count == 0 or self.crossbar.mean == 0.0:
            return 0.0
        return self.linprog_s / self.crossbar.mean


def latency_trial(
    solver: str,
    size: int,
    variation: int,
    trial: int,
    config: SweepConfig,
    tracer: Tracer,
) -> dict:
    """One Fig. 6 trial: solve, then price the measured counters."""
    seed = cell_seed(config, size, variation, trial)
    rng = np.random.default_rng(seed)
    problem = random_feasible_lp(size, rng=rng)
    tracer.count("sweep.trials")
    solve = solver_for(solver, variation, tracer=tracer)
    result = solve(problem, np.random.default_rng(seed.spawn(1)[0]))
    payload: dict = {"solved": False}
    if result.status is SolveStatus.OPTIMAL:
        tracer.count("sweep.solved")
        settings = settings_for(solver, variation)
        breakdown = estimate_latency(result, settings.device)
        payload.update(solved=True, latency_s=breakdown.total_s)
    return payload


def aggregate_latency(
    solver: str,
    size: int,
    variation: int,
    config: SweepConfig,
    payloads: list[dict | None],
) -> LatencyRow:
    """Fold one cell's per-trial payloads (trial order) into a row."""
    solved = [p for p in payloads if p is not None and p.get("solved")]
    return LatencyRow(
        solver=solver,
        constraints=size,
        variation_percent=variation,
        solved=len(solved),
        trials=config.trials,
        crossbar=SampleStats.from_samples(
            [p["latency_s"] for p in solved]
        ),
        linprog_s=linprog_latency(size),
        pdip_matlab_s=software_pdip_latency(size),
    )


def latency_sweep(
    solver: str = "crossbar",
    config: SweepConfig | None = None,
    *,
    tracer: Tracer | None = None,
    workers: int = 1,
    cache_path: str | pathlib.Path | None = None,
) -> list[LatencyRow]:
    """Run the Fig. 6 sweep and return one row per cell.

    ``workers`` / ``cache_path`` enable parallel and resumable
    execution with bit-identical rows (see
    :mod:`repro.experiments.engine`).
    """
    return run_sweep(
        "latency",
        solver,
        config,
        tracer=tracer,
        workers=workers,
        cache_path=cache_path,
    ).rows


def render_latency(rows: list[LatencyRow]) -> str:
    """Fig. 6-style text table (latencies in milliseconds)."""
    table = [
        [
            row.solver,
            row.constraints,
            row.variation_percent,
            f"{row.solved}/{row.trials}",
            row.crossbar.mean * 1e3,
            row.linprog_s * 1e3,
            row.pdip_matlab_s * 1e3,
            row.speedup_vs_linprog,
        ]
        for row in rows
    ]
    return render_table(
        [
            "solver",
            "constraints",
            "var%",
            "solved",
            "crossbar_ms",
            "linprog_ms",
            "pdip_matlab_ms",
            "speedup",
        ],
        table,
    )


#: Engine registration: per-trial work + per-cell fold + renderer.
SPEC = SweepSpec(
    name="latency",
    trial=latency_trial,
    aggregate=aggregate_latency,
    render=render_latency,
)
