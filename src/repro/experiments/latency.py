"""Fig. 6 reproduction: estimated computation latency.

Follows the paper's estimation methodology exactly: run the simulated
solver to obtain measured iteration counts and analog-operation /
write counters, price them with the device + periphery cost model,
and compare against the anchored CPU models of Matlab ``linprog`` and
PDIP-in-Matlab (Fig. 6(a): Solver 1 vs both CPU curves; Fig. 6(b):
Solver 2 vs linprog).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.metrics import SampleStats
from repro.analysis.tables import render_table
from repro.core.result import SolveStatus
from repro.costmodel.cpu import linprog_latency, software_pdip_latency
from repro.costmodel.latency import estimate_latency
from repro.experiments.runner import (
    SweepConfig,
    cell_seed,
    settings_for,
    solver_for,
)
from repro.workloads.random_lp import random_feasible_lp


@dataclasses.dataclass(frozen=True)
class LatencyRow:
    """One sweep cell of the Fig. 6 latency comparison.

    Latencies in seconds; ``speedup_vs_linprog`` is the headline ratio
    the paper reports (26x-113x at m=1024).
    """

    solver: str
    constraints: int
    variation_percent: int
    solved: int
    trials: int
    crossbar: SampleStats
    linprog_s: float
    pdip_matlab_s: float

    @property
    def speedup_vs_linprog(self) -> float:
        """linprog latency / mean crossbar latency (0 if unsolved)."""
        if self.crossbar.count == 0 or self.crossbar.mean == 0.0:
            return 0.0
        return self.linprog_s / self.crossbar.mean


def latency_sweep(
    solver: str = "crossbar",
    config: SweepConfig | None = None,
) -> list[LatencyRow]:
    """Run the Fig. 6 sweep and return one row per cell."""
    config = config if config is not None else SweepConfig()
    rows: list[LatencyRow] = []
    for m in config.sizes:
        for variation in config.variations:
            solve = solver_for(solver, variation)
            settings = settings_for(solver, variation)
            samples: list[float] = []
            solved = 0
            for trial in range(config.trials):
                seed = cell_seed(config, m, variation, trial)
                rng = np.random.default_rng(seed)
                problem = random_feasible_lp(m, rng=rng)
                result = solve(
                    problem, np.random.default_rng(seed.spawn(1)[0])
                )
                if result.status is SolveStatus.OPTIMAL:
                    solved += 1
                    breakdown = estimate_latency(result, settings.device)
                    samples.append(breakdown.total_s)
            rows.append(
                LatencyRow(
                    solver=solver,
                    constraints=m,
                    variation_percent=variation,
                    solved=solved,
                    trials=config.trials,
                    crossbar=SampleStats.from_samples(samples),
                    linprog_s=linprog_latency(m),
                    pdip_matlab_s=software_pdip_latency(m),
                )
            )
    return rows


def render_latency(rows: list[LatencyRow]) -> str:
    """Fig. 6-style text table (latencies in milliseconds)."""
    table = [
        [
            row.solver,
            row.constraints,
            row.variation_percent,
            f"{row.solved}/{row.trials}",
            row.crossbar.mean * 1e3,
            row.linprog_s * 1e3,
            row.pdip_matlab_s * 1e3,
            row.speedup_vs_linprog,
        ]
        for row in rows
    ]
    return render_table(
        [
            "solver",
            "constraints",
            "var%",
            "solved",
            "crossbar_ms",
            "linprog_ms",
            "pdip_matlab_ms",
            "speedup",
        ],
        table,
    )
