"""One-call reproduction driver: run every experiment, write artifacts.

``reproduce_all(output_dir)`` runs the full figure set (accuracy,
latency, energy, infeasibility for both solvers, plus the parasitics
study) on a chosen grid and writes, per experiment, a rendered text
table plus machine-readable CSV/JSON — everything needed to re-plot
the paper's Section 4 from this repository's data.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from repro.analysis.export import write_csv, write_json
from repro.experiments.accuracy import accuracy_sweep, render_accuracy
from repro.experiments.energy import energy_sweep, render_energy
from repro.experiments.infeasibility import (
    infeasibility_sweep,
    render_infeasibility,
)
from repro.experiments.latency import latency_sweep, render_latency
from repro.experiments.parasitics import (
    parasitics_sweep,
    render_parasitics,
)
from repro.experiments.runner import SweepConfig


@dataclasses.dataclass(frozen=True)
class ReproductionArtifact:
    """One experiment's written outputs.

    Attributes
    ----------
    name:
        Experiment identifier (e.g. ``fig5a``).
    table_path / csv_path / json_path:
        Files written under the output directory.
    rows:
        The in-memory result rows.
    """

    name: str
    table_path: Path
    csv_path: Path
    json_path: Path
    rows: list


_EXPERIMENTS = (
    ("fig5a", accuracy_sweep, render_accuracy, "crossbar"),
    ("fig5b", accuracy_sweep, render_accuracy, "large_scale"),
    ("fig6a", latency_sweep, render_latency, "crossbar"),
    ("fig6b", latency_sweep, render_latency, "large_scale"),
    ("fig7a", energy_sweep, render_energy, "crossbar"),
    ("fig7b", energy_sweep, render_energy, "large_scale"),
    (
        "infeasibility_s1",
        infeasibility_sweep,
        render_infeasibility,
        "crossbar",
    ),
    (
        "infeasibility_s2",
        infeasibility_sweep,
        render_infeasibility,
        "large_scale",
    ),
)


def reproduce_all(
    output_dir: str | Path,
    config: SweepConfig | None = None,
    *,
    experiments: tuple[str, ...] | None = None,
    workers: int = 1,
) -> list[ReproductionArtifact]:
    """Run the experiment set and write artifacts under ``output_dir``.

    Parameters
    ----------
    output_dir:
        Directory for the artifacts (created if missing).
    config:
        Sweep grid; defaults to the scaled-down
        :class:`~repro.experiments.runner.SweepConfig`.
    experiments:
        Optional subset of experiment names (plus ``"parasitics"``).
    workers:
        Process-pool width for each sweep (the engine guarantees
        identical rows at any worker count).

    Returns
    -------
    list[ReproductionArtifact]
        One record per experiment, in run order.
    """
    config = config if config is not None else SweepConfig()
    output = Path(output_dir)
    output.mkdir(parents=True, exist_ok=True)
    selected = set(experiments) if experiments is not None else None

    artifacts: list[ReproductionArtifact] = []
    for name, sweep, render, solver in _EXPERIMENTS:
        if selected is not None and name not in selected:
            continue
        rows = sweep(solver, config, workers=workers)
        artifacts.append(_write(output, name, rows, render(rows)))
    if selected is None or "parasitics" in selected:
        rows = parasitics_sweep()
        artifacts.append(
            _write(output, "parasitics", rows, render_parasitics(rows))
        )
    return artifacts


def _write(
    output: Path, name: str, rows: list, table: str
) -> ReproductionArtifact:
    table_path = output / f"{name}.txt"
    table_path.write_text(table + "\n")
    csv_path = write_csv(rows, output / f"{name}.csv")
    json_path = write_json(rows, output / f"{name}.json")
    return ReproductionArtifact(
        name=name,
        table_path=table_path,
        csv_path=csv_path,
        json_path=json_path,
        rows=rows,
    )
