"""Parallel, resumable sweep execution engine.

The paper's whole evaluation (Section 4.2) is an embarrassingly
parallel grid — constraint counts x variation levels x independent
random trials — and every cell's randomness comes from the
deterministic :func:`~repro.experiments.runner.cell_seed` derivation,
never from shared RNG state.  This module exploits that: it fans
``(size, variation, trial)`` cells out to a process pool and
guarantees **bit-identical experiment rows at any worker count**
(including ``workers=1`` vs. N), because

- each cell re-derives its seeds from the
  :class:`~repro.experiments.runner.SweepConfig` alone;
- per-trial payloads are plain JSON scalars, merged back in grid
  order, so floating-point accumulation order never depends on
  scheduling;
- aggregation into row dataclasses happens once, in the parent.

Three further production features:

- **failure isolation** — a cell that raises records a
  :class:`CellFailure` (a ``FailureReason``-style entry in the PR 1
  reliability vocabulary) instead of killing the sweep;
- **resume** — with ``cache_path`` set, every finished cell is
  appended to a JSONL cache keyed by a config/grid/seed fingerprint;
  re-running the same sweep skips completed cells, so an interrupted
  paper-scale run picks up where it left off;
- **trace merge** — workers run each cell under a local
  :class:`~repro.obs.tracer.RecordingTracer` inside a ``sweep_cell``
  span (attributes: solver, size, variation, trial, ``worker`` pid);
  the parent absorbs the streams via
  :func:`~repro.obs.merge.absorb_events`, so PR 2 sinks and replay
  keep working on parallel sweeps.

Experiments register a :class:`SweepSpec` (per-trial function +
row aggregator + renderer); the four paper sweeps live in
:mod:`repro.experiments.accuracy` / ``latency`` / ``energy`` /
``infeasibility``.  See DESIGN.md §10.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import hashlib
import importlib
import json
import os
import pathlib
from typing import Callable, Iterable

from repro.experiments.runner import SweepConfig
from repro.obs.clock import monotonic
from repro.obs.merge import absorb_events
from repro.obs.tracer import NOOP, RecordingTracer, Tracer

#: Bumped whenever the cell payload schema or seed derivation changes;
#: part of the cache fingerprint, so stale caches are rejected.
ENGINE_VERSION = 1

#: Cache file format tag (mirrors obs.sinks.TRACE_FORMAT).
CACHE_FORMAT = "repro-sweep-cache"

#: ``FailureReason``-style token for a cell whose trial function
#: raised (the sweep-level analogue of the solver enum's values).
CELL_CRASHED = "cell_crashed"

#: Registry: experiment name -> "module:attr" of its SweepSpec.
SPEC_REFS = {
    "accuracy": "repro.experiments.accuracy:SPEC",
    "latency": "repro.experiments.latency:SPEC",
    "energy": "repro.experiments.energy:SPEC",
    "infeasibility": "repro.experiments.infeasibility:SPEC",
}


@dataclasses.dataclass(frozen=True)
class SweepSpec:
    """One experiment's pluggable pieces.

    Attributes
    ----------
    name:
        Experiment identifier (``"accuracy"`` ...), part of the cache
        fingerprint.
    trial:
        ``trial(solver, size, variation, trial, config, tracer) ->
        dict`` — runs ONE random trial and returns a JSON-serializable
        payload of scalars.  Must derive all randomness from
        :func:`~repro.experiments.runner.cell_seed`.
    aggregate:
        ``aggregate(solver, size, variation, config, payloads) ->
        row`` — folds the cell's per-trial payloads (in trial order;
        ``None`` where a trial crashed) into one row dataclass.
    render:
        ``render(rows) -> str`` — the experiment's text table.
    trial_batch:
        Optional ``trial_batch(solver, keys, config, tracer) ->
        list[dict]`` — runs a same-``(size, variation)`` group of
        trials together (e.g. on one batched crossbar stack) and
        returns the payloads in key order.  MUST be bit-identical to
        calling ``trial`` per key: same seed derivation, same payload
        scalars — the engine's determinism contract (and the cell
        cache) does not distinguish the two paths.  Used only when the
        run opts in via ``batch_trials`` and tracing is off; a raising
        batch falls back to the per-trial path.
    """

    name: str
    trial: Callable
    aggregate: Callable
    render: Callable
    trial_batch: Callable | None = None


@dataclasses.dataclass(frozen=True)
class CellKey:
    """Coordinates of one sweep cell: a single random trial."""

    size: int
    variation: int
    trial: int


@dataclasses.dataclass(frozen=True)
class CellFailure:
    """Structured record of a crashed cell (reliability vocabulary).

    Mirrors :class:`~repro.core.result.FailureReason` +
    :class:`~repro.reliability.telemetry.AttemptRecord` in spirit: a
    machine-readable reason token plus enough detail to reproduce
    (the cell key pins the exact seeds via ``cell_seed``).
    """

    failure_reason: str
    error_type: str
    message: str

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CellFailure":
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class CellOutcome:
    """One executed (or cache-restored) cell.

    ``payload`` is the trial function's return value (``None`` when
    the cell crashed — then ``failure`` is set).  ``events`` is the
    worker tracer's serialized stream (empty when tracing was off).
    """

    key: CellKey
    payload: dict | None
    failure: CellFailure | None
    worker: int
    from_cache: bool = False
    events: tuple = ()

    def to_dict(self) -> dict:
        return {
            "kind": "cell",
            "size": self.key.size,
            "variation": self.key.variation,
            "trial": self.key.trial,
            "worker": self.worker,
            "payload": self.payload,
            "failure": (
                None if self.failure is None else self.failure.to_dict()
            ),
            "events": list(self.events),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CellOutcome":
        return cls(
            key=CellKey(
                size=data["size"],
                variation=data["variation"],
                trial=data["trial"],
            ),
            payload=data["payload"],
            failure=(
                None
                if data["failure"] is None
                else CellFailure.from_dict(data["failure"])
            ),
            worker=data["worker"],
            from_cache=True,
            events=tuple(data.get("events") or ()),
        )


@dataclasses.dataclass(frozen=True)
class SweepRunResult:
    """Everything a sweep run produced.

    Attributes
    ----------
    rows:
        Aggregated experiment rows in grid order — identical for any
        worker count (the determinism contract).
    outcomes:
        Every cell in grid order (executed and cache-restored).
    failures:
        The crashed subset of ``outcomes``.
    executed / skipped:
        Cells run this invocation vs. restored from the cache.
    fingerprint:
        The config/grid/seed hash keying the cache.
    workers:
        Worker count actually used.
    elapsed_seconds:
        Wall clock of the whole run on the shared monotonic clock.
    """

    rows: list
    outcomes: tuple
    failures: tuple
    executed: int
    skipped: int
    fingerprint: str
    workers: int
    elapsed_seconds: float


def resolve_spec(experiment: str) -> SweepSpec:
    """Look up a :class:`SweepSpec` by registry name or ``module:attr``."""
    ref = SPEC_REFS.get(experiment, experiment)
    if ":" not in ref:
        raise ValueError(
            f"unknown experiment {experiment!r}; expected one of "
            f"{sorted(SPEC_REFS)} or a 'module:attr' spec reference"
        )
    module_name, attr = ref.split(":", 1)
    spec = getattr(importlib.import_module(module_name), attr)
    if not isinstance(spec, SweepSpec):
        raise TypeError(f"{ref} is not a SweepSpec")
    return spec


def sweep_fingerprint(
    experiment: str, solver: str, config: SweepConfig
) -> str:
    """Hash keying a cell cache: engine + experiment + solver + grid.

    Any change to the grid, seed, solver, or payload schema (via
    :data:`ENGINE_VERSION`) produces a different fingerprint, so a
    cache can never silently feed rows into the wrong sweep.
    """
    identity = {
        "engine": ENGINE_VERSION,
        "experiment": experiment,
        "solver": solver,
        "sizes": list(config.sizes),
        "variations": list(config.variations),
        "trials": config.trials,
        "seed": config.seed,
    }
    digest = hashlib.sha256(
        json.dumps(identity, sort_keys=True).encode()
    )
    return digest.hexdigest()[:16]


def grid_keys(config: SweepConfig) -> list[CellKey]:
    """All cell keys in canonical grid order (the aggregation order)."""
    return [
        CellKey(size=m, variation=v, trial=t)
        for m in config.sizes
        for v in config.variations
        for t in range(config.trials)
    ]


class SweepCache:
    """Append-only JSONL cell cache with a fingerprint header.

    Line 1 is a header carrying the sweep fingerprint; every following
    line is one :class:`CellOutcome`.  Opening an existing cache with
    a different fingerprint raises ``ValueError`` (a cache is bound to
    exactly one sweep identity).  Crashed cells are recorded too —
    for post-mortems — but are *not* treated as completed, so a
    resumed run retries them.
    """

    def __init__(
        self,
        path: str | pathlib.Path,
        fingerprint: str,
        meta: dict | None = None,
    ) -> None:
        self.path = pathlib.Path(path)
        self.fingerprint = fingerprint
        self.completed: dict[CellKey, CellOutcome] = {}
        if self.path.exists() and self.path.stat().st_size > 0:
            self._load()
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            header = {
                "kind": "header",
                "format": CACHE_FORMAT,
                "version": ENGINE_VERSION,
                "fingerprint": fingerprint,
                **(meta or {}),
            }
            self.path.write_text(json.dumps(header) + "\n")

    def _load(self) -> None:
        lines = [
            line
            for line in self.path.read_text().splitlines()
            if line.strip()
        ]
        header = json.loads(lines[0])
        if header.get("format") != CACHE_FORMAT:
            raise ValueError(
                f"{self.path} is not a {CACHE_FORMAT} file"
            )
        if header.get("fingerprint") != self.fingerprint:
            raise ValueError(
                f"cache {self.path} was produced by a different sweep "
                f"(fingerprint {header.get('fingerprint')!r} != "
                f"{self.fingerprint!r}); pass a fresh cache path or "
                "re-run with the original grid/solver/seed"
            )
        for line in lines[1:]:
            outcome = CellOutcome.from_dict(json.loads(line))
            if outcome.failure is None:
                self.completed[outcome.key] = outcome
            else:
                # A later success may follow an earlier failure; only
                # drop the key if this failure is the latest word.
                self.completed.pop(outcome.key, None)

    def append(self, outcome: CellOutcome) -> None:
        with self.path.open("a") as handle:
            handle.write(
                json.dumps(outcome.to_dict(), sort_keys=True) + "\n"
            )
        if outcome.failure is None:
            self.completed[outcome.key] = outcome


def _run_cell_group(
    spec: SweepSpec,
    solver: str,
    config: SweepConfig,
    keys: list[CellKey],
    worker: int,
) -> list[dict] | None:
    """Run one same-``(size, variation)`` group through ``trial_batch``.

    Returns the outcome dicts in key order, or ``None`` if the batch
    path declined (raised) — the caller then retries per trial, so a
    batching bug degrades to the serial path instead of crashing the
    cells.
    """
    try:
        payloads = spec.trial_batch(solver, keys, config, NOOP)
    except Exception:  # noqa: BLE001 - fall back to per-trial isolation
        return None
    if len(payloads) != len(keys):
        return None
    return [
        CellOutcome(
            key=key, payload=payload, failure=None, worker=worker
        ).to_dict()
        for key, payload in zip(keys, payloads)
    ]


def _run_cells(
    spec_ref: str,
    solver: str,
    config: SweepConfig,
    keys: list[CellKey],
    record: bool,
    batch: bool = False,
) -> list[dict]:
    """Worker entry point: run a chunk of cells, isolate failures.

    Module-level (picklable) so a :class:`~concurrent.futures.
    ProcessPoolExecutor` can ship it; also the ``workers=1`` inline
    path, so serial and parallel runs share one code path.

    With ``batch`` set (and tracing off), same-``(size, variation)``
    runs of the chunk go through the spec's ``trial_batch`` — one
    batched solve for the whole group — with per-trial execution as
    the fallback.  Payloads are bit-identical either way.
    """
    spec = resolve_spec(spec_ref)
    worker = os.getpid()
    if batch and spec.trial_batch is not None and not record:
        outcomes = []
        groups: list[list[CellKey]] = []
        for key in keys:
            if groups and (
                groups[-1][0].size == key.size
                and groups[-1][0].variation == key.variation
            ):
                groups[-1].append(key)
            else:
                groups.append([key])
        for group in groups:
            batched = (
                _run_cell_group(spec, solver, config, group, worker)
                if len(group) > 1
                else None
            )
            if batched is not None:
                outcomes.extend(batched)
            else:
                outcomes.extend(
                    _run_cells(spec_ref, solver, config, group, record)
                )
        return outcomes
    outcomes = []
    for key in keys:
        tracer: Tracer = RecordingTracer() if record else NOOP
        try:
            with tracer.span(
                "sweep_cell",
                solver=solver,
                size=key.size,
                variation=key.variation,
                trial=key.trial,
                worker=worker,
            ):
                payload = spec.trial(
                    solver,
                    key.size,
                    key.variation,
                    key.trial,
                    config,
                    tracer,
                )
            failure = None
        except Exception as exc:  # noqa: BLE001 - isolation by design
            payload = None
            failure = CellFailure(
                failure_reason=CELL_CRASHED,
                error_type=type(exc).__name__,
                message=str(exc),
            )
        events = (
            tuple(tracer.event_dicts())
            if isinstance(tracer, RecordingTracer)
            else ()
        )
        outcomes.append(
            CellOutcome(
                key=key,
                payload=payload,
                failure=failure,
                worker=worker,
                events=events,
            ).to_dict()
        )
    return outcomes


def _chunk(items: list, chunks: int) -> list[list]:
    """Split ``items`` into at most ``chunks`` contiguous batches."""
    if not items:
        return []
    size = max(1, -(-len(items) // chunks))
    return [items[i : i + size] for i in range(0, len(items), size)]


def run_sweep(
    experiment: str,
    solver: str = "crossbar",
    config: SweepConfig | None = None,
    *,
    workers: int = 1,
    tracer: Tracer | None = None,
    cache_path: str | pathlib.Path | None = None,
    progress: Callable[[CellOutcome], None] | None = None,
    batch_trials: bool = False,
) -> SweepRunResult:
    """Execute a sweep over the full grid; the engine's entry point.

    Parameters
    ----------
    experiment:
        Registry name (``"accuracy"``, ``"latency"``, ``"energy"``,
        ``"infeasibility"``) or a ``"module:attr"`` spec reference.
    solver:
        Solver registry name forwarded to the trial function.
    config:
        The sweep grid (default: the scaled-down
        :class:`~repro.experiments.runner.SweepConfig`).
    workers:
        Process count.  ``1`` runs inline (no pool); any value
        produces bit-identical rows.
    tracer:
        Parent tracer.  When recording, each cell runs under a worker-
        local tracer whose stream is merged back here (``sweep_cell``
        spans carry a ``worker`` attribute).
    cache_path:
        JSONL cell cache.  Created if missing; if present, completed
        cells are restored instead of re-run (crashed cells retry).
    progress:
        Optional callback invoked with every fresh
        :class:`CellOutcome` as it lands (cache hits excluded).
    batch_trials:
        Opt into the spec's ``trial_batch`` fast path: same-cell runs
        of trials execute as one batched solve (stacked crossbars)
        instead of a python loop.  Payloads — and therefore rows and
        the cell cache — are bit-identical to the per-trial path;
        specs without a ``trial_batch``, recording tracers, and batch
        failures all degrade to per-trial execution transparently.

    Returns
    -------
    SweepRunResult
        Rows in grid order plus execution/caching/failure metadata.
    """
    spec = resolve_spec(experiment)
    config = config if config is not None else SweepConfig()
    tracer = tracer if tracer is not None else NOOP
    record = tracer.enabled
    started = monotonic()

    fingerprint = sweep_fingerprint(spec.name, solver, config)
    cache = None
    if cache_path is not None:
        cache = SweepCache(
            cache_path,
            fingerprint,
            meta={
                "experiment": spec.name,
                "solver": solver,
                "sizes": list(config.sizes),
                "variations": list(config.variations),
                "trials": config.trials,
                "seed": config.seed,
            },
        )

    keys = grid_keys(config)
    done: dict[CellKey, CellOutcome] = (
        dict(cache.completed) if cache else {}
    )
    pending = [key for key in keys if key not in done]
    skipped = len(keys) - len(pending)

    spec_ref = SPEC_REFS.get(experiment, experiment)
    if workers <= 1 or len(pending) <= 1:
        if batch_trials and pending:
            # One inline chunk so same-cell trial runs can group.
            batches: Iterable[list[dict]] = (
                _run_cells(spec_ref, solver, config, chunk, record, True)
                for chunk in [pending]
            )
        else:
            batches = (
                _run_cells(spec_ref, solver, config, [key], record)
                for key in pending
            )
        used_workers = 1
    else:
        chunks = _chunk(pending, workers * 4)
        used_workers = min(workers, len(chunks))
        executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=used_workers
        )
        batches = executor.map(
            _run_cells,
            [spec_ref] * len(chunks),
            [solver] * len(chunks),
            [config] * len(chunks),
            chunks,
            [record] * len(chunks),
            [batch_trials] * len(chunks),
        )

    executed = 0
    try:
        for batch in batches:
            for data in batch:
                outcome = CellOutcome.from_dict(data)
                outcome = dataclasses.replace(outcome, from_cache=False)
                done[outcome.key] = outcome
                executed += 1
                if cache is not None:
                    cache.append(outcome)
                if progress is not None:
                    progress(outcome)
    finally:
        if workers > 1 and len(pending) > 1:
            executor.shutdown()

    # Merge traces and aggregate rows in canonical grid order, so the
    # result is independent of completion order and worker count.
    outcomes = tuple(done[key] for key in keys)
    for outcome in outcomes:
        if outcome.events:
            absorb_events(tracer, outcome.events)
    rows = []
    for m in config.sizes:
        for v in config.variations:
            payloads = [
                done[CellKey(size=m, variation=v, trial=t)].payload
                for t in range(config.trials)
            ]
            rows.append(spec.aggregate(solver, m, v, config, payloads))
    failures = tuple(o for o in outcomes if o.failure is not None)
    return SweepRunResult(
        rows=rows,
        outcomes=outcomes,
        failures=failures,
        executed=executed,
        skipped=skipped,
        fingerprint=fingerprint,
        workers=used_workers,
        elapsed_seconds=monotonic() - started,
    )
