"""A batched fleet of same-shape crossbar arrays as one 3-D tensor.

:class:`CrossbarStack` holds K same-shape crossbars as ``(K, n_rows,
n_cols)`` nominal/actual conductance tensors and evaluates the analog
primitives over the whole fleet in single batched tensor calls: the
Eqn. 5 read-out is one batched matmul, the current-balance solve one
batched ``linalg.solve`` — dispatched through the pluggable backend
layer (:mod:`repro.backend`; numpy default, optional torch).

Correctness contract (gated by ``tests/property``):

- with the numpy backend, every member is **bitwise identical** to a
  serial :class:`~repro.crossbar.array.CrossbarArray` driven through
  the same sequence of operations with the same generator — outputs
  *and* write counters;
- variation draws follow the per-member stream rule
  (:meth:`~repro.devices.variation.VariationModel.perturb_stack`):
  member ``k`` consumes exactly the variates its serial twin would,
  from its own generator, so cross-member batching never reorders any
  member's stream;
- write costs are planned per member
  (:func:`~repro.crossbar.programming.plan_write_stack`), including
  the per-member half-select energy factors of differential writes;
- column-sum denominators use the canonical per-column reduction of
  :func:`~repro.crossbar.array.canonical_colsums`, so the stack's
  dirty-column cache refresh matches the serial cache bitwise.
"""

from __future__ import annotations

import numpy as np

from repro.backend import Backend, get_backend
from repro.crossbar.array import run_write_verify
from repro.crossbar.programming import (
    WriteReport,
    plan_write_stack,
)
from repro.devices.models import HP_TIO2, DeviceParameters
from repro.devices.variation import NoVariation, VariationModel
from repro.exceptions import CrossbarSolveError, MappingError
from repro.obs.tracer import NOOP, Tracer
from repro.reliability.verify import WriteVerifyPolicy


class CrossbarStack:
    """K same-shape memristor crossbars evaluated as one tensor.

    Parameters
    ----------
    n_members:
        Number of arrays in the stack (K).
    n_rows, n_cols:
        Per-member array dimensions.
    params, variation, g_sense, write_verify, tracer:
        As for :class:`~repro.crossbar.array.CrossbarArray`, shared by
        every member.
    rngs:
        One generator *per member* (the determinism anchor: member
        ``k``'s variation stream is ``rngs[k]``'s).  Defaults to fresh
        independent ``default_rng()`` instances.
    backend:
        A :class:`~repro.backend.Backend`, a backend name, or ``None``
        for the config/env default (see :func:`repro.backend.get_backend`).
    """

    def __init__(
        self,
        n_members: int,
        n_rows: int,
        n_cols: int,
        *,
        params: DeviceParameters = HP_TIO2,
        variation: VariationModel | None = None,
        g_sense: float | None = None,
        rngs: list[np.random.Generator] | None = None,
        write_verify: WriteVerifyPolicy | None = None,
        tracer: Tracer | None = None,
        backend: Backend | str | None = None,
    ) -> None:
        if n_members < 1:
            raise ValueError("stack needs at least one member")
        if n_rows < 1 or n_cols < 1:
            raise ValueError("array dimensions must be positive")
        self.n_members = int(n_members)
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.params = params
        self.variation = variation if variation is not None else NoVariation()
        self.g_sense = float(g_sense) if g_sense is not None else params.g_on
        if self.g_sense <= 0:
            raise ValueError("g_sense must be positive")
        if rngs is None:
            rngs = [np.random.default_rng() for _ in range(self.n_members)]
        if len(rngs) != self.n_members:
            raise ValueError(
                f"need one generator per member: {self.n_members} members, "
                f"{len(rngs)} generators"
            )
        self.rngs = list(rngs)
        self.write_verify = write_verify
        self.tracer = tracer if tracer is not None else NOOP
        self.backend = (
            backend if isinstance(backend, Backend) else get_backend(backend)
        )

        shape = (self.n_members, self.n_rows, self.n_cols)
        self._nominal = np.zeros(shape)
        self._actual = self.variation.perturb_stack(self._nominal, self.rngs)
        self.write_logs: list[list[WriteReport]] = [
            [] for _ in range(self.n_members)
        ]
        self._total_reports = [
            WriteReport(0, 0, 0.0, 0.0) for _ in range(self.n_members)
        ]
        # Canonical per-column sums (see array.canonical_colsums); the
        # dirty mask is the union over members — a clean member's
        # column recomputes to the identical value, so one mask keeps
        # the refresh a single batched reduction.
        self._colsum_nominal = self._batched_colsums(self._nominal)
        self._colsum_actual = self._batched_colsums(self._actual)
        self._dirty_cols = np.zeros(self.n_cols, dtype=bool)

    # -- column-sum caches -------------------------------------------------

    @staticmethod
    def _batched_colsums(stack: np.ndarray) -> np.ndarray:
        """Canonical column sums for every member: ``(K, n_cols)``."""
        return np.ascontiguousarray(stack.transpose(0, 2, 1)).sum(axis=2)

    def _mark_dirty(self, cols: np.ndarray | None = None) -> None:
        if cols is None:
            self._dirty_cols[:] = True
        else:
            self._dirty_cols[cols] = True

    def _refresh_colsums(self) -> None:
        if not self._dirty_cols.any():
            return
        if self._dirty_cols.all():
            self._colsum_nominal = self._batched_colsums(self._nominal)
            self._colsum_actual = self._batched_colsums(self._actual)
        else:
            cols = np.flatnonzero(self._dirty_cols)
            self._colsum_nominal[:, cols] = self._nominal.transpose(0, 2, 1)[
                :, cols
            ].sum(axis=2)
            self._colsum_actual[:, cols] = self._actual.transpose(0, 2, 1)[
                :, cols
            ].sum(axis=2)
        self._dirty_cols[:] = False

    # -- member bookkeeping -------------------------------------------------

    def _member_indices(self, members) -> np.ndarray:
        """Normalize a member selector to sorted integer indices."""
        if members is None:
            return np.arange(self.n_members)
        members = np.asarray(members)
        if members.dtype == bool:
            if members.shape != (self.n_members,):
                raise ValueError(
                    f"member mask must have shape ({self.n_members},), "
                    f"got {members.shape}"
                )
            return np.flatnonzero(members)
        members = members.astype(int, copy=False).ravel()
        if members.size and (
            members.min() < 0 or members.max() >= self.n_members
        ):
            raise IndexError("member index out of range")
        return np.unique(members)

    def _log_write(self, member: int, report: WriteReport) -> None:
        self.write_logs[member].append(report)
        self._total_reports[member] = self._total_reports[member] + report
        tracer = self.tracer
        if not tracer.enabled:
            return
        tracer.count("crossbar.writes")
        tracer.count("crossbar.cells_written", report.cells_written)
        tracer.count("crossbar.write_pulses", report.pulses)
        tracer.count("crossbar.write_latency_s", report.latency_s)
        tracer.count("crossbar.write_energy_j", report.energy_j)
        tracer.count("crossbar.verify_reads", report.verify_reads)
        tracer.count("crossbar.verify_repulsed", report.repulsed_cells)
        tracer.count("crossbar.verify_unverified", report.unverified_cells)

    def _validate_range(self, conductances: np.ndarray, member: int) -> None:
        if conductances.size == 0:
            return
        if not np.all(np.isfinite(conductances)):
            raise MappingError(
                f"member {member}: conductance targets must be finite"
            )
        if conductances.min() < 0.0:
            raise MappingError(
                f"member {member}: target {conductances.min():.3e} is "
                "negative; memristance cannot be negative"
            )
        if conductances.max() > self.params.g_on * (1 + 1e-12):
            raise MappingError(
                f"member {member}: target {conductances.max():.3e} above "
                f"device g_on {self.params.g_on:.3e}"
            )

    def _verify_member(
        self,
        member: int,
        rows: np.ndarray,
        cols: np.ndarray,
        report: WriteReport,
    ) -> WriteReport:
        policy = self.write_verify
        if policy is None or rows.size == 0:
            return report
        return run_write_verify(
            self._nominal[member],
            self._actual[member],
            rows,
            cols,
            report,
            policy=policy,
            params=self.params,
            variation=self.variation,
            rng=self.rngs[member],
        )

    # -- programming -------------------------------------------------------

    def program(self, conductances: np.ndarray) -> list[WriteReport]:
        """Program every member to its full-grid targets.

        ``conductances`` is ``(K, n_rows, n_cols)`` or a single
        ``(n_rows, n_cols)`` grid broadcast to every member.  The write
        plan is one vectorized pass; variation redraws per member, in
        member order, from each member's own generator.
        """
        conductances = np.asarray(conductances, dtype=float)
        if conductances.shape == (self.n_rows, self.n_cols):
            conductances = np.broadcast_to(
                conductances,
                (self.n_members, self.n_rows, self.n_cols),
            ).copy()
        if conductances.shape != (
            self.n_members,
            self.n_rows,
            self.n_cols,
        ):
            raise MappingError(
                f"conductance shape {conductances.shape} does not match "
                f"stack ({self.n_members}, {self.n_rows}, {self.n_cols})"
            )
        for member in range(self.n_members):
            self._validate_range(conductances[member], member)
        reports = plan_write_stack(self._nominal, conductances, self.params)
        self._nominal = conductances.copy()
        self._actual = self.variation.perturb_stack(self._nominal, self.rngs)
        self._mark_dirty()
        grid_rows, grid_cols = np.meshgrid(
            np.arange(self.n_rows), np.arange(self.n_cols), indexing="ij"
        )
        flat_rows, flat_cols = grid_rows.ravel(), grid_cols.ravel()
        for member in range(self.n_members):
            reports[member] = self._verify_member(
                member, flat_rows, flat_cols, reports[member]
            )
            self._log_write(member, reports[member])
        return reports

    def program_cells(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        conductances: np.ndarray,
        *,
        skip_unchanged: bool = False,
        members=None,
    ) -> list[WriteReport | None]:
        """Differential cell writes across the fleet in one pass.

        ``rows``/``cols`` name the same cells on every selected
        member; ``conductances`` is ``(c,)`` (shared targets) or
        ``(K, c)`` (per-member targets; rows of unselected members are
        ignored).  With ``skip_unchanged`` each member drops the cells
        already holding their target — the per-member diff masks (and
        the resulting half-select energy factors) match what a serial
        array would compute.

        Returns a K-long list: a :class:`WriteReport` per selected
        member, ``None`` for members the mask excluded (their write
        logs see no event, exactly like an untouched serial array).
        """
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        conductances = np.asarray(conductances, dtype=float)
        if rows.shape != cols.shape or rows.ndim != 1:
            raise ValueError("rows and cols must be matching 1-D arrays")
        selected = self._member_indices(members)
        results: list[WriteReport | None] = [None] * self.n_members
        if conductances.ndim == 1:
            if conductances.shape != rows.shape:
                raise ValueError("rows, cols, conductances must align")
            targets = np.broadcast_to(
                conductances, (selected.size, rows.size)
            )
        elif conductances.shape == (self.n_members, rows.size):
            targets = conductances[selected]
        elif conductances.shape == (selected.size, rows.size):
            # One row per *selected* member (mask-aligned callers).
            targets = conductances
        else:
            raise ValueError(
                f"conductances must be ({rows.size},), "
                f"({self.n_members}, {rows.size}) or "
                f"({selected.size}, {rows.size}), got {conductances.shape}"
            )
        if rows.size == 0:
            for member in selected:
                report = WriteReport(0, 0, 0.0, 0.0)
                self.write_logs[member].append(report)
                results[member] = report
            return results
        if rows.min() < 0 or rows.max() >= self.n_rows:
            raise IndexError("row index out of range")
        if cols.min() < 0 or cols.max() >= self.n_cols:
            raise IndexError("column index out of range")

        current = self._nominal[selected[:, None], rows[None, :], cols[None, :]]
        if skip_unchanged:
            changed = targets != current
        else:
            changed = np.ones_like(current, dtype=bool)
        changed_counts = changed.sum(axis=1)

        # Members whose whole write set was skipped get the serial
        # path's zero report (logged, but not a physical event).
        for pos, member in enumerate(selected):
            if skip_unchanged and changed_counts[pos] == 0:
                report = WriteReport(0, 0, 0.0, 0.0)
                self.write_logs[member].append(report)
                results[member] = report
        active = (
            np.flatnonzero(changed_counts > 0)
            if skip_unchanged
            else np.arange(selected.size)
        )
        if active.size == 0:
            return results

        for pos in active:
            self._validate_range(
                targets[pos][changed[pos]], int(selected[pos])
            )

        # Vectorized per-member write plan.  Unchanged cells keep their
        # old value (zero swing), which plans exactly like the serial
        # path's changed-subset write; the half-select factor is the
        # per-member changed count (the serial (1, c_k) reshape).
        planned_new = np.where(changed[active], targets[active], current[active])
        reports = plan_write_stack(
            current[active][:, None, :],
            planned_new[:, None, :],
            self.params,
            half_select_counts=changed_counts[active] - 1,
        )

        touched_cols: list[np.ndarray] = []
        for plan_pos, pos in enumerate(active):
            member = int(selected[pos])
            mask = changed[pos]
            m_rows, m_cols = rows[mask], cols[mask]
            m_targets = targets[pos][mask]
            self._nominal[member, m_rows, m_cols] = m_targets
            perturbed = self.variation.perturb(
                m_targets.reshape(1, -1), self.rngs[member]
            ).ravel()
            self._actual[member, m_rows, m_cols] = perturbed
            report = self._verify_member(
                member, m_rows, m_cols, reports[plan_pos]
            )
            touched_cols.append(m_cols)
            self._log_write(member, report)
            results[member] = report
        if touched_cols:
            self._mark_dirty(np.concatenate(touched_cols))
        return results

    def redraw(self, members=None) -> list[WriteReport | None]:
        """Reprogram every active cell of the selected members.

        The recovery ladder's *reprogram* rung, fleet-wide: nominal
        targets are unchanged; each selected member redraws fresh
        variation for its nonzero cells from its own generator.
        """
        selected = self._member_indices(members)
        results: list[WriteReport | None] = [None] * self.n_members
        touched_cols: list[np.ndarray] = []
        for member in selected:
            member = int(member)
            m_rows, m_cols = np.nonzero(self._nominal[member])
            report = WriteReport(0, 0, 0.0, 0.0)
            if m_rows.size:
                targets = self._nominal[member, m_rows, m_cols]
                self._actual[member, m_rows, m_cols] = self.variation.perturb(
                    targets.reshape(1, -1), self.rngs[member]
                ).ravel()
                report = self._verify_member(member, m_rows, m_cols, report)
                touched_cols.append(m_cols)
            self._log_write(member, report)
            results[member] = report
        if touched_cols:
            self._mark_dirty(np.concatenate(touched_cols))
        return results

    # -- analog primitives ---------------------------------------------------

    def multiply(
        self, v_in: np.ndarray, *, members=None
    ) -> np.ndarray:
        """Batched Eqn. 5 read-out: ``(K, n_cols)`` bit-line voltages.

        ``v_in`` is ``(K, n_rows)`` (per-member drives) or ``(n_rows,)``
        broadcast to the fleet.  One backend matvec evaluates every
        member; with the numpy backend each row is bitwise what the
        serial array returns.  With ``members`` set, ``v_in`` is
        ``(len(selected), n_rows)`` and only those members' arrays are
        driven (each selected row still bitwise-serial) — the lockstep
        solver's straggler path.
        """
        selected = self._member_indices(members)
        v_in = np.asarray(v_in, dtype=float)
        if v_in.shape == (self.n_rows,):
            v_in = np.ascontiguousarray(
                np.broadcast_to(v_in, (selected.size, self.n_rows))
            )
        if v_in.shape != (selected.size, self.n_rows):
            raise ValueError(
                f"expected input of shape ({selected.size}, "
                f"{self.n_rows},), got {v_in.shape}"
            )
        stack = (
            self._actual
            if selected.size == self.n_members
            else self._actual[selected]
        )
        currents = self.backend.matvec_t(stack, v_in)
        self._refresh_colsums()
        denominators = self.g_sense + self._colsum_actual[selected]
        return currents / denominators

    def nominal_denominators(self, members=None) -> np.ndarray:
        """``g_s + column sums`` of programmed conductances, ``(K, n_cols)``.

        With ``members`` set, only the selected members' rows, in
        index order.
        """
        self._refresh_colsums()
        if members is None:
            return self.g_sense + self._colsum_nominal
        selected = self._member_indices(members)
        return self.g_sense + self._colsum_nominal[selected]

    def try_solve(
        self, v_out: np.ndarray, *, members=None
    ) -> tuple[np.ndarray, list[CrossbarSolveError | None]]:
        """Batched analog solve with per-member failure isolation.

        Solves every member's ``G^T V_I = g_s V_O`` in one backend
        call.  When the batched kernel rejects the stack (any singular
        member), the members are re-solved individually so one bad
        draw cannot poison the fleet: the returned error list carries
        a :class:`CrossbarSolveError` per failed member and ``None``
        per healthy one; failed members' solution rows are zeros.
        With ``members`` set, ``v_out`` is ``(len(selected), n)`` and
        both returns are selected-length, in index order.
        """
        if self.n_rows != self.n_cols:
            raise CrossbarSolveError(
                f"solving requires square arrays, got "
                f"{self.n_rows}x{self.n_cols}"
            )
        selected = self._member_indices(members)
        v_out = np.asarray(v_out, dtype=float)
        if v_out.shape == (self.n_cols,):
            v_out = np.ascontiguousarray(
                np.broadcast_to(v_out, (selected.size, self.n_cols))
            )
        if v_out.shape != (selected.size, self.n_cols):
            raise ValueError(
                f"expected target of shape ({selected.size}, "
                f"{self.n_cols},), got {v_out.shape}"
            )
        stack = (
            self._actual
            if selected.size == self.n_members
            else self._actual[selected]
        )
        rhs = self.g_sense * v_out
        errors: list[CrossbarSolveError | None] = [None] * selected.size
        try:
            solutions = self.backend.solve_t(stack, rhs)
        except np.linalg.LinAlgError:
            # Per-member fallback: a 2-D solve is bitwise what the
            # batched gufunc computes for that slice, so isolation
            # costs nothing in reproducibility.
            solutions = np.zeros((selected.size, self.n_rows))
            for index, member in enumerate(selected):
                try:
                    solutions[index] = np.linalg.solve(
                        self._actual[member].T, rhs[index]
                    )
                except np.linalg.LinAlgError as exc:
                    errors[index] = CrossbarSolveError(
                        "perturbed conductance matrix is singular"
                    )
                    errors[index].__cause__ = exc
        finite = np.all(np.isfinite(solutions), axis=1)
        for index in range(selected.size):
            if errors[index] is None and not finite[index]:
                errors[index] = CrossbarSolveError(
                    "analog solve produced non-finite rails"
                )
                solutions[index] = 0.0
        return solutions, errors

    def solve(self, v_out: np.ndarray) -> np.ndarray:
        """Batched analog solve; raises if *any* member fails.

        The fleet-wide strict variant of :meth:`try_solve` — use that
        for per-member isolation.
        """
        solutions, errors = self.try_solve(v_out)
        for error in errors:
            if error is not None:
                raise error
        return solutions

    # -- bookkeeping -----------------------------------------------------------

    @property
    def nominal_stack(self) -> np.ndarray:
        """Programmed targets ``(K, n_rows, n_cols)``; copy."""
        return self._nominal.copy()

    @property
    def actual_stack(self) -> np.ndarray:
        """Variation-perturbed conductances ``(K, n_rows, n_cols)``; copy."""
        return self._actual.copy()

    @property
    def total_write_reports(self) -> list[WriteReport]:
        """Per-member lifetime write costs (running totals)."""
        return list(self._total_reports)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CrossbarStack({self.n_members}x{self.n_rows}x{self.n_cols}, "
            f"device={self.params.name!r}, backend={self.backend.name!r})"
        )
