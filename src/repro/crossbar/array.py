"""The memristor crossbar array simulator.

A :class:`CrossbarArray` holds a grid of programmed conductances and
evaluates the two analog primitives of Section 2.3 of the paper:

**Multiplication** (Eqn. 5) — input voltages on the word-lines, output
voltages sensed across the ``R_s`` resistors on the bit-lines:

.. math::

   V_{O,j} = \\frac{\\sum_i g_{i,j} V_{I,i}}{g_s + \\sum_k g_{k,j}}
   \\qquad\\Longleftrightarrow\\qquad
   V_O = D \\, G^T \\, V_I

**Solving** — output voltages forced on the bit-line sense nodes; the
current balance :math:`\\sum_i V_{I,i}\\, g_{i,j} = g_s V_{O,j}` on
every bit-line pins the word-line voltages to the solution of

.. math::

   G^T V_I = g_s V_O .

Both primitives are evaluated with the *actual* conductances — the
programmed values perturbed by the process-variation model (Eqn. 18),
freshly drawn at every (re)programming, exactly as the paper notes that
"process variation differs from each time of writing".
"""

from __future__ import annotations

import numpy as np

from repro.crossbar.mapping import ConductanceMapping
from repro.crossbar.programming import WriteReport, plan_diff, plan_write
from repro.devices.models import HP_TIO2, DeviceParameters
from repro.devices.variation import NoVariation, VariationModel
from repro.exceptions import CrossbarSolveError, MappingError
from repro.obs.tracer import NOOP, Tracer
from repro.reliability.verify import WriteVerifyPolicy


def canonical_colsums(matrix: np.ndarray) -> np.ndarray:
    """Column sums in the engine's canonical reduction order.

    Each column is reduced as one *contiguous* length-``n_rows``
    vector (a row of the transposed copy).  NumPy's pairwise summation
    then blocks per column independently of every other column, which
    gives the property the serial ``sum(axis=0)`` lacks: recomputing a
    *subset* of columns yields bitwise the same values as the full
    reduction.  That is what makes dirty-column cache refresh and the
    batched stack's member-wise denominators exactly reproducible.
    """
    return np.ascontiguousarray(matrix.T).sum(axis=1)


def canonical_colsums_subset(
    matrix: np.ndarray, cols: np.ndarray
) -> np.ndarray:
    """Canonical column sums for selected columns only.

    ``matrix.T[cols]`` fancy-indexes the transposed view into a fresh
    C-contiguous ``(len(cols), n_rows)`` block, so each selected
    column reduces exactly as it does in :func:`canonical_colsums`.
    """
    return matrix.T[cols].sum(axis=1)


def run_write_verify(
    nominal: np.ndarray,
    actual: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    report: WriteReport,
    *,
    policy: WriteVerifyPolicy,
    params: DeviceParameters,
    variation: VariationModel,
    rng: np.random.Generator,
) -> WriteReport:
    """Closed-loop write–verify over the cells just written.

    Shared by the serial array and the batched stack (which runs it
    per member with that member's generator, preserving the
    per-member draw-order contract).  Reads back the realized
    conductances in ``actual``, re-pulses cells whose deviation from
    the ``nominal`` targets exceeds the policy tolerance (``g_off`` is
    the reference for off-state targets), and folds the extra
    pulses/latency/energy plus the verify counters into the returned
    :class:`WriteReport`.  ``actual`` is updated in place.
    """
    targets = nominal[rows, cols]
    reference = np.maximum(np.abs(targets), params.g_off)
    reads = 0
    repulsed = np.zeros(rows.size, dtype=bool)
    bad = np.zeros(rows.size, dtype=bool)
    for _ in range(policy.max_rounds):
        realized = actual[rows, cols]
        reads += rows.size
        bad = np.abs(realized - targets) > policy.tolerance * reference
        if not bad.any():
            break
        repulsed |= bad
        bad_rows = rows[bad]
        bad_cols = cols[bad]
        pulse_cost = plan_write(
            realized[bad].reshape(1, -1),
            targets[bad].reshape(1, -1),
            params,
        )
        report = report + WriteReport(
            cells_written=0,
            pulses=pulse_cost.pulses,
            latency_s=pulse_cost.latency_s,
            energy_j=pulse_cost.energy_j,
        )
        actual[bad_rows, bad_cols] = variation.reperturb(
            targets[bad].reshape(1, -1),
            actual[bad_rows, bad_cols].reshape(1, -1),
            rng,
        ).ravel()
    else:
        # Budget exhausted: take a final read to count survivors.
        realized = actual[rows, cols]
        reads += rows.size
        bad = np.abs(realized - targets) > policy.tolerance * reference
    return report + WriteReport(
        cells_written=0,
        pulses=0,
        latency_s=0.0,
        energy_j=0.0,
        verify_reads=reads,
        repulsed_cells=int(np.count_nonzero(repulsed)),
        unverified_cells=int(np.count_nonzero(bad)),
    )


class CrossbarArray:
    """An N_rows x N_cols memristor crossbar.

    Parameters
    ----------
    n_rows, n_cols:
        Physical array dimensions (word-lines x bit-lines).
    params:
        Device preset; defaults to the HP TiO2 device.
    variation:
        Process-variation model applied at every programming event.
    g_sense:
        Conductance ``g_s`` of the bit-line sense resistors.  Defaults
        to the device's ``g_on``.
    rng:
        Random generator for variation draws.  Defaults to a fresh
        ``default_rng()``; pass an explicit generator in experiments.
    write_verify:
        Closed-loop programming policy: after every programming event
        the written cells are read back and out-of-tolerance cells are
        re-pulsed up to the policy's round budget.  ``None`` (default)
        keeps the paper's open-loop programming.
    tracer:
        Observability hook (:mod:`repro.obs`): every programming event
        bumps the ``crossbar.*`` counters (cells written, pulses,
        verify outcomes, physical write cost).  Defaults to the
        zero-overhead no-op tracer.
    """

    def __init__(
        self,
        n_rows: int,
        n_cols: int,
        *,
        params: DeviceParameters = HP_TIO2,
        variation: VariationModel | None = None,
        g_sense: float | None = None,
        rng: np.random.Generator | None = None,
        write_verify: WriteVerifyPolicy | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if n_rows < 1 or n_cols < 1:
            raise ValueError("array dimensions must be positive")
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.params = params
        self.variation = variation if variation is not None else NoVariation()
        self.g_sense = float(g_sense) if g_sense is not None else params.g_on
        if self.g_sense <= 0:
            raise ValueError("g_sense must be positive")
        self.rng = rng if rng is not None else np.random.default_rng()
        self.write_verify = write_verify
        self.tracer = tracer if tracer is not None else NOOP

        # Nominal (programmed) and actual (variation-perturbed) states.
        # A blank array has every cell isolated (1T1R off state).
        self._nominal = np.zeros((n_rows, n_cols))
        self._actual = self.variation.perturb(self._nominal, self.rng)
        self.write_log: list[WriteReport] = []
        self._total_report = WriteReport(0, 0, 0.0, 0.0)
        # Column-sum caches for the multiply denominators, kept in the
        # *canonical* reduction order (see :func:`canonical_colsums`):
        # each column reduces as one contiguous vector, so refreshing
        # only the columns a write touched is bitwise identical to a
        # full recompute.  A write marks exactly its columns dirty and
        # the next read recomputes only those — O(dirty columns), not
        # O(n·m), between the O(N) differential writes of the
        # iteration hot path.
        self._colsum_nominal = canonical_colsums(self._nominal)
        self._colsum_actual = canonical_colsums(self._actual)
        self._dirty_cols = np.zeros(n_cols, dtype=bool)

    # -- column-sum caches -------------------------------------------------

    def _mark_dirty(self, cols: np.ndarray | None = None) -> None:
        """Invalidate column-sum cache entries after a write.

        ``cols`` limits the invalidation to the columns the write
        touched; ``None`` (full-grid events) marks every column.
        """
        if cols is None:
            self._dirty_cols[:] = True
        else:
            self._dirty_cols[cols] = True

    def _refresh_colsums(self) -> None:
        if not self._dirty_cols.any():
            return
        if self._dirty_cols.all():
            self._colsum_nominal = canonical_colsums(self._nominal)
            self._colsum_actual = canonical_colsums(self._actual)
        else:
            cols = np.flatnonzero(self._dirty_cols)
            self._colsum_nominal[cols] = canonical_colsums_subset(
                self._nominal, cols
            )
            self._colsum_actual[cols] = canonical_colsums_subset(
                self._actual, cols
            )
        self._dirty_cols[:] = False

    # -- programming -------------------------------------------------------

    @property
    def nominal_conductances(self) -> np.ndarray:
        """Programmed (target) conductances; copy."""
        return self._nominal.copy()

    @property
    def actual_conductances(self) -> np.ndarray:
        """Variation-perturbed conductances the analog circuit sees; copy."""
        return self._actual.copy()

    def program(self, conductances: np.ndarray) -> WriteReport:
        """Program the full array to the given conductance targets.

        A fresh process-variation draw perturbs the entire array (every
        written cell re-rolls its deviation).  Returns the write-cost
        report for the cells that actually changed.
        """
        conductances = np.asarray(conductances, dtype=float)
        if conductances.shape != (self.n_rows, self.n_cols):
            raise MappingError(
                f"conductance shape {conductances.shape} does not match "
                f"array ({self.n_rows}, {self.n_cols})"
            )
        self._validate_range(conductances)
        report = plan_write(self._nominal, conductances, self.params)
        self._nominal = conductances.copy()
        self._actual = self.variation.perturb(self._nominal, self.rng)
        self._mark_dirty()
        grid_rows, grid_cols = np.meshgrid(
            np.arange(self.n_rows), np.arange(self.n_cols), indexing="ij"
        )
        report = self._verify_written(
            grid_rows.ravel(), grid_cols.ravel(), report
        )
        self._log_write(report)
        return report

    def program_mapping(self, mapping: ConductanceMapping) -> WriteReport:
        """Program from a :class:`ConductanceMapping` (see mapping.py)."""
        return self.program(mapping.conductances)

    def program_cells(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        conductances: np.ndarray,
        *,
        skip_unchanged: bool = False,
    ) -> WriteReport:
        """Selectively reprogram individual cells (O(#cells) write).

        This is the primitive behind the paper's O(N) iteration cost:
        only the changed diagonal blocks are rewritten.  Variation is
        re-drawn for the written cells only; untouched cells keep their
        previous physical deviation.

        With ``skip_unchanged=True`` the write set is first filtered
        through :func:`~repro.crossbar.programming.plan_diff`: cells
        whose target already matches the programmed value are dropped
        before any physical modeling — no variation redraw, no
        write–verify read-back, and range validation covers only the
        cells that move.  A skipped cell keeps its existing deviation
        (no write event happened to it).
        """
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        conductances = np.asarray(conductances, dtype=float)
        if not (rows.shape == cols.shape == conductances.shape):
            raise ValueError("rows, cols, conductances must align")
        if rows.size == 0:
            report = WriteReport(0, 0, 0.0, 0.0)
            self.write_log.append(report)
            return report  # nothing written: no events to record
        if rows.min() < 0 or rows.max() >= self.n_rows:
            raise IndexError("row index out of range")
        if cols.min() < 0 or cols.max() >= self.n_cols:
            raise IndexError("column index out of range")
        if skip_unchanged:
            diff = plan_diff(self._nominal, rows, cols, conductances)
            if diff.empty:
                report = WriteReport(0, 0, 0.0, 0.0)
                self.write_log.append(report)
                return report  # every target already programmed
            rows, cols, conductances = diff.rows, diff.cols, diff.targets
        self._validate_range(conductances)

        old_cells = self._nominal[rows, cols]
        report = plan_write(
            old_cells.reshape(1, -1),
            conductances.reshape(1, -1),
            self.params,
        )
        self._nominal[rows, cols] = conductances

        perturbed = self.variation.perturb(
            conductances.reshape(1, -1), self.rng
        ).ravel()
        self._actual[rows, cols] = perturbed
        report = self._verify_written(rows, cols, report)
        self._mark_dirty(cols)
        self._log_write(report)
        return report

    def redraw(self) -> WriteReport:
        """Reprogram every active cell to its current target.

        The recovery ladder's *reprogram* rung: the nominal targets are
        unchanged, but every cell holding a nonzero conductance is
        rewritten so process variation is freshly drawn (the paper's
        Section 4.5 "double checking scheme" retries under a new
        physical realization).  Cost scales with the number of active
        cells, not the grid — on the sparse augmented Newton matrices
        that is O(nnz), and the solver re-enters the differential
        update path immediately afterwards.
        """
        rows, cols = np.nonzero(self._nominal)
        report = WriteReport(0, 0, 0.0, 0.0)
        if rows.size:
            targets = self._nominal[rows, cols]
            self._actual[rows, cols] = self.variation.perturb(
                targets.reshape(1, -1), self.rng
            ).ravel()
            report = self._verify_written(rows, cols, report)
            self._mark_dirty(cols)
        self._log_write(report)
        return report

    def _log_write(self, report: WriteReport) -> None:
        self.write_log.append(report)
        self._total_report = self._total_report + report
        self._record_write(report)

    def _record_write(self, report: WriteReport) -> None:
        """Emit one programming event's totals to the tracer.

        Guarded on ``tracer.enabled`` so the open-loop hot path (an
        O(N) cell rewrite per PDIP iteration) pays one attribute check
        when tracing is off.
        """
        tracer = self.tracer
        if not tracer.enabled:
            return
        tracer.count("crossbar.writes")
        tracer.count("crossbar.cells_written", report.cells_written)
        tracer.count("crossbar.write_pulses", report.pulses)
        tracer.count("crossbar.write_latency_s", report.latency_s)
        tracer.count("crossbar.write_energy_j", report.energy_j)
        tracer.count("crossbar.verify_reads", report.verify_reads)
        tracer.count("crossbar.verify_repulsed", report.repulsed_cells)
        tracer.count("crossbar.verify_unverified", report.unverified_cells)

    def _verify_written(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        report: WriteReport,
    ) -> WriteReport:
        """Write–verify loop over the cells just written.

        Reads back the realized conductances, re-pulses cells whose
        deviation from target exceeds the policy tolerance (relative
        to the target, with ``g_off`` as the reference for off-state
        targets), and folds the extra pulses/latency/energy plus the
        verify counters into the returned :class:`WriteReport`.
        Re-pulsing redraws soft variation but cannot move persistent
        deviations (see :meth:`VariationModel.reperturb`); cells still
        out of tolerance when the round budget runs out are counted as
        ``unverified_cells``.
        """
        policy = self.write_verify
        if policy is None or rows.size == 0:
            return report
        return run_write_verify(
            self._nominal,
            self._actual,
            rows,
            cols,
            report,
            policy=policy,
            params=self.params,
            variation=self.variation,
            rng=self.rng,
        )

    def _validate_range(
        self,
        conductances: np.ndarray,
        mask: np.ndarray | slice | None = None,
    ) -> None:
        # Targets are either exactly 0 (cell isolated, 1T1R off state)
        # or inside the device window [g_off, g_on].  ``mask`` restricts
        # validation to a subset (the cells a differential write will
        # actually touch); initial full-grid programming passes None.
        if mask is not None:
            conductances = conductances[mask]
        if conductances.size == 0:
            return
        if not np.all(np.isfinite(conductances)):
            raise MappingError("conductance targets must be finite")
        if conductances.min() < 0.0:
            raise MappingError(
                f"target {conductances.min():.3e} is negative; "
                "memristance cannot be negative"
            )
        if conductances.max() > self.params.g_on * (1 + 1e-12):
            raise MappingError(
                f"target {conductances.max():.3e} above device g_on "
                f"{self.params.g_on:.3e}"
            )

    # -- fault injection -------------------------------------------------------

    def inject_stuck_off(
        self,
        row_fraction: float = 1.0,
        *,
        rng: np.random.Generator | None = None,
    ) -> int:
        """Chaos hook: force a fraction of word-lines to the OFF state.

        Zeroes the *actual* conductances of the chosen rows while
        leaving the nominal (programmed) targets untouched — the model
        of a failed row driver or a block of cells stuck open.  Because
        the nominal state still claims the old values, the digital
        decode keeps using stale denominators and a health probe
        (:mod:`repro.reliability.probe`) sees an unbounded mismatch and
        rejects the array.  The serving layer uses this to exercise its
        drain/reschedule path.  Returns the number of cells forced off.
        """
        if not 0.0 < row_fraction <= 1.0:
            raise ValueError(
                f"row_fraction must lie in (0, 1], got {row_fraction}"
            )
        count = max(1, int(round(self.n_rows * row_fraction)))
        if count >= self.n_rows:
            rows = np.arange(self.n_rows)
        else:
            rng = rng if rng is not None else self.rng
            rows = rng.choice(self.n_rows, size=count, replace=False)
        self._actual[rows, :] = 0.0
        self._mark_dirty()
        return int(rows.size * self.n_cols)

    def apply_drift(
        self,
        magnitude: float,
        *,
        rng: np.random.Generator | None = None,
    ) -> None:
        """Chaos hook: multiplicative conductance drift on every cell.

        Scales each *actual* conductance by ``1 + U(-magnitude,
        +magnitude)`` (clipped to ``[0, g_on]``) while leaving the
        nominal targets untouched — the model of an aged array or a
        temperature step between calibrations.  Unlike
        :meth:`inject_stuck_off` the perturbation is proportional, so
        small magnitudes degrade accuracy without tripping the health
        probe outright: the brownout-degradation path's natural test
        load.  The next (re)program overwrites the drift.
        """
        if magnitude <= 0:
            raise ValueError(f"magnitude must be positive, got {magnitude}")
        rng = rng if rng is not None else self.rng
        factors = 1.0 + rng.uniform(
            -magnitude, magnitude, size=self._actual.shape
        )
        np.clip(
            self._actual * factors, 0.0, self.params.g_on, out=self._actual
        )
        self._mark_dirty()

    # -- analog primitives ---------------------------------------------------

    def multiply(self, v_in: np.ndarray) -> np.ndarray:
        """Analog multiply: bit-line voltages for word-line inputs.

        Implements Eqn. 5 with the actual (perturbed) conductances:
        ``V_O = D G^T V_I`` with ``d_j = 1/(g_s + sum_k g_{k,j})``.
        """
        v_in = np.asarray(v_in, dtype=float)
        if v_in.shape != (self.n_rows,):
            raise ValueError(
                f"expected input of shape ({self.n_rows},), got {v_in.shape}"
            )
        currents = self._actual.T @ v_in
        self._refresh_colsums()
        denominators = self.g_sense + self._colsum_actual
        return currents / denominators

    def nominal_denominators(self) -> np.ndarray:
        """``g_s + column sums`` of the *programmed* conductances.

        The digital controller knows the values it programmed, so the
        decode stage divides by these nominal denominators; deviation
        of the actual denominators is part of the variation error.
        """
        self._refresh_colsums()
        return self.g_sense + self._colsum_nominal

    def solve(self, v_out: np.ndarray) -> np.ndarray:
        """Analog solve: word-line voltages realizing bit-line targets.

        Solves ``G^T V_I = g_s V_O`` with the actual conductances.  The
        array must be square.

        Raises
        ------
        CrossbarSolveError
            If the array is not square or the perturbed conductance
            matrix is singular (the failure mode of Section 4.3).
        """
        if self.n_rows != self.n_cols:
            raise CrossbarSolveError(
                f"solving requires a square array, got "
                f"{self.n_rows}x{self.n_cols}"
            )
        v_out = np.asarray(v_out, dtype=float)
        if v_out.shape != (self.n_cols,):
            raise ValueError(
                f"expected target of shape ({self.n_cols},), got "
                f"{v_out.shape}"
            )
        system = self._actual.T
        try:
            v_in = np.linalg.solve(system, self.g_sense * v_out)
        except np.linalg.LinAlgError as exc:
            raise CrossbarSolveError(
                "perturbed conductance matrix is singular"
            ) from exc
        if not np.all(np.isfinite(v_in)):
            raise CrossbarSolveError("analog solve produced non-finite rails")
        return v_in

    # -- bookkeeping -----------------------------------------------------------

    @property
    def total_write_report(self) -> WriteReport:
        """Accumulated write costs over the array's lifetime.

        Maintained as a running total at each write so frequent
        baselining (the serving layer snapshots it around every job)
        stays O(1) instead of replaying the whole ``write_log``.
        """
        return self._total_report

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CrossbarArray({self.n_rows}x{self.n_cols}, "
            f"device={self.params.name!r}, variation={self.variation!r})"
        )
