"""Matrix <-> conductance mapping.

A memristor can only realize conductances in ``[g_off, g_on]``; matrix
coefficients must therefore be *non-negative* and scaled into that
window before programming.  This module implements the "fast and
simple" proportional mapping the paper adopts from Hu et al. (CISDA
2013, cited as [8]):

.. math::

   g_{i,j} = \\frac{g_{max}}{a_{max}} \\, A_{j,i}

(``a_max`` is the largest coefficient, ``g_max`` the largest realizable
conductance; note the transpose — the crossbar realizes ``G^T = s A``).
Entries that would fall below the device's OFF conductance are clamped
to ``g_off``; the resulting leakage is part of the hardware error
budget and may optionally be compensated at read-out (a standard
dummy-row technique) by subtracting the known floor contribution.

The :class:`ConductanceMapping` records every scale factor so results
read from the crossbar can be decoded back into problem units.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.devices.models import DeviceParameters
from repro.exceptions import MappingError


@dataclasses.dataclass(frozen=True)
class ConductanceMapping:
    """Result of mapping a coefficient matrix onto device conductances.

    Attributes
    ----------
    conductances:
        The programmed conductance matrix ``G`` with ``g[i, j]``
        connecting word-line *i* to bit-line *j*; shape (n_rows,
        n_cols) = ``matrix.T.shape``.
    scale:
        The proportionality factor(s) ``s`` such that ``G^T ≈ s * A``
        (exactly, before floor clamping).  A scalar for the global fast
        mapping; a vector of per-output-row scales (one per bit-line)
        for the row-equilibrated mapping, where each equation row of
        the coefficient matrix is scaled independently and compensated
        at the converters.
    floor:
        The conductance floor ``g_off`` entries were clamped to.
    floored:
        Boolean mask over ``G`` marking entries that sit at the floor
        because their coefficient was too small to represent.
    a_max:
        The largest coefficient of the mapped matrix.
    """

    conductances: np.ndarray
    scale: float | np.ndarray
    floor: float
    floored: np.ndarray
    a_max: float

    @property
    def shape(self) -> tuple[int, int]:
        return self.conductances.shape

    @property
    def per_row(self) -> bool:
        """Whether this mapping carries per-row (per-bit-line) scales."""
        return isinstance(self.scale, np.ndarray)

    @property
    def scale_vector(self) -> np.ndarray:
        """Scales broadcast to one entry per output row (bit-line)."""
        n_out = self.conductances.shape[1]
        if self.per_row:
            return self.scale
        return np.full(n_out, float(self.scale))

    def decode_matrix(self) -> np.ndarray:
        """Recover the coefficient matrix implied by the conductances.

        Floor-clamped entries decode to their (nonzero) floor value —
        the leakage a real array would exhibit.
        """
        return self.conductances.T / self.scale_vector[:, None]


def map_cells(
    values: np.ndarray,
    scale: float | np.ndarray,
    params: DeviceParameters,
    *,
    off_state: str = "zero",
    bits: int | None = None,
    quantization: str = "entry",
) -> tuple[np.ndarray, np.ndarray]:
    """Map a scattered set of coefficient values to conductance targets.

    The O(#cells) counterpart of :func:`map_matrix`: applies the same
    ``target = scale * value`` mapping and ``g_off`` floor handling to
    an arbitrary cell subset, so a differential update (see
    :class:`~repro.crossbar.programming.DiffProgram`) never touches the
    full grid.  ``scale`` may be a scalar (global mapping) or an array
    aligned with ``values`` (per-row mapping, caller pre-gathers the
    row scales).

    ``bits`` optionally models the resolution of the write-path DAC:
    targets are snapped to ``bits`` of precision via
    :func:`~repro.crossbar.quantization.quantize_cells` *before* the
    floor comparison, which in ``"entry"`` mode is element-wise and
    therefore agrees bitwise with quantizing the full grid.  The
    default ``None`` keeps exact targets (the paper models write
    resolution through pulse granularity instead).

    Returns ``(targets, floored)`` where ``floored`` marks cells whose
    coefficient fell below the representable floor.
    """
    if off_state not in ("zero", "leak"):
        raise MappingError(f"unknown off_state {off_state!r}")
    target = values * scale
    if bits is not None:
        from repro.crossbar.quantization import quantize_cells

        target = quantize_cells(target, bits, quantization)
    floored = target < params.g_off
    if off_state == "zero":
        target = np.where(floored, 0.0, target)
    else:
        target = np.where(floored, params.g_off, target)
    return target, floored


def map_matrix(
    matrix: np.ndarray,
    params: DeviceParameters,
    *,
    scale: float | None = None,
    off_state: str = "zero",
) -> ConductanceMapping:
    """Map a non-negative coefficient matrix to crossbar conductances.

    Parameters
    ----------
    matrix:
        Coefficient matrix ``A`` (n_out, n_in); must be non-negative
        and finite.  The crossbar realizes ``G^T = s A``, so the
        returned conductance array has shape ``(n_in, n_out)``.
    params:
        Device preset supplying ``g_on`` (= g_max) and ``g_off``.
    scale:
        Optional explicit scale ``s``.  By default the fast mapping
        ``s = g_max / a_max`` is used, which places the largest
        coefficient at full conductance.  Pass a smaller value to share
        one scale across several arrays (the NoC tiles of one logical
        matrix must agree on scale).
    off_state:
        What happens to coefficients too small to represent (below
        ``g_off`` after scaling):

        - ``"zero"`` (default) — the cell is cut off entirely, as in a
          1T1R array whose selector transistor isolates the device;
          sub-``g_off`` targets truncate to exactly 0.
        - ``"leak"`` — a passive crossbar: every crosspoint is
          populated, so the smallest realizable conductance is
          ``g_off`` and sub-``g_off`` targets clamp *up* to it,
          leaking current.  Used in ablation studies.

    Raises
    ------
    MappingError
        If the matrix contains negative or non-finite entries, is
        empty, or the requested scale drives some entry above ``g_on``.
    """
    if off_state not in ("zero", "leak"):
        raise MappingError(f"unknown off_state {off_state!r}")
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise MappingError(f"expected a 2-D matrix, got ndim={matrix.ndim}")
    if matrix.size == 0:
        raise MappingError("cannot map an empty matrix")
    if not np.all(np.isfinite(matrix)):
        raise MappingError("matrix contains non-finite entries")
    if np.any(matrix < 0):
        raise MappingError(
            "matrix contains negative coefficients; memristance is "
            "non-negative — eliminate negatives first (Eqn. 13)"
        )

    a_max = float(matrix.max())
    if a_max == 0.0:
        # All-zero matrix: every device rests at the OFF state.
        a_max = 1.0  # arbitrary; scale is irrelevant for zeros
    if scale is None:
        scale = params.g_on / a_max
    if scale <= 0:
        raise MappingError(f"scale must be positive, got {scale}")

    target = scale * matrix.T
    if target.max() > params.g_on * (1 + 1e-12):
        raise MappingError(
            f"scale {scale:.3e} drives conductance {target.max():.3e} above "
            f"g_on={params.g_on:.3e}"
        )
    floored = target < params.g_off
    if off_state == "zero":
        conductances = np.where(floored, 0.0, target)
        floor = 0.0
    else:
        conductances = np.where(floored, params.g_off, target)
        floor = params.g_off
    return ConductanceMapping(
        conductances=conductances,
        scale=float(scale),
        floor=floor,
        floored=floored,
        a_max=a_max,
    )


def map_matrix_per_row(
    matrix: np.ndarray,
    params: DeviceParameters,
    *,
    headroom: float = 1.0,
    off_state: str = "zero",
) -> ConductanceMapping:
    """Row-equilibrated mapping: one conductance scale per output row.

    In solve mode each bit-line carries one *equation* of the linear
    system; scaling all conductances on a bit-line together with the
    voltage forced on its sense node leaves the solution unchanged
    (row equilibration performed physically).  In multiply mode the
    per-column output simply decodes with its own scale.  This lets a
    matrix whose rows have wildly different magnitudes — e.g. the
    state-dependent coupling diagonals of Solver 2 — fit the device
    window row by row instead of being crushed by one global ``a_max``.

    Each row's scale is ``g_on / (headroom * row_max)``; all-zero rows
    get a scale of ``g_on`` (nothing to program).

    Raises
    ------
    MappingError
        Same validation as :func:`map_matrix`.
    """
    if off_state not in ("zero", "leak"):
        raise MappingError(f"unknown off_state {off_state!r}")
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise MappingError(f"expected a 2-D matrix, got ndim={matrix.ndim}")
    if matrix.size == 0:
        raise MappingError("cannot map an empty matrix")
    if not np.all(np.isfinite(matrix)):
        raise MappingError("matrix contains non-finite entries")
    if np.any(matrix < 0):
        raise MappingError(
            "matrix contains negative coefficients; memristance is "
            "non-negative — eliminate negatives first (Eqn. 13)"
        )
    if headroom < 1.0:
        raise MappingError("headroom must be >= 1")

    row_max = matrix.max(axis=1)
    scales = np.where(
        row_max > 0, params.g_on / (np.maximum(row_max, 1e-300) * headroom),
        params.g_on,
    )
    target = (matrix * scales[:, None]).T
    floored = target < params.g_off
    if off_state == "zero":
        conductances = np.where(floored, 0.0, target)
        floor = 0.0
    else:
        conductances = np.where(floored, params.g_off, target)
        floor = params.g_off
    a_max = float(matrix.max()) if matrix.size else 0.0
    return ConductanceMapping(
        conductances=conductances,
        scale=scales,
        floor=floor,
        floored=floored,
        a_max=a_max if a_max > 0 else 1.0,
    )


@dataclasses.dataclass(frozen=True)
class DynamicRangeReport:
    """How a matrix's coefficient spread fits the device window.

    The fast proportional mapping pins the largest coefficient at
    ``g_on``; every coefficient more than ``log10(g_on / g_off)``
    decades below it falls off the representable floor and is clamped.
    This report quantifies that loss ahead of programming so callers
    can decide to equilibrate first (:func:`repro.presolve.scaling.
    equilibrate` reduces the spanned decades without changing the LP).

    Attributes
    ----------
    decades_spanned:
        ``log10(max|a| / min nonzero |a|)`` of the matrix.
    decades_representable:
        ``log10(g_on / g_off)`` of the device window.
    floored_fraction:
        Fraction of *nonzero* coefficients that would clamp to the
        floor under the fast global mapping.
    """

    decades_spanned: float
    decades_representable: float
    floored_fraction: float

    @property
    def fits(self) -> bool:
        """Whether every nonzero coefficient is representable."""
        return self.decades_spanned <= self.decades_representable

    def to_dict(self) -> dict:
        """Plain-dict form for JSON reports."""
        return {
            "decades_spanned": self.decades_spanned,
            "decades_representable": self.decades_representable,
            "floored_fraction": self.floored_fraction,
            "fits": self.fits,
        }


def dynamic_range_report(
    matrix: np.ndarray, params: DeviceParameters
) -> DynamicRangeReport:
    """Measure how ``matrix`` fits the device's conductance window.

    Accepts coefficients of any sign (only magnitudes matter — the
    negative-elimination step preserves them).  Useful before and after
    presolve equilibration to verify the scaling actually bought
    representable coefficients.
    """
    from repro.presolve.scaling import coefficient_decades

    matrix = np.asarray(matrix, dtype=float)
    magnitudes = np.abs(matrix)
    nonzero = magnitudes[magnitudes > 0]
    decades = coefficient_decades(matrix)
    representable = float(np.log10(params.g_on / params.g_off))
    if nonzero.size == 0:
        return DynamicRangeReport(0.0, representable, 0.0)
    # Fast mapping: scale = g_on / a_max, floor at g_off.
    floored = nonzero * (params.g_on / float(nonzero.max())) < params.g_off
    return DynamicRangeReport(
        decades_spanned=decades,
        decades_representable=representable,
        floored_fraction=float(np.mean(floored)),
    )


def shared_scale(
    matrices: list[np.ndarray], params: DeviceParameters
) -> float:
    """Scale factor valid for all given non-negative matrices.

    Used when one logical matrix is split across NoC tiles: all tiles
    must be programmed with the same coefficient-to-conductance scale
    so their analog outputs are commensurable.
    """
    if not matrices:
        raise MappingError("need at least one matrix")
    a_max = 0.0
    for matrix in matrices:
        matrix = np.asarray(matrix, dtype=float)
        if matrix.size and np.any(matrix < 0):
            raise MappingError("matrices must be non-negative")
        if matrix.size:
            a_max = max(a_max, float(matrix.max()))
    if a_max == 0.0:
        a_max = 1.0
    return params.g_on / a_max
