"""DAC/ADC voltage quantization.

Section 4.1 of the paper: *"All voltage inputs and outputs are stored
with 8-bit precision."*  Every vector that crosses the digital/analog
boundary of the crossbar — input voltages from DACs, output voltages
through ADCs — passes through a :class:`Quantizer`.

The quantizer is a uniform mid-rise quantizer over a symmetric range
``[-full_scale, +full_scale]`` with ``2**bits`` levels; values outside
the range clip, as a real converter would.
"""

from __future__ import annotations

import numpy as np


class Quantizer:
    """Uniform symmetric quantizer with saturation.

    Parameters
    ----------
    bits:
        Resolution in bits (the paper uses 8).
    full_scale:
        Magnitude of the largest representable value (the converter
        reference voltage).  Inputs are clipped to
        ``[-full_scale, +full_scale]``.
    """

    def __init__(self, bits: int = 8, full_scale: float = 1.0) -> None:
        if bits < 1:
            raise ValueError(f"bits must be >= 1, got {bits}")
        if full_scale <= 0:
            raise ValueError(f"full_scale must be positive, got {full_scale}")
        self.bits = int(bits)
        self.full_scale = float(full_scale)
        self.levels = 2**self.bits
        # Step chosen so the code range [-(L/2), L/2 - 1] spans
        # [-full_scale, +full_scale).
        self.step = 2.0 * self.full_scale / self.levels

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Quantize ``values`` to the converter grid (returns floats)."""
        values = np.asarray(values, dtype=float)
        codes = self.codes(values)
        return codes * self.step

    def codes(self, values: np.ndarray) -> np.ndarray:
        """Integer converter codes for ``values`` (with saturation)."""
        values = np.asarray(values, dtype=float)
        lo = -(self.levels // 2)
        hi = self.levels // 2 - 1
        raw = np.round(values / self.step)
        return np.clip(raw, lo, hi).astype(np.int64)

    @property
    def max_error(self) -> float:
        """Worst-case rounding error for in-range inputs (half a step)."""
        return self.step / 2.0

    def __call__(self, values: np.ndarray) -> np.ndarray:
        return self.quantize(values)

    def __repr__(self) -> str:
        return f"Quantizer(bits={self.bits}, full_scale={self.full_scale})"


def quantize_auto(
    values: np.ndarray, bits: int | None, mode: str = "entry"
) -> np.ndarray:
    """Quantize a vector to ``bits`` of precision.

    Two readings of the paper's "all voltage inputs and outputs are
    stored with 8-bit precision" (Section 4.1):

    - ``mode="entry"`` (default) — each value keeps ``bits`` of
      *relative* precision (an 8-bit mantissa), as a per-channel
      converter with its own gain would provide.  Error per entry is
      bounded by ``2**-(bits+1)`` relative, independent of the vector's
      dynamic range.  This matches the paper's observation that
      accuracy *improves* with problem size.
    - ``mode="vector"`` — one programmable-gain converter per vector:
      uniform ``bits``-bit grid referenced to the vector's peak
      magnitude.  Hardware-pessimistic; small entries of a
      wide-dynamic-range vector lose all precision.  Used in ablations.

    ``bits=None`` disables quantization (ideal converter).
    """
    values = np.asarray(values, dtype=float)
    if bits is None:
        return values.copy()
    if mode == "entry":
        mantissa, exponent = np.frexp(values)
        scale = float(2**bits)
        return np.ldexp(np.round(mantissa * scale) / scale, exponent)
    if mode == "vector":
        peak = float(np.max(np.abs(values))) if values.size else 0.0
        if peak < 1e-300:
            # Zero or subnormal peak: below any representable converter
            # reference voltage, and the step computation would
            # underflow to zero.  Treat as zero drive (matching the
            # analog operators' zero-input handling).
            return np.zeros_like(values)
        return Quantizer(bits=bits, full_scale=peak).quantize(values)
    raise ValueError(f"unknown quantization mode {mode!r}")


def quantize_cells(
    values: np.ndarray,
    bits: int | None,
    mode: str = "entry",
    *,
    reference: float | None = None,
) -> np.ndarray:
    """Quantize a scattered *subset* of a larger vector consistently.

    The differential programming path quantizes only the cells it is
    about to write; for the diff to be bitwise-equivalent to quantizing
    the full grid and slicing, the converter grid must not depend on
    which subset was passed:

    - ``mode="entry"`` is element-wise (each value keeps ``bits`` of
      relative precision), so subset quantization is trivially
      identical to full quantization — ``reference`` is ignored.
    - ``mode="vector"`` references the converter grid to the *full*
      vector's peak, which a subset cannot know.  The caller must pass
      that peak as ``reference``; omitting it is an error rather than a
      silently subset-dependent grid.

    ``bits=None`` disables quantization.
    """
    values = np.asarray(values, dtype=float)
    if bits is None:
        return values.copy()
    if mode == "entry":
        return quantize_auto(values, bits, "entry")
    if mode == "vector":
        if reference is None:
            raise ValueError(
                "vector-mode subset quantization needs the full-vector "
                "peak as reference="
            )
        if reference < 1e-300:
            return np.zeros_like(values)
        return Quantizer(bits=bits, full_scale=reference).quantize(values)
    raise ValueError(f"unknown quantization mode {mode!r}")


class IdealConverter:
    """Pass-through stand-in used to disable quantization in ablations."""

    bits: None = None

    def quantize(self, values: np.ndarray) -> np.ndarray:
        return np.asarray(values, dtype=float).copy()

    def __call__(self, values: np.ndarray) -> np.ndarray:
        return self.quantize(values)

    def __repr__(self) -> str:
        return "IdealConverter()"
