"""Detailed circuit-level crossbar model (modified nodal analysis).

The idealized read-out equation (Eqn. 5) assumes perfect word/bit
lines.  Real arrays have wire segment resistance between adjacent
crosspoints, which introduces IR-drop errors that grow with array size
— one of the manufacturing limits motivating the paper's NoC tiling
(Section 3.4).  This module solves the full resistive network so the
idealization can be validated and the tiling size justified:

- every crosspoint ``(i, j)`` has its own word-line node and bit-line
  node, joined by the memristor conductance ``g[i, j]``;
- adjacent word-line nodes on a row (and bit-line nodes on a column)
  are joined by a wire segment conductance ``g_wire``;
- row drivers force ``V_I[i]`` at column 0 through a driver
  conductance;
- each bit-line reaches ground through the sense conductance ``g_s``
  at its bottom node, where the output voltage is measured.

Setting ``wire_resistance=0`` recovers Eqn. 5 exactly (up to float
round-off), which is what the tests assert.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg


class DetailedCrossbarCircuit:
    """Crossbar read-out with parasitic wire resistance.

    Parameters
    ----------
    conductances:
        Memristor conductance matrix ``g`` of shape (n_rows, n_cols).
    g_sense:
        Sense conductance ``g_s`` at the foot of every bit-line.
    wire_resistance:
        Resistance of one wire segment between adjacent crosspoints,
        ohms.  ``0`` means ideal wires.
    driver_resistance:
        Output resistance of the word-line drivers, ohms.
    """

    def __init__(
        self,
        conductances: np.ndarray,
        *,
        g_sense: float,
        wire_resistance: float = 0.0,
        driver_resistance: float = 0.0,
    ) -> None:
        conductances = np.asarray(conductances, dtype=float)
        if conductances.ndim != 2:
            raise ValueError("conductances must be a 2-D array")
        if np.any(conductances < 0):
            raise ValueError("conductances must be non-negative")
        if g_sense <= 0:
            raise ValueError("g_sense must be positive")
        if wire_resistance < 0 or driver_resistance < 0:
            raise ValueError("parasitic resistances must be non-negative")
        self.g = conductances
        self.n_rows, self.n_cols = conductances.shape
        self.g_sense = float(g_sense)
        self.wire_resistance = float(wire_resistance)
        self.driver_resistance = float(driver_resistance)
        # Assembled nodal matrix, reused while the conductances are
        # unchanged: (snapshot of g, factor-ready CSR).  The Laplacian
        # depends only on g and the parasitics; the injection vector is
        # rebuilt per drive.
        self._nodal_cache: tuple[np.ndarray, sparse.csr_matrix] | None = None

    # Node numbering: word-line node (i, j) -> i * n_cols + j;
    # bit-line node (i, j)  -> offset + i * n_cols + j.
    def _wl(self, i: int, j: int) -> int:
        return i * self.n_cols + j

    def _bl(self, i: int, j: int) -> int:
        return self.n_rows * self.n_cols + i * self.n_cols + j

    def multiply(self, v_in: np.ndarray) -> np.ndarray:
        """Bit-line output voltages for the given word-line drive.

        Solves the full nodal system; with ideal wires this equals the
        Eqn. 5 read-out ``V_O = D G^T V_I``.
        """
        v_in = np.asarray(v_in, dtype=float)
        if v_in.shape != (self.n_rows,):
            raise ValueError(
                f"expected input of shape ({self.n_rows},), got {v_in.shape}"
            )
        if self.wire_resistance == 0.0 and self.driver_resistance == 0.0:
            # Ideal wires: closed form, no linear solve needed.
            denominators = self.g_sense + self.g.sum(axis=0)
            return (self.g.T @ v_in) / denominators
        return self._solve_network(v_in)

    def _driver_conductance(self) -> float:
        # Effectively-ideal parasitics still need finite conductances.
        return (
            1.0 / self.driver_resistance
            if self.driver_resistance > 0
            else 1e12
        )

    def _assemble_nodal_matrix(self) -> sparse.csr_matrix:
        n, m = self.n_rows, self.n_cols
        size = 2 * n * m
        g_wire = (
            1.0 / self.wire_resistance if self.wire_resistance > 0 else 1e12
        )
        g_driver = self._driver_conductance()

        laplacian = sparse.lil_matrix((size, size))

        def stamp(a: int, b: int, g: float) -> None:
            laplacian[a, a] += g
            laplacian[b, b] += g
            laplacian[a, b] -= g
            laplacian[b, a] -= g

        def stamp_to_ground(a: int, g: float) -> None:
            laplacian[a, a] += g

        for i in range(n):
            # Driver into the leftmost word-line node.
            stamp_to_ground(self._wl(i, 0), g_driver)
            for j in range(m):
                wl = self._wl(i, j)
                bl = self._bl(i, j)
                if self.g[i, j] > 0:
                    stamp(wl, bl, self.g[i, j])
                else:
                    # Isolated crosspoint: tie dangling pairs weakly so
                    # the system stays non-singular.
                    stamp_to_ground(wl, 1e-15)
                    stamp_to_ground(bl, 1e-15)
                if j + 1 < m:
                    stamp(wl, self._wl(i, j + 1), g_wire)
                if i + 1 < n:
                    stamp(bl, self._bl(i + 1, j), g_wire)
        for j in range(m):
            # Sense resistor at the foot (bottom row) of each bit-line.
            stamp_to_ground(self._bl(n - 1, j), self.g_sense)
        return sparse.csr_matrix(laplacian)

    def _nodal_matrix(self) -> sparse.csr_matrix:
        """The assembled Laplacian, cached while ``g`` is unchanged.

        Assembly is the dominant cost of a network solve (a Python
        double loop over crosspoints); IR-drop studies sweep many
        drive vectors over one programmed array, so the matrix is
        reused until the conductances actually move.  The snapshot
        comparison keeps the cache safe under in-place mutation of
        ``self.g``.
        """
        cache = self._nodal_cache
        if cache is not None and np.array_equal(cache[0], self.g):
            return cache[1]
        matrix = self._assemble_nodal_matrix()
        self._nodal_cache = (self.g.copy(), matrix)
        return matrix

    def _solve_network(self, v_in: np.ndarray) -> np.ndarray:
        n, m = self.n_rows, self.n_cols
        laplacian = self._nodal_matrix()
        injection = np.zeros(2 * n * m)
        injection[[self._wl(i, 0) for i in range(n)]] = (
            self._driver_conductance() * v_in
        )
        solution = sparse_linalg.spsolve(laplacian, injection)
        return np.array(
            [solution[self._bl(n - 1, j)] for j in range(m)], dtype=float
        )

    def ideal_multiply(self, v_in: np.ndarray) -> np.ndarray:
        """The Eqn. 5 closed form, for comparison with the network."""
        v_in = np.asarray(v_in, dtype=float)
        denominators = self.g_sense + self.g.sum(axis=0)
        return (self.g.T @ v_in) / denominators

    @staticmethod
    def batch_ideal_multiply(
        conductance_stack: np.ndarray,
        v_in: np.ndarray,
        g_sense: float,
    ) -> np.ndarray:
        """Eqn. 5 over a ``(K, n, m)`` fleet in one tensor op.

        The ideal-wire fast path for K same-shape arrays at once:
        ``v_in`` is ``(K, n)`` (or ``(n,)`` broadcast) and the result
        is ``(K, m)``, each row equal to what
        :meth:`ideal_multiply` returns for that member.  IR-drop sweeps
        use this to amortize the reference (ideal) evaluations across a
        whole fleet before the per-member network solves.
        """
        g = np.asarray(conductance_stack, dtype=float)
        if g.ndim != 3:
            raise ValueError("conductance_stack must be (K, n_rows, n_cols)")
        v_in = np.asarray(v_in, dtype=float)
        if v_in.shape == (g.shape[1],):
            v_in = np.broadcast_to(v_in, (g.shape[0], g.shape[1]))
        if v_in.shape != (g.shape[0], g.shape[1]):
            raise ValueError(
                f"expected inputs of shape ({g.shape[0]}, {g.shape[1]}), "
                f"got {v_in.shape}"
            )
        denominators = g_sense + g.sum(axis=1)
        outputs = np.matmul(g.transpose(0, 2, 1), v_in[:, :, None])[:, :, 0]
        return outputs / denominators

    def ir_drop_error(self, v_in: np.ndarray) -> float:
        """Max relative deviation of the network from the ideal model."""
        ideal = self.ideal_multiply(v_in)
        real = self.multiply(v_in)
        denom = np.max(np.abs(ideal))
        if denom == 0:
            return 0.0
        return float(np.max(np.abs(real - ideal)) / denom)
