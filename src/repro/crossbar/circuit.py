"""Detailed circuit-level crossbar model (modified nodal analysis).

The idealized read-out equation (Eqn. 5) assumes perfect word/bit
lines.  Real arrays have wire segment resistance between adjacent
crosspoints, which introduces IR-drop errors that grow with array size
— one of the manufacturing limits motivating the paper's NoC tiling
(Section 3.4).  This module solves the full resistive network so the
idealization can be validated and the tiling size justified:

- every crosspoint ``(i, j)`` has its own word-line node and bit-line
  node, joined by the memristor conductance ``g[i, j]``;
- adjacent word-line nodes on a row (and bit-line nodes on a column)
  are joined by a wire segment conductance ``g_wire``;
- row drivers force ``V_I[i]`` at column 0 through a driver
  conductance;
- each bit-line reaches ground through the sense conductance ``g_s``
  at its bottom node, where the output voltage is measured.

Setting ``wire_resistance=0`` recovers Eqn. 5 exactly (up to float
round-off), which is what the tests assert.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg


class DetailedCrossbarCircuit:
    """Crossbar read-out with parasitic wire resistance.

    Parameters
    ----------
    conductances:
        Memristor conductance matrix ``g`` of shape (n_rows, n_cols).
    g_sense:
        Sense conductance ``g_s`` at the foot of every bit-line.
    wire_resistance:
        Resistance of one wire segment between adjacent crosspoints,
        ohms.  ``0`` means ideal wires.
    driver_resistance:
        Output resistance of the word-line drivers, ohms.
    """

    def __init__(
        self,
        conductances: np.ndarray,
        *,
        g_sense: float,
        wire_resistance: float = 0.0,
        driver_resistance: float = 0.0,
    ) -> None:
        conductances = np.asarray(conductances, dtype=float)
        if conductances.ndim != 2:
            raise ValueError("conductances must be a 2-D array")
        if np.any(conductances < 0):
            raise ValueError("conductances must be non-negative")
        if g_sense <= 0:
            raise ValueError("g_sense must be positive")
        if wire_resistance < 0 or driver_resistance < 0:
            raise ValueError("parasitic resistances must be non-negative")
        self.g = conductances
        self.n_rows, self.n_cols = conductances.shape
        self.g_sense = float(g_sense)
        self.wire_resistance = float(wire_resistance)
        self.driver_resistance = float(driver_resistance)

    # Node numbering: word-line node (i, j) -> i * n_cols + j;
    # bit-line node (i, j)  -> offset + i * n_cols + j.
    def _wl(self, i: int, j: int) -> int:
        return i * self.n_cols + j

    def _bl(self, i: int, j: int) -> int:
        return self.n_rows * self.n_cols + i * self.n_cols + j

    def multiply(self, v_in: np.ndarray) -> np.ndarray:
        """Bit-line output voltages for the given word-line drive.

        Solves the full nodal system; with ideal wires this equals the
        Eqn. 5 read-out ``V_O = D G^T V_I``.
        """
        v_in = np.asarray(v_in, dtype=float)
        if v_in.shape != (self.n_rows,):
            raise ValueError(
                f"expected input of shape ({self.n_rows},), got {v_in.shape}"
            )
        if self.wire_resistance == 0.0 and self.driver_resistance == 0.0:
            # Ideal wires: closed form, no linear solve needed.
            denominators = self.g_sense + self.g.sum(axis=0)
            return (self.g.T @ v_in) / denominators
        return self._solve_network(v_in)

    def _solve_network(self, v_in: np.ndarray) -> np.ndarray:
        n, m = self.n_rows, self.n_cols
        size = 2 * n * m
        # Effectively-ideal parasitics still need finite conductances.
        g_wire = (
            1.0 / self.wire_resistance if self.wire_resistance > 0 else 1e12
        )
        g_driver = (
            1.0 / self.driver_resistance
            if self.driver_resistance > 0
            else 1e12
        )

        laplacian = sparse.lil_matrix((size, size))
        injection = np.zeros(size)

        def stamp(a: int, b: int, g: float) -> None:
            laplacian[a, a] += g
            laplacian[b, b] += g
            laplacian[a, b] -= g
            laplacian[b, a] -= g

        def stamp_to_ground(a: int, g: float) -> None:
            laplacian[a, a] += g

        for i in range(n):
            # Driver into the leftmost word-line node.
            node0 = self._wl(i, 0)
            stamp_to_ground(node0, g_driver)
            injection[node0] += g_driver * v_in[i]
            for j in range(m):
                wl = self._wl(i, j)
                bl = self._bl(i, j)
                if self.g[i, j] > 0:
                    stamp(wl, bl, self.g[i, j])
                else:
                    # Isolated crosspoint: tie dangling pairs weakly so
                    # the system stays non-singular.
                    stamp_to_ground(wl, 1e-15)
                    stamp_to_ground(bl, 1e-15)
                if j + 1 < m:
                    stamp(wl, self._wl(i, j + 1), g_wire)
                if i + 1 < n:
                    stamp(bl, self._bl(i + 1, j), g_wire)
        for j in range(m):
            # Sense resistor at the foot (bottom row) of each bit-line.
            stamp_to_ground(self._bl(n - 1, j), self.g_sense)

        solution = sparse_linalg.spsolve(
            sparse.csr_matrix(laplacian), injection
        )
        return np.array(
            [solution[self._bl(n - 1, j)] for j in range(m)], dtype=float
        )

    def ideal_multiply(self, v_in: np.ndarray) -> np.ndarray:
        """The Eqn. 5 closed form, for comparison with the network."""
        v_in = np.asarray(v_in, dtype=float)
        denominators = self.g_sense + self.g.sum(axis=0)
        return (self.g.T @ v_in) / denominators

    def ir_drop_error(self, v_in: np.ndarray) -> float:
        """Max relative deviation of the network from the ideal model."""
        ideal = self.ideal_multiply(v_in)
        real = self.multiply(v_in)
        denom = np.max(np.abs(ideal))
        if denom == 0:
            return 0.0
        return float(np.max(np.abs(real - ideal)) / denom)
