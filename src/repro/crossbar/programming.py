"""Write-pulse programming model for memristor crossbars.

Section 3.3 of the paper: a target device is programmed by applying
``V_dd`` (or ``-V_dd``) across its word-line/bit-line pair while all
other lines are biased at ``V_dd / 2`` — the half-select scheme keeps
every unselected device below threshold.  Programming a device to a
specific resistance is achieved by adjusting the number of write
pulses.

Devices are written one at a time per array (the selected WL/BL pair
is unique), so write latency is the sum of per-cell pulse trains; only
*changed* cells are rewritten.  This is what makes the PDIP iteration
O(N): between iterations only the X, Y, Z, W diagonal blocks of the
system matrix change — O(N) cells — while the large A / A^T blocks are
programmed once (Section 3.5).

Energy accounting includes the half-select disturbance energy of the
unselected lines, which scales with array size.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.devices.models import DeviceParameters


@dataclasses.dataclass(frozen=True)
class WriteReport:
    """Accounting record for one programming operation.

    Attributes
    ----------
    cells_written:
        Number of devices whose target conductance changed.
    pulses:
        Total write pulses issued across all written cells.
    latency_s:
        Wall-clock time of the (sequential) write phase, seconds.
    energy_j:
        Total energy of the write phase, including half-select
        overhead, joules.
    verify_reads:
        Cell read-backs performed by the write–verify loop (0 when
        verification is disabled).
    repulsed_cells:
        Cells that needed at least one corrective re-pulse round.
    unverified_cells:
        Cells still out of tolerance when the verify pulse budget ran
        out — persistent deviations (e.g. stuck-at faults).
    """

    cells_written: int
    pulses: int
    latency_s: float
    energy_j: float
    verify_reads: int = 0
    repulsed_cells: int = 0
    unverified_cells: int = 0

    def __add__(self, other: "WriteReport") -> "WriteReport":
        return WriteReport(
            cells_written=self.cells_written + other.cells_written,
            pulses=self.pulses + other.pulses,
            latency_s=self.latency_s + other.latency_s,
            energy_j=self.energy_j + other.energy_j,
            verify_reads=self.verify_reads + other.verify_reads,
            repulsed_cells=self.repulsed_cells + other.repulsed_cells,
            unverified_cells=(
                self.unverified_cells + other.unverified_cells
            ),
        )

    def __sub__(self, other: "WriteReport") -> "WriteReport":
        """Difference of two accumulated reports.

        Used to scope a long-lived array's lifetime totals to one
        window: ``array.total_write_report - baseline`` is the cost
        incurred since ``baseline`` was snapshotted.
        """
        return WriteReport(
            cells_written=self.cells_written - other.cells_written,
            pulses=self.pulses - other.pulses,
            latency_s=self.latency_s - other.latency_s,
            energy_j=self.energy_j - other.energy_j,
            verify_reads=self.verify_reads - other.verify_reads,
            repulsed_cells=self.repulsed_cells - other.repulsed_cells,
            unverified_cells=(
                self.unverified_cells - other.unverified_cells
            ),
        )


@dataclasses.dataclass(frozen=True)
class DiffProgram:
    """A filtered cell-write set: only the cells that actually change.

    Produced by :func:`plan_diff` from a proposed write against the
    currently programmed nominal grid.  Cells whose target already
    matches are dropped *before* any physical-write modeling — no
    variation redraw, no write–verify read-back, no range validation —
    so the cost of applying the diff scales with the number of cells
    that move, not the number of cells proposed.  This is the primitive
    behind the paper's O(N)-per-iteration claim: the solvers propose
    the same 2(n+m) diagonal cells every iteration, and remaps/rescales
    propose whole rows of a mostly-zero augmented matrix, but only the
    moving conductances are ever touched.
    """

    rows: np.ndarray
    cols: np.ndarray
    targets: np.ndarray
    skipped: int

    @property
    def cells(self) -> int:
        """Number of cells this diff will physically write."""
        return int(self.rows.size)

    @property
    def empty(self) -> bool:
        return self.rows.size == 0


def plan_diff(
    nominal: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    targets: np.ndarray,
    *,
    tolerance: float = 0.0,
    g_off: float = 0.0,
) -> DiffProgram:
    """Filter a proposed cell write down to the cells that change.

    Parameters
    ----------
    nominal:
        The currently programmed (nominal) conductance grid.
    rows, cols, targets:
        Proposed cell coordinates and their new conductance targets.
    tolerance:
        Relative deadband: with ``tolerance > 0`` a cell is skipped
        when ``|new - old| <= tolerance * max(|old|, g_off)`` (the same
        deadband :func:`plan_write` uses).  The default 0 skips only
        exactly-equal targets.
    g_off:
        Off-conductance reference for the relative deadband.
    """
    current = nominal[rows, cols]
    if tolerance > 0.0:
        scale = np.maximum(np.abs(current), g_off)
        changed = np.abs(targets - current) > tolerance * scale
    else:
        changed = targets != current
    if changed.all():
        return DiffProgram(rows=rows, cols=cols, targets=targets, skipped=0)
    return DiffProgram(
        rows=rows[changed],
        cols=cols[changed],
        targets=targets[changed],
        skipped=int(changed.size - np.count_nonzero(changed)),
    )


#: Fraction of the selected-cell write energy dissipated by each
#: half-selected device on the same word/bit line.  A half-selected cell
#: sees V_dd/2, i.e. a quarter of the power of the selected cell, for
#: the same pulse duration; sneak-path analyses in the crosspoint
#: literature (Liang et al., JETC 2013, cited as [15]) put the practical
#: figure near this value.
HALF_SELECT_ENERGY_FRACTION = 0.25


def conductance_to_state(
    conductance: np.ndarray, params: DeviceParameters
) -> np.ndarray:
    """Normalized device state x in [0, 1] realizing each conductance."""
    conductance = np.asarray(conductance, dtype=float)
    resistance = 1.0 / np.clip(conductance, params.g_off, params.g_on)
    return (params.r_off - resistance) / (params.r_off - params.r_on)


def plan_write(
    old: np.ndarray | None,
    new: np.ndarray,
    params: DeviceParameters,
    *,
    tolerance: float = 0.0,
) -> WriteReport:
    """Cost of reprogramming an array from ``old`` to ``new``.

    Parameters
    ----------
    old:
        Previously programmed conductances, or ``None`` for a blank
        array (all cells isolated / fully OFF).
    new:
        Target conductances, same shape as ``old`` (if given).
    params:
        Device preset (pulse width, energy, full-swing pulse count).
    tolerance:
        Relative conductance change below which a cell is considered
        unchanged and skipped (write-verify deadband).

    Returns
    -------
    WriteReport
        Pulses, latency and energy for the sequential write.
    """
    new = np.asarray(new, dtype=float)
    if old is None:
        old = np.zeros_like(new)
    else:
        old = np.asarray(old, dtype=float)
        if old.shape != new.shape:
            raise ValueError(
                f"shape mismatch: old {old.shape} vs new {new.shape}"
            )

    old_state = conductance_to_state(old, params)
    new_state = conductance_to_state(new, params)
    swing = np.abs(new_state - old_state)

    if tolerance > 0.0:
        scale = np.maximum(np.abs(old), params.g_off)
        changed = np.abs(new - old) / scale > tolerance
    else:
        changed = swing > 0.0
    swing = np.where(changed, swing, 0.0)

    pulses_per_cell = np.ceil(swing * params.write_pulses_full_swing)
    total_pulses = int(pulses_per_cell.sum())
    cells = int(np.count_nonzero(changed))

    latency = total_pulses * params.write_pulse_width
    # Selected-cell energy plus half-select disturbance on the other
    # devices sharing the selected WL and BL.
    n_rows, n_cols = new.shape
    half_selected = (n_rows - 1) + (n_cols - 1)
    energy_per_pulse = params.write_energy_per_pulse * (
        1.0 + HALF_SELECT_ENERGY_FRACTION * half_selected
    )
    energy = total_pulses * energy_per_pulse
    return WriteReport(
        cells_written=cells,
        pulses=total_pulses,
        latency_s=latency,
        energy_j=energy,
    )


def plan_write_stack(
    old: np.ndarray | None,
    new: np.ndarray,
    params: DeviceParameters,
    *,
    tolerance: float = 0.0,
    half_select_counts: np.ndarray | None = None,
) -> list[WriteReport]:
    """Per-member write costs for a ``(K, n_rows, n_cols)`` stack.

    One vectorized pass over the whole stack, returning exactly the
    reports a loop of :func:`plan_write` over the members would —
    bitwise: the state/swing arithmetic is elementwise, and the pulse
    counts are integer-valued floats whose sum is exact in any
    reduction order.

    Parameters
    ----------
    old, new:
        Conductance stacks of shape ``(K, n_rows, n_cols)``; ``old``
        may be ``None`` for blank arrays.  Cell-write planning passes
        ``(K, 1, c)`` row vectors, mirroring the serial path's
        ``reshape(1, -1)``.
    params, tolerance:
        As for :func:`plan_write`.
    half_select_counts:
        Per-member count of half-selected devices, shape ``(K,)``.
        ``None`` uses the geometric ``(n_rows-1) + (n_cols-1)`` of the
        member grid.  Differential cell writes must pass their own
        counts: the serial path plans each member's *changed subset*
        as a ``(1, c_k)`` write, so its half-select factor is
        ``c_k - 1`` with ``c_k`` varying per member.
    """
    new = np.asarray(new, dtype=float)
    if new.ndim != 3:
        raise ValueError(
            f"expected a (K, rows, cols) stack, got shape {new.shape}"
        )
    if old is None:
        old = np.zeros_like(new)
    else:
        old = np.asarray(old, dtype=float)
        if old.shape != new.shape:
            raise ValueError(
                f"shape mismatch: old {old.shape} vs new {new.shape}"
            )

    old_state = conductance_to_state(old, params)
    new_state = conductance_to_state(new, params)
    swing = np.abs(new_state - old_state)

    if tolerance > 0.0:
        scale = np.maximum(np.abs(old), params.g_off)
        changed = np.abs(new - old) / scale > tolerance
    else:
        changed = swing > 0.0
    swing = np.where(changed, swing, 0.0)

    k = new.shape[0]
    pulses_per_cell = np.ceil(swing * params.write_pulses_full_swing)
    total_pulses = pulses_per_cell.reshape(k, -1).sum(axis=1)
    cells = np.count_nonzero(changed.reshape(k, -1), axis=1)

    if half_select_counts is None:
        n_rows, n_cols = new.shape[1], new.shape[2]
        half_select_counts = np.full(k, (n_rows - 1) + (n_cols - 1))
    else:
        half_select_counts = np.asarray(half_select_counts)
        if half_select_counts.shape != (k,):
            raise ValueError(
                f"half_select_counts must have shape ({k},), got "
                f"{half_select_counts.shape}"
            )

    reports = []
    for member in range(k):
        pulses = int(total_pulses[member])
        energy_per_pulse = params.write_energy_per_pulse * (
            1.0
            + HALF_SELECT_ENERGY_FRACTION * int(half_select_counts[member])
        )
        reports.append(
            WriteReport(
                cells_written=int(cells[member]),
                pulses=pulses,
                latency_s=pulses * params.write_pulse_width,
                energy_j=pulses * energy_per_pulse,
            )
        )
    return reports
