"""High-level analog matrix operations in problem units.

:class:`AnalogMatrixOperator` wraps a non-negative coefficient matrix
``A`` and a simulated :class:`~repro.crossbar.array.CrossbarArray`, and
exposes the two primitives the PDIP solvers use:

- ``multiply(x)``  — returns ``y ≈ A x``      (Eqn. 5 read-out)
- ``solve(b)``     — returns ``x ≈ A^{-1} b`` (current-balance mode)

All encoding details live here: the proportional conductance mapping,
input-voltage scaling into the sub-threshold read window, 8-bit DAC/ADC
quantization of every vector crossing the analog boundary, and decoding
back into problem units with the *nominal* scale factors (the digital
controller only knows what it programmed — deviation of the actual
conductances is exactly the process-variation error the paper studies).

Two mapping policies are supported:

- **global** (default; the paper's fast mapping from Hu et al. [8]):
  one scale ``s = g_on / (headroom * a_max)`` for the whole array.
- **row-scaled** (``row_scaling=True``): each *output row* (bit-line)
  carries its own scale.  Physically this is row equilibration done in
  hardware — in solve mode a bit-line holds one equation, and scaling
  its conductances together with the voltage forced on its sense node
  leaves the solution unchanged; in multiply mode the per-column
  output decodes with its own scale.  Row scales follow the row maxima
  with hysteresis, so a rescale (a full-row rewrite) only happens when
  a row's magnitude drifts far from its window; routine updates remain
  O(cells changed).

Coefficient updates (the O(N) per-iteration rewrites of the X, Y, Z, W
blocks) go through :meth:`AnalogMatrixOperator.update_coefficients`.
"""

from __future__ import annotations

import numpy as np

from repro.crossbar.array import CrossbarArray
from repro.crossbar.mapping import map_cells
from repro.crossbar.programming import WriteReport
from repro.crossbar.quantization import quantize_auto
from repro.devices.models import HP_TIO2, DeviceParameters
from repro.devices.variation import NoVariation, VariationModel
from repro.exceptions import MappingError
from repro.obs.tracer import NOOP, Tracer
from repro.reliability.verify import WriteVerifyPolicy

#: A row is rescaled when its peak conductance target would exceed
#: ``g_on`` (overflow) or fall below ``g_on / (headroom * HYSTERESIS)``
#: (precision loss).  Between those bounds the old scale is kept, so
#: per-iteration updates rarely trigger full-row rewrites.
ROW_SCALE_HYSTERESIS = 8.0


class AnalogMatrixOperator:
    """A coefficient matrix realized on a simulated memristor crossbar.

    Parameters
    ----------
    matrix:
        Non-negative coefficient matrix ``A`` of shape
        ``(n_out, n_in)``.
    params:
        Memristor device preset.
    variation:
        Process-variation model (default: ideal hardware).
    rng:
        Random generator used for variation draws.
    dac_bits, adc_bits:
        Converter resolutions; the paper uses 8 bits for all voltage
        I/O.  ``None`` disables quantization on that side (ablations).
    quantization:
        ``"entry"`` (default) — per-entry relative precision (8-bit
        mantissa, a per-channel converter gain); ``"vector"`` — one
        programmable-gain converter per vector, uniform grid relative
        to the vector peak.  See
        :func:`repro.crossbar.quantization.quantize_auto`.
    scale_headroom:
        Scales are chosen ``headroom`` below the top of the device
        window so coefficients may grow by this factor during
        iterative updates before a remap is needed.  Must be >= 1.
    row_scaling:
        Use the row-equilibrated mapping instead of one global scale.
    off_state:
        ``"zero"`` (1T1R, default) or ``"leak"`` (passive array) —
        what happens to coefficients too small to represent.
    compensate_leak:
        In ``"leak"`` mode, digitally subtract the known floor-current
        contribution from multiply read-outs (dummy-row compensation).
        Ignored in ``"zero"`` mode.
    g_sense:
        Sense-resistor conductance; defaults to the device ``g_on``.
    write_verify:
        Closed-loop programming policy forwarded to the underlying
        :class:`~repro.crossbar.array.CrossbarArray`; ``None`` keeps
        open-loop programming.
    tracer:
        Observability hook (:mod:`repro.obs`): analog multiplies and
        solves are wrapped in ``op.multiply`` / ``op.solve`` spans and
        bump the ``analog.*`` counters; the tracer is forwarded to the
        underlying array for write accounting.  Defaults to the
        zero-overhead no-op tracer.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        *,
        params: DeviceParameters = HP_TIO2,
        variation: VariationModel | None = None,
        rng: np.random.Generator | None = None,
        dac_bits: int | None = 8,
        adc_bits: int | None = 8,
        quantization: str = "entry",
        scale_headroom: float = 1.0,
        row_scaling: bool = False,
        off_state: str = "zero",
        compensate_leak: bool = True,
        g_sense: float | None = None,
        write_verify: WriteVerifyPolicy | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise MappingError("expected a 2-D coefficient matrix")
        if matrix.size == 0:
            raise MappingError("cannot wrap an empty matrix")
        if not np.all(np.isfinite(matrix)):
            raise MappingError("matrix contains non-finite entries")
        if np.any(matrix < 0):
            raise MappingError(
                "matrix contains negative coefficients; memristance is "
                "non-negative — eliminate negatives first (Eqn. 13)"
            )
        if scale_headroom < 1.0:
            raise ValueError("scale_headroom must be >= 1")
        if off_state not in ("zero", "leak"):
            raise ValueError(f"unknown off_state {off_state!r}")
        self.params = params
        self.variation = variation if variation is not None else NoVariation()
        self.rng = rng if rng is not None else np.random.default_rng()
        if quantization not in ("entry", "vector"):
            raise ValueError(f"unknown quantization mode {quantization!r}")
        self.dac_bits = dac_bits
        self.adc_bits = adc_bits
        self.quantization = quantization
        self.scale_headroom = float(scale_headroom)
        self.row_scaling = bool(row_scaling)
        self.off_state = off_state
        self.compensate_leak = bool(compensate_leak)

        self.tracer = tracer if tracer is not None else NOOP
        self.n_out, self.n_in = matrix.shape
        self._coefficients = matrix.copy()
        self.array = CrossbarArray(
            self.n_in,
            self.n_out,
            params=params,
            variation=self.variation,
            g_sense=g_sense,
            rng=self.rng,
            write_verify=write_verify,
            tracer=self.tracer,
        )
        self._scales = self._fresh_scales()
        self._solve_gain_cache: tuple[float, np.ndarray | None] | None = None
        self._floored = np.zeros((self.n_in, self.n_out), dtype=bool)
        self._full_reprograms = 0
        self._program_rows(np.arange(self.n_out))
        self._full_reprograms = 1

    @staticmethod
    def build_stack(matrices: np.ndarray, **kwargs):
        """Construct a batched fleet of operators in one tensor pass.

        ``matrices`` is a ``(K, n_out, n_in)`` stack (or list of K
        equal-shape 2-D arrays); keyword arguments are those of
        :class:`~repro.crossbar.opstack.AnalogOperatorStack` (same
        encoding knobs as this class, plus ``rngs`` — one generator
        per member — and ``backend``).  With the numpy backend each
        member is bitwise-identical to a serial operator built with
        the same settings and generator; construction, programming and
        the per-iteration primitives all run as single batched calls.
        """
        from repro.crossbar.opstack import AnalogOperatorStack

        return AnalogOperatorStack(np.asarray(matrices, dtype=float), **kwargs)

    # -- scale management -------------------------------------------------

    def _fresh_scales(self) -> np.ndarray:
        """Scales implied by the current coefficients, no hysteresis."""
        if self.row_scaling:
            row_max = self._coefficients.max(axis=1, initial=0.0)
            safe = np.maximum(row_max, 1e-300)
            return np.where(
                row_max > 0,
                self.params.g_on / (safe * self.scale_headroom),
                self.params.g_on,
            )
        a_max = float(self._coefficients.max(initial=0.0))
        if a_max <= 0.0:
            a_max = 1.0
        scale = self.params.g_on / (a_max * self.scale_headroom)
        return np.full(self.n_out, scale)

    def _targets_for_rows(self, rows: np.ndarray) -> np.ndarray:
        """Conductance targets (G orientation) for coefficient rows."""
        block, floored = map_cells(
            self._coefficients[rows, :],
            self._scales[rows, None],
            self.params,
            off_state=self.off_state,
        )
        self._floored[:, rows] = floored.T
        return block.T  # (n_in, len(rows))

    def _program_rows(self, rows: np.ndarray) -> WriteReport:
        """(Re)program all cells of the given coefficient rows.

        Goes through the differential write path: cells whose target is
        unchanged (the structural zeros of a sparse system, or rows
        rescaled back to the scale they already hold) are skipped, so a
        "full" reprogram costs O(cells that move), not O(N²).
        """
        rows = np.asarray(rows, dtype=int)
        targets = self._targets_for_rows(rows)  # (n_in, k)
        grid_in, grid_rows = np.meshgrid(
            np.arange(self.n_in), rows, indexing="ij"
        )
        return self.array.program_cells(
            grid_in.ravel(),
            grid_rows.ravel(),
            targets.ravel(),
            skip_unchanged=True,
        )

    # -- public accessors --------------------------------------------------

    @property
    def coefficients(self) -> np.ndarray:
        """The nominal coefficient matrix currently programmed; copy."""
        return self._coefficients.copy()

    @property
    def scale(self) -> float:
        """Global coefficient-to-conductance scale ``s``.

        Only meaningful without row scaling; raises otherwise.
        """
        if self.row_scaling:
            raise MappingError(
                "row-scaled operator has no single scale; use scale_vector"
            )
        return float(self._scales[0])

    @property
    def scale_vector(self) -> np.ndarray:
        """Per-output-row coefficient-to-conductance scales; copy."""
        return self._scales.copy()

    @property
    def min_coefficient(self) -> float:
        """Smallest strictly-positive coefficient every row can store.

        Coefficients below ``g_off / scale`` truncate to the off
        state.  Solvers that need an entry to stay nonzero clamp their
        updates to this floor (conservatively, the worst row's floor).
        """
        return float(np.max(self.params.g_off / self._scales))

    @property
    def full_reprograms(self) -> int:
        """Number of whole-array programming events (incl. the first)."""
        return self._full_reprograms

    # -- coefficient updates -------------------------------------------------

    def update_coefficients(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        *,
        floor_to_representable: bool = False,
    ) -> WriteReport:
        """Rewrite selected coefficients ``A[rows, cols] = values``.

        Only the affected crossbar cells are reprogrammed — the O(N)
        iteration-update primitive of Section 3.5.  Values outgrowing
        the programmed window trigger a remap: global mode reprograms
        the whole array with a new scale; row mode rescales only the
        rows whose maxima left their hysteresis window.

        Parameters
        ----------
        rows, cols, values:
            Cell coordinates and their new coefficient values (>= 0).
        floor_to_representable:
            Clamp each value *up* to the smallest coefficient its row
            can represent instead of letting it truncate to the off
            state.  Solvers use this for diagonal cells whose vanishing
            would make the programmed system singular.  The clamp uses
            the scales in effect after any remap this update triggers.

        Returns the :class:`WriteReport` for the write that happened.
        """
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        values = np.asarray(values, dtype=float)
        if not (rows.shape == cols.shape == values.shape):
            raise ValueError("rows, cols, values must have matching shapes")
        if values.size == 0:
            return self.array.program_cells(
                np.empty(0, dtype=int), np.empty(0, dtype=int), np.empty(0)
            )
        if values.min() < 0:
            raise MappingError("coefficients must be non-negative")

        self._coefficients[rows, cols] = values
        if self.row_scaling:
            return self._update_row_scaled(
                rows, cols, values, floor_to_representable
            )
        return self._update_global(rows, cols, values, floor_to_representable)

    def _update_global(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        floor_to_representable: bool,
    ) -> WriteReport:
        scale = float(self._scales[0])
        needs_remap = values.max() * scale > self.params.g_on
        if needs_remap:
            a_max = max(float(self._coefficients.max()), 1e-300)
            scale_after = self.params.g_on / (a_max * self.scale_headroom)
        else:
            scale_after = scale
        if floor_to_representable:
            values = np.maximum(values, self.params.g_off / scale_after)
            self._coefficients[rows, cols] = values
        if needs_remap:
            self._scales = np.full(self.n_out, scale_after)
            self._solve_gain_cache = None
            report = self._program_rows(np.arange(self.n_out))
            self._full_reprograms += 1
            return report
        targets, floored = map_cells(
            values, scale, self.params, off_state=self.off_state
        )
        self._floored[cols, rows] = floored
        # Crossbar cell (i, j) carries coefficient A[j, i].
        return self.array.program_cells(
            cols, rows, targets, skip_unchanged=True
        )

    def renormalize(self) -> WriteReport:
        """Restore the no-hysteresis scales for the current coefficients.

        Scale management is deliberately sticky: the global mapping
        only remaps when a value *outgrows* the window, and row scales
        move only outside their hysteresis band.  A solver that drove
        its diagonals to large values therefore leaves the array with a
        shrunken scale — and a proportionally inflated
        :attr:`min_coefficient` floor — even after the coefficients are
        rewritten to modest values.  Reusing such an array for a fresh
        solve degrades convergence.

        This recomputes the scales a fresh programming of the current
        coefficient matrix would choose and reprograms exactly the rows
        whose scale moved.  When no drift happened it writes nothing.
        """
        fresh = self._fresh_scales()
        moved = ~np.isclose(fresh, self._scales, rtol=1e-12, atol=0.0)
        rows = np.nonzero(moved)[0]
        if rows.size == 0:
            return WriteReport(0, 0, 0.0, 0.0)
        self._scales[rows] = fresh[rows]
        self._solve_gain_cache = None
        report = self._program_rows(rows)
        if rows.size == self.n_out:
            self._full_reprograms += 1
        return report

    def _update_row_scaled(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        floor_to_representable: bool,
    ) -> WriteReport:
        affected = np.unique(rows)
        row_max = self._coefficients[affected, :].max(axis=1, initial=0.0)
        peak_target = row_max * self._scales[affected]
        rescale = (peak_target > self.params.g_on) | (
            (row_max > 0)
            & (
                peak_target
                < self.params.g_on / (self.scale_headroom
                                      * ROW_SCALE_HYSTERESIS)
            )
        )
        rescale_rows = affected[rescale]
        if rescale_rows.size:
            safe = np.maximum(row_max[rescale], 1e-300)
            self._scales[rescale_rows] = self.params.g_on / (
                safe * self.scale_headroom
            )
            self._solve_gain_cache = None
        if floor_to_representable:
            values = np.maximum(
                values, self.params.g_off / self._scales[rows]
            )
            self._coefficients[rows, cols] = values

        report = WriteReport(0, 0, 0.0, 0.0)
        if rescale_rows.size:
            report = report + self._program_rows(rescale_rows)
        keep = ~np.isin(rows, rescale_rows)
        if np.any(keep):
            k_rows = rows[keep]
            k_cols = cols[keep]
            k_vals, floored = map_cells(
                values[keep],
                self._scales[k_rows],
                self.params,
                off_state=self.off_state,
            )
            self._floored[k_cols, k_rows] = floored
            report = report + self.array.program_cells(
                k_cols, k_rows, k_vals, skip_unchanged=True
            )
        return report

    def redraw_variation(
        self, rng: np.random.Generator | None = None
    ) -> WriteReport:
        """Rewrite every active cell, drawing fresh process variation.

        The recovery ladder's *reprogram* rung: coefficients, scales
        and nominal targets are all unchanged — only the physical
        realization is re-rolled, at O(active cells) cost.  After this
        the solver continues on the differential update path (the A /
        Aᵀ structural blocks are never rebuilt).  Optionally re-seats
        the RNG so the redraw is attributable to an attempt seed.
        """
        if rng is not None:
            self.rng = rng
            self.array.rng = rng
        return self.array.redraw()

    def _solve_gain(self) -> tuple[float, np.ndarray | None]:
        """Cached ``(scale_ref, per-row gain)`` for :meth:`solve`.

        Recomputed only when the scales move (remap / rescale /
        renormalize), not on every iteration's solve.  The gain is
        ``None`` without row scaling — every entry would be exactly
        1.0, so the multiply is skipped.
        """
        cache = self._solve_gain_cache
        if cache is None:
            scale_ref = float(np.max(self._scales))
            gain = self._scales / scale_ref if self.row_scaling else None
            cache = self._solve_gain_cache = (scale_ref, gain)
        return cache

    # -- analog primitives ------------------------------------------------

    def multiply(self, x: np.ndarray) -> np.ndarray:
        """Analog matrix–vector product ``y ≈ A x`` in problem units."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self.n_in,):
            raise ValueError(
                f"expected vector of shape ({self.n_in},), got {x.shape}"
            )
        with self.tracer.span("op.multiply"):
            self.tracer.count("analog.multiplies")
            peak = float(np.max(np.abs(x)))
            if peak < 1e-300:
                # Zero or subnormal drive: below any representable input
                # voltage (and the gain s_x would overflow).
                return np.zeros(self.n_out)
            s_x = self.params.v_read / peak
            v_in = quantize_auto(x * s_x, self.dac_bits, self.quantization)
            v_out = self.array.multiply(v_in)
            v_out = quantize_auto(v_out, self.adc_bits, self.quantization)
            denominators = self.array.nominal_denominators()
            currents = v_out * denominators
            if (
                self.off_state == "leak"
                and self.compensate_leak
                and self._floored.any()
            ):
                # Dummy-row correction: the controller knows which cells
                # sit at the conductance floor and what it drove into
                # them.
                leak = self.params.g_off * (self._floored.T @ v_in)
                currents = currents - leak
            return currents / (self._scales * s_x)

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Analog linear-system solve ``x ≈ A^{-1} b`` in problem units.

        With row scaling, the voltage forced on each bit-line is
        pre-scaled by its row's relative scale — physical row
        equilibration that cancels exactly in the current balance.

        Raises
        ------
        CrossbarSolveError
            If the array is not square or the perturbed system is
            singular (propagated from the array).
        """
        b = np.asarray(b, dtype=float)
        if b.shape != (self.n_out,):
            raise ValueError(
                f"expected vector of shape ({self.n_out},), got {b.shape}"
            )
        with self.tracer.span("op.solve"):
            peak = float(np.max(np.abs(b)))
            if peak < 1e-300:
                # Zero or subnormal target: below any representable
                # voltage.
                self.tracer.count("analog.solves")
                return np.zeros(self.n_in)
            s_b = self.params.v_read / peak
            scale_ref, gain = self._solve_gain()
            v_out = quantize_auto(b * s_b, self.dac_bits, self.quantization)
            if gain is not None:
                v_out = v_out * gain
            v_in = self.array.solve(v_out)
            v_in = quantize_auto(v_in, self.adc_bits, self.quantization)
            # Counted only after the array solve succeeds: the solvers'
            # ``solves`` tally skips attempts that raised.
            self.tracer.count("analog.solves")
            return v_in * scale_ref / (self.array.g_sense * s_b)

    # -- bookkeeping --------------------------------------------------------

    @property
    def write_report(self) -> WriteReport:
        """Accumulated programming cost over this operator's lifetime."""
        return self.array.total_write_report

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AnalogMatrixOperator({self.n_out}x{self.n_in}, "
            f"device={self.params.name!r}, row_scaling={self.row_scaling})"
        )
