"""A batched fleet of analog matrix operators in problem units.

:class:`AnalogOperatorStack` is the fleet counterpart of
:class:`~repro.crossbar.ops.AnalogMatrixOperator`: K same-shape
coefficient matrices realized on one :class:`~repro.crossbar.stack.
CrossbarStack`, with the encode → analog primitive → decode pipeline
evaluated for every member in single batched tensor ops.  The sweep
engine's trial fan-out and the reliability layer's fleet probes use it
to replace K python-level operator round-trips per iteration with one.

Only the paper's **global** fast mapping is supported (one scale per
member); row scaling keeps per-bit-line scale hysteresis state whose
update pattern is inherently data-dependent per member — those runs
stay on the serial operator (the constructor rejects ``row_scaling``).

Parity contract (gated by ``tests/property``): with the numpy backend
and ``"entry"`` quantization, every member's ``multiply``/``solve``/
``update_coefficients``/``renormalize`` results — and its write
counters and RNG stream — are bitwise what a serial operator with the
same settings and generator produces.  ``"vector"`` quantization
needs per-member converter references, so those vectors quantize in a
short member loop around the same batched analog core.
"""

from __future__ import annotations

import numpy as np

from repro.backend import Backend
from repro.crossbar.mapping import map_cells
from repro.crossbar.programming import WriteReport
from repro.crossbar.quantization import quantize_auto
from repro.crossbar.stack import CrossbarStack
from repro.devices.models import HP_TIO2, DeviceParameters
from repro.devices.variation import NoVariation, VariationModel
from repro.exceptions import CrossbarSolveError, MappingError
from repro.obs.tracer import NOOP, Tracer
from repro.reliability.verify import WriteVerifyPolicy


def _quantize_rows(
    values: np.ndarray, bits: int | None, mode: str
) -> np.ndarray:
    """Quantize each row of a ``(K, n)`` batch as its own vector.

    Entry mode is elementwise, so the batch quantizes in one call and
    stays bitwise-identical to per-member quantization; vector mode
    references each member's own peak, so it loops.
    """
    if bits is None or mode == "entry":
        return quantize_auto(values, bits, mode)
    return np.stack(
        [quantize_auto(values[k], bits, mode) for k in range(len(values))]
    )


class AnalogOperatorStack:
    """K same-shape coefficient matrices on one crossbar stack.

    Parameters
    ----------
    matrices:
        Non-negative coefficient matrices, shape ``(K, n_out, n_in)``
        (or a list of K equal-shape 2-D arrays).
    rngs:
        One variation generator per member; member ``k`` consumes
        exactly the draws a serial operator seeded with ``rngs[k]``
        would.
    backend:
        Forwarded to the :class:`~repro.crossbar.stack.CrossbarStack`.
    params, variation, dac_bits, adc_bits, quantization,
    scale_headroom, off_state, compensate_leak, g_sense, write_verify,
    tracer:
        As for :class:`~repro.crossbar.ops.AnalogMatrixOperator`,
        shared by every member.
    """

    def __init__(
        self,
        matrices: np.ndarray,
        *,
        params: DeviceParameters = HP_TIO2,
        variation: VariationModel | None = None,
        rngs: list[np.random.Generator] | None = None,
        dac_bits: int | None = 8,
        adc_bits: int | None = 8,
        quantization: str = "entry",
        scale_headroom: float = 1.0,
        row_scaling: bool = False,
        off_state: str = "zero",
        compensate_leak: bool = True,
        g_sense: float | None = None,
        write_verify: WriteVerifyPolicy | None = None,
        tracer: Tracer | None = None,
        backend: Backend | str | None = None,
    ) -> None:
        if row_scaling:
            raise MappingError(
                "AnalogOperatorStack supports the global mapping only; "
                "row-scaled operators keep per-row hysteresis state and "
                "stay on the serial AnalogMatrixOperator"
            )
        matrices = np.asarray(matrices, dtype=float)
        if matrices.ndim != 3:
            raise MappingError(
                "expected a (K, n_out, n_in) stack of coefficient matrices"
            )
        if matrices.size == 0:
            raise MappingError("cannot wrap an empty matrix stack")
        if not np.all(np.isfinite(matrices)):
            raise MappingError("matrices contain non-finite entries")
        if np.any(matrices < 0):
            raise MappingError(
                "matrices contain negative coefficients; memristance is "
                "non-negative — eliminate negatives first (Eqn. 13)"
            )
        if scale_headroom < 1.0:
            raise ValueError("scale_headroom must be >= 1")
        if off_state not in ("zero", "leak"):
            raise ValueError(f"unknown off_state {off_state!r}")
        if quantization not in ("entry", "vector"):
            raise ValueError(f"unknown quantization mode {quantization!r}")
        self.params = params
        self.variation = variation if variation is not None else NoVariation()
        self.dac_bits = dac_bits
        self.adc_bits = adc_bits
        self.quantization = quantization
        self.scale_headroom = float(scale_headroom)
        self.off_state = off_state
        self.compensate_leak = bool(compensate_leak)
        self.tracer = tracer if tracer is not None else NOOP

        self.n_members, self.n_out, self.n_in = matrices.shape
        self._coefficients = matrices.copy()
        self.stack = CrossbarStack(
            self.n_members,
            self.n_in,
            self.n_out,
            params=params,
            variation=self.variation,
            g_sense=g_sense,
            rngs=rngs,
            write_verify=write_verify,
            tracer=self.tracer,
            backend=backend,
        )
        self._scales = self._fresh_scales(np.arange(self.n_members))
        self._floored = np.zeros(
            (self.n_members, self.n_in, self.n_out), dtype=bool
        )
        self._full_reprograms = np.zeros(self.n_members, dtype=int)
        self._program_rows(np.arange(self.n_out), np.arange(self.n_members))
        self._full_reprograms[:] = 1

    # -- scale management -------------------------------------------------

    def _fresh_scales(self, members: np.ndarray) -> np.ndarray:
        """Per-member no-hysteresis global scales, ``(len(members),)``."""
        a_max = self._coefficients[members].max(axis=(1, 2), initial=0.0)
        a_max = np.where(a_max > 0.0, a_max, 1.0)
        return self.params.g_on / (a_max * self.scale_headroom)

    def _targets_for_rows(
        self, rows: np.ndarray, members: np.ndarray
    ) -> np.ndarray:
        """Conductance targets (G orientation) for coefficient rows.

        Returns ``(len(members), n_in, len(rows))`` and updates the
        floored-cell masks of the selected members.  The global map is
        elementwise, so one batched :func:`map_cells` call matches the
        serial per-member call bitwise.
        """
        values = self._coefficients[members][:, rows, :]
        block, floored = map_cells(
            values,
            self._scales[members, None, None],
            self.params,
            off_state=self.off_state,
        )
        self._floored[np.ix_(members, np.arange(self.n_in), rows)] = (
            floored.transpose(0, 2, 1)
        )
        return block.transpose(0, 2, 1)

    def _program_rows(
        self, rows: np.ndarray, members: np.ndarray
    ) -> list[WriteReport | None]:
        """(Re)program all cells of the given coefficient rows.

        Differential, like the serial path: unchanged cells are skipped
        per member, so a "full" reprogram costs O(cells that move).
        """
        rows = np.asarray(rows, dtype=int)
        targets = self._targets_for_rows(rows, members)
        grid_in, grid_rows = np.meshgrid(
            np.arange(self.n_in), rows, indexing="ij"
        )
        return self.stack.program_cells(
            grid_in.ravel(),
            grid_rows.ravel(),
            targets.reshape(len(members), -1),
            skip_unchanged=True,
            members=members,
        )

    # -- public accessors --------------------------------------------------

    @property
    def coefficients(self) -> np.ndarray:
        """Nominal coefficient matrices ``(K, n_out, n_in)``; copy."""
        return self._coefficients.copy()

    @property
    def scales(self) -> np.ndarray:
        """Per-member global coefficient-to-conductance scales; copy."""
        return self._scales.copy()

    @property
    def min_coefficients(self) -> np.ndarray:
        """Per-member representable-coefficient floors, ``(K,)``."""
        return self.params.g_off / self._scales

    @property
    def full_reprograms(self) -> np.ndarray:
        """Per-member whole-array programming events (incl. the first)."""
        return self._full_reprograms.copy()

    @property
    def write_reports(self) -> list[WriteReport]:
        """Per-member accumulated programming cost."""
        return self.stack.total_write_reports

    # -- coefficient updates -----------------------------------------------

    def update_coefficients(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        *,
        floor_to_representable: bool = False,
        members=None,
    ) -> list[WriteReport | None]:
        """Rewrite ``A_k[rows, cols] = values[k]`` across the fleet.

        The batched form of the O(N) iteration-update primitive:
        ``rows``/``cols`` are shared; ``values`` is ``(c,)`` (same
        update everywhere), ``(K, c)``, or ``(len(members), c)``.
        Members whose new values outgrow the programmed window remap
        individually (new scale, full differential reprogram), exactly
        like the serial operator; the rest share one batched cell
        write.

        Returns a K-long report list (``None`` for unselected members).
        """
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        values = np.asarray(values, dtype=float)
        if rows.shape != cols.shape or rows.ndim != 1:
            raise ValueError("rows and cols must be matching 1-D arrays")
        selected = self.stack._member_indices(members)
        if values.ndim == 1:
            if values.shape != rows.shape:
                raise ValueError("rows, cols, values must have matching shapes")
            values = np.broadcast_to(
                values, (selected.size, rows.size)
            ).copy()
        elif values.shape == (self.n_members, rows.size):
            values = values[selected].copy()
        elif values.shape == (selected.size, rows.size):
            values = values.copy()
        else:
            raise ValueError(
                f"values must be ({rows.size},), "
                f"({self.n_members}, {rows.size}) or "
                f"({selected.size}, {rows.size}), got {values.shape}"
            )
        if values.size == 0:
            return self.stack.program_cells(
                np.empty(0, dtype=int),
                np.empty(0, dtype=int),
                np.empty(0),
                members=selected,
            )
        if values.min() < 0:
            raise MappingError("coefficients must be non-negative")

        self._coefficients[
            selected[:, None], rows[None, :], cols[None, :]
        ] = values

        scale = self._scales[selected]
        needs_remap = values.max(axis=1) * scale > self.params.g_on
        if needs_remap.any():
            a_max = np.maximum(
                self._coefficients[selected].max(axis=(1, 2)), 1e-300
            )
            scale_after = np.where(
                needs_remap,
                self.params.g_on / (a_max * self.scale_headroom),
                scale,
            )
        else:
            scale_after = scale
        if floor_to_representable:
            values = np.maximum(
                values, self.params.g_off / scale_after[:, None]
            )
            self._coefficients[
                selected[:, None], rows[None, :], cols[None, :]
            ] = values

        results: list[WriteReport | None] = [None] * self.n_members
        remap_members = selected[needs_remap]
        if remap_members.size:
            self._scales[remap_members] = scale_after[needs_remap]
            reports = self._program_rows(
                np.arange(self.n_out), remap_members
            )
            self._full_reprograms[remap_members] += 1
            for member in remap_members:
                results[member] = reports[member]
        keep = ~needs_remap
        if keep.any():
            keep_members = selected[keep]
            targets, floored = map_cells(
                values[keep],
                scale[keep, None],
                self.params,
                off_state=self.off_state,
            )
            # Crossbar cell (i, j) carries coefficient A[j, i].
            self._floored[
                keep_members[:, None], cols[None, :], rows[None, :]
            ] = floored
            reports = self.stack.program_cells(
                cols, rows, targets, skip_unchanged=True, members=keep_members
            )
            for member in keep_members:
                results[member] = reports[member]
        return results

    def renormalize(self, members=None) -> list[WriteReport | None]:
        """Restore no-hysteresis scales; reprogram only moved members."""
        selected = self.stack._member_indices(members)
        fresh = self._fresh_scales(selected)
        moved = ~np.isclose(fresh, self._scales[selected], rtol=1e-12, atol=0.0)
        results: list[WriteReport | None] = [None] * self.n_members
        for member in selected[~moved]:
            results[member] = WriteReport(0, 0, 0.0, 0.0)
        moved_members = selected[moved]
        if moved_members.size:
            self._scales[moved_members] = fresh[moved]
            reports = self._program_rows(
                np.arange(self.n_out), moved_members
            )
            self._full_reprograms[moved_members] += 1
            for member in moved_members:
                results[member] = reports[member]
        return results

    def redraw_variation(
        self, rngs: list[np.random.Generator] | None = None, members=None
    ) -> list[WriteReport | None]:
        """Fleet redraw: fresh variation for every active cell.

        ``rngs`` optionally re-seats the selected members' generators
        (attempt-seed attribution, as in the serial
        ``redraw_variation``).
        """
        selected = self.stack._member_indices(members)
        if rngs is not None:
            if len(rngs) != selected.size:
                raise ValueError(
                    f"need {selected.size} generators, got {len(rngs)}"
                )
            for pos, member in enumerate(selected):
                self.stack.rngs[int(member)] = rngs[pos]
        return self.stack.redraw(members=selected)

    # -- analog primitives ------------------------------------------------

    def multiply(self, x: np.ndarray, *, members=None) -> np.ndarray:
        """Batched analog products ``y_k ≈ A_k x_k``, one tensor op.

        ``x`` is ``(K, n_in)`` or ``(n_in,)`` broadcast; returns
        ``(K, n_out)``.  Zero/subnormal drives yield zero rows, exactly
        like the serial operator's early return.  With ``members`` set,
        ``x`` is ``(len(selected), n_in)`` and only those members'
        rows are computed (and returned, in index order) — the fleet
        solver uses this to skip converged stragglers.
        """
        selected = self.stack._member_indices(members)
        full = selected.size == self.n_members
        x = np.asarray(x, dtype=float)
        if x.shape == (self.n_in,):
            x = np.broadcast_to(x, (selected.size, self.n_in))
        if x.shape != (selected.size, self.n_in):
            raise ValueError(
                f"expected ({selected.size}, {self.n_in}) inputs, "
                f"got {x.shape}"
            )
        scales = self._scales if full else self._scales[selected]
        floored = self._floored if full else self._floored[selected]
        with self.tracer.span("op.multiply"):
            self.tracer.count("analog.multiplies", selected.size)
            peaks = np.max(np.abs(x), axis=1)
            live = peaks >= 1e-300
            s_x = np.where(live, self.params.v_read / np.where(live, peaks, 1.0), 1.0)
            v_in = _quantize_rows(
                x * s_x[:, None], self.dac_bits, self.quantization
            )
            v_in[~live] = 0.0
            v_out = self.stack.multiply(v_in, members=selected)
            v_out = _quantize_rows(v_out, self.adc_bits, self.quantization)
            denominators = self.stack.nominal_denominators(selected)
            currents = v_out * denominators
            if (
                self.off_state == "leak"
                and self.compensate_leak
                and floored.any()
            ):
                # Dummy-row correction; members with no floored cells
                # get an exact-zero leak term, so applying it fleet-wide
                # is bitwise what per-member gating computes.
                leak = self.params.g_off * np.matmul(
                    floored.transpose(0, 2, 1).astype(float),
                    v_in[:, :, None],
                )[:, :, 0]
                currents = currents - leak
            out = currents / (scales[:, None] * s_x[:, None])
            out[~live] = 0.0
            return out

    def try_solve(
        self, b: np.ndarray, *, members=None
    ) -> tuple[np.ndarray, list[CrossbarSolveError | None]]:
        """Batched analog solves ``x_k ≈ A_k^{-1} b_k`` with isolation.

        One backend ``linalg.solve`` over the fleet; a singular member
        degrades only itself (its row is zeros and its slot in the
        error list holds the :class:`CrossbarSolveError`), mirroring
        serial per-operator failure semantics.  With ``members`` set,
        ``b`` is ``(len(selected), n_out)`` and the solutions/error
        list are selected-length, in index order.
        """
        selected = self.stack._member_indices(members)
        full = selected.size == self.n_members
        b = np.asarray(b, dtype=float)
        if b.shape == (self.n_out,):
            b = np.broadcast_to(b, (selected.size, self.n_out))
        if b.shape != (selected.size, self.n_out):
            raise ValueError(
                f"expected ({selected.size}, {self.n_out}) targets, "
                f"got {b.shape}"
            )
        scales = self._scales if full else self._scales[selected]
        with self.tracer.span("op.solve"):
            peaks = np.max(np.abs(b), axis=1)
            live = peaks >= 1e-300
            s_b = np.where(live, self.params.v_read / np.where(live, peaks, 1.0), 1.0)
            v_out = _quantize_rows(
                b * s_b[:, None], self.dac_bits, self.quantization
            )
            v_out[~live] = 0.0
            v_in, errors = self.stack.try_solve(v_out, members=selected)
            v_in = _quantize_rows(v_in, self.adc_bits, self.quantization)
            solved = sum(
                1 for index in range(selected.size)
                if errors[index] is None
            )
            self.tracer.count("analog.solves", solved)
            out = v_in * scales[:, None] / (
                self.stack.g_sense * s_b[:, None]
            )
            out[~live] = 0.0
            for index, error in enumerate(errors):
                if error is not None:
                    out[index] = 0.0
            return out, errors

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Batched solve; raises if *any* member's system is singular."""
        solutions, errors = self.try_solve(b)
        for error in errors:
            if error is not None:
                raise error
        return solutions

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AnalogOperatorStack({self.n_members}x{self.n_out}x"
            f"{self.n_in}, device={self.params.name!r}, "
            f"backend={self.stack.backend.name!r})"
        )
