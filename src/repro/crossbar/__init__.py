"""Memristor crossbar array simulator.

The analog substrate of the LP solver: conductance mapping, the
crossbar array with its two analog primitives (multiply / solve),
write-pulse programming costs, DAC/ADC quantization, and a detailed
nodal-analysis circuit model for parasitic validation.
"""

from repro.crossbar.array import CrossbarArray
from repro.crossbar.circuit import DetailedCrossbarCircuit
from repro.crossbar.mapping import (
    ConductanceMapping,
    DynamicRangeReport,
    dynamic_range_report,
    map_matrix,
    shared_scale,
)
from repro.crossbar.ops import AnalogMatrixOperator
from repro.crossbar.opstack import AnalogOperatorStack
from repro.crossbar.programming import WriteReport, plan_write
from repro.crossbar.quantization import (
    IdealConverter,
    Quantizer,
    quantize_auto,
)
from repro.crossbar.stack import CrossbarStack

__all__ = [
    "CrossbarArray",
    "DetailedCrossbarCircuit",
    "ConductanceMapping",
    "DynamicRangeReport",
    "dynamic_range_report",
    "map_matrix",
    "shared_scale",
    "AnalogMatrixOperator",
    "AnalogOperatorStack",
    "CrossbarStack",
    "WriteReport",
    "plan_write",
    "Quantizer",
    "IdealConverter",
    "quantize_auto",
]
