"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class MappingError(ReproError):
    """A matrix cannot be mapped onto a memristor crossbar.

    Raised for negative coefficients (memristance is non-negative),
    non-finite entries, or matrices exceeding the array dimensions.
    """


class CrossbarSolveError(ReproError):
    """The analog linear-system solve failed.

    The perturbed conductance matrix was singular or so ill-conditioned
    that the read-out is meaningless.  Section 4.3 of the paper
    discusses exactly this failure mode; callers may retry with a fresh
    variation draw (the paper's "double checking scheme").
    """


class ConvergenceError(ReproError):
    """An iterative solver failed to converge within its iteration cap."""


class InfeasibleProblemError(ReproError):
    """The linear program was detected to be infeasible."""


class PartitionError(ReproError):
    """A matrix cannot be partitioned onto the given NoC tile grid."""


class ServiceError(ReproError):
    """Base class for solver-service (serving layer) errors."""


class UnknownJobError(ServiceError):
    """A resolve request named a base job the service never admitted.

    Raised at admission time (``SolverService.resolve`` /
    ``try_submit`` with a :class:`~repro.service.jobs.ResolveSpec`):
    a parameter-only re-solve needs its base job's structure and
    stored optimum, so an unknown ``base_job_id`` is a client error —
    the front door maps it to a structured 404-style reject.
    """


class QueueFullError(ServiceError):
    """The job queue rejected a submission (admission control).

    The serving layer bounds its queue depth; when the bound is hit,
    ``submit`` raises this instead of growing without limit.  Callers
    apply backpressure: drain completed work (or use
    ``try_submit``) before submitting more.
    """
