"""Command-line interface: ``python -m repro <command>``.

Commands
--------
- ``solve`` — solve a random LP of a given size on a chosen solver and
  print the outcome (a smoke test of the whole stack); exits non-zero
  when the solve is inconclusive.
- ``sweep`` — run one experiment sweep on the parallel, resumable
  engine (``--workers N --resume cache.jsonl``).
- ``figures`` — regenerate the paper's figure tables (same engine as
  ``examples/reproduce_figures.py``).
- ``parasitics`` — the IR-drop tile-size study.
- ``serve`` — run a synthetic job batch through the solver service
  (crossbar fleet pool + programming cache + job queue).
- ``batch`` — run a JSONL job file through the solver service and emit
  per-job result records.

Installed as the ``repro`` console script (``pip install -e .``), or
runnable as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib

import numpy as np

from repro.baselines import solve_scipy
from repro.costmodel import estimate_energy, estimate_latency
from repro.devices import variation_from_percent
from repro.devices.faults import StuckAtFaults
from repro.reliability import (
    ProbePolicy,
    RecoveryPolicy,
    WriteVerifyPolicy,
    describe_attempts,
)
from repro.experiments import (
    SweepConfig,
    run_sweep,
    accuracy_sweep,
    energy_sweep,
    infeasibility_sweep,
    latency_sweep,
    max_usable_tile,
    paper_scale,
    parasitics_sweep,
    render_accuracy,
    render_energy,
    render_infeasibility,
    render_latency,
    render_parasitics,
    settings_for,
    solver_for,
)
from repro.experiments.engine import SPEC_REFS, resolve_spec
from repro.obs import (
    RecordingTracer,
    write_metrics_textfile,
    write_trace_jsonl,
)
from repro.obs.clock import Stopwatch
from repro.exceptions import UnknownJobError
from repro.presolve import (
    PresolveStatus,
    detect_infeasible,
    infeasible_result,
    presolve,
)
from repro.service import (
    FaultCampaign,
    FrontDoor,
    ServiceConfig,
    ServiceTelemetry,
    SolverService,
    TenantPolicy,
    read_jobs_jsonl,
    summarize,
    synthesize_jobs,
)
from repro.workloads import (
    random_feasible_lp,
    random_infeasible_lp,
    rolling_horizon_stream,
)

_FIGURES = {
    "fig5a": (accuracy_sweep, render_accuracy, "crossbar"),
    "fig5b": (accuracy_sweep, render_accuracy, "large_scale"),
    "fig6a": (latency_sweep, render_latency, "crossbar"),
    "fig6b": (latency_sweep, render_latency, "large_scale"),
    "fig7a": (energy_sweep, render_energy, "crossbar"),
    "fig7b": (energy_sweep, render_energy, "large_scale"),
    "infeasibility": (
        infeasibility_sweep,
        render_infeasibility,
        "crossbar",
    ),
}


def _reliability_solver(args: argparse.Namespace, tracer=None):
    """A solver callable honouring the CLI's reliability flags."""
    from repro.core import (
        CrossbarPDIPSolver,
        LargeScaleCrossbarPDIPSolver,
    )

    overrides: dict = {}
    if args.write_verify is not None:
        overrides["write_verify"] = WriteVerifyPolicy(
            tolerance=args.write_verify
        )
    settings = settings_for(args.solver, args.variation, **overrides)
    if args.stuck_off > 0 or args.stuck_on > 0:
        settings = dataclasses.replace(
            settings,
            variation=StuckAtFaults(
                settings.device,
                stuck_on_rate=args.stuck_on,
                stuck_off_rate=args.stuck_off,
                base=variation_from_percent(args.variation),
            ),
        )
    recovery = RecoveryPolicy(
        reprograms=settings.retries,
        remaps=args.remaps,
        digital_fallback=(
            None if args.fallback == "none" else args.fallback
        ),
        probe=ProbePolicy() if args.probe else None,
    )
    cls = (
        CrossbarPDIPSolver
        if args.solver == "crossbar"
        else LargeScaleCrossbarPDIPSolver
    )

    def solve(problem, rng):
        return cls(
            problem, settings, rng=rng, recovery=recovery, tracer=tracer
        ).solve()

    return solve, settings


def _cmd_solve(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    if args.infeasible:
        problem = random_infeasible_lp(args.constraints, rng=rng)
    else:
        problem = random_feasible_lp(args.constraints, rng=rng)

    # Presolve admission screen: a provably infeasible instance is
    # classified here with zero crossbar programming — the same
    # zero-cell path the serving layer takes.  Feasible instances pass
    # through with byte-identical output to before.
    certificate = detect_infeasible(problem)
    if certificate is not None:
        result = infeasible_result(problem, certificate)
        print(f"problem: {problem}")
        print(
            f"{args.solver}: status={result.status} "
            f"objective={result.objective:.6g} "
            f"iterations={result.iterations}"
        )
        print(f"failure reason: {result.failure_reason.value}")
        print(f"presolve certificate: {certificate}")
        return 0

    truth = solve_scipy(problem)
    tracer = (
        RecordingTracer()
        if (args.trace_out or args.metrics_out)
        else None
    )
    reliability_flags = (
        args.stuck_off > 0
        or args.stuck_on > 0
        or args.fallback != "none"
        or args.probe
        or args.remaps > 0
        or args.write_verify is not None
    )
    if reliability_flags and args.solver != "reference":
        solve, _ = _reliability_solver(args, tracer)
    else:
        solve = solver_for(args.solver, args.variation, tracer=tracer)
    presolved = None
    if args.presolve:
        presolved = presolve(problem, scaling=args.scaling)
        if presolved.report.status is PresolveStatus.REDUCED:
            result = presolved.postsolve(
                solve(
                    presolved.problem,
                    np.random.default_rng(args.seed + 1),
                )
            )
        else:
            result = presolved.solution()
    else:
        result = solve(problem, np.random.default_rng(args.seed + 1))
    print(f"problem: {problem}")
    if presolved is not None:
        print(f"presolve: {presolved.report.summary()}")
    print(f"scipy optimum: {truth.objective:.6g}")
    # elapsed_seconds is deliberately not printed: same-seed output is
    # byte-identical, and a wall-clock field would break that.
    print(
        f"{args.solver}: status={result.status} "
        f"objective={result.objective:.6g} "
        f"iterations={result.iterations}"
    )
    if truth.objective:
        error = abs(result.objective - truth.objective) / abs(
            truth.objective
        )
        print(f"relative error: {error:.4%}")
    if result.crossbar is not None:
        settings = settings_for(args.solver, args.variation)
        latency = estimate_latency(result, settings.device)
        energy = estimate_energy(result, settings.device)
        print(
            f"modeled hardware: {latency.total_s * 1e3:.3f} ms, "
            f"{energy.total_j * 1e3:.3f} mJ"
        )
    if result.failure_reason.value != "none":
        print(f"failure reason: {result.failure_reason.value}")
    if result.attempts:
        print("attempt history:")
        for line in describe_attempts(result.attempts).splitlines():
            print(f"  {line}")
    if tracer is not None:
        if args.trace_out:
            path = write_trace_jsonl(
                tracer, pathlib.Path(args.trace_out)
            )
            print(f"trace written: {path}")
        if args.metrics_out:
            path = write_metrics_textfile(
                tracer, pathlib.Path(args.metrics_out)
            )
            print(f"metrics written: {path}")
    # A conclusive classification (optimal / infeasible) is success;
    # anything else exits non-zero so scripts and CI can gate on it.
    return 0 if result.success else 1


def _cmd_figures(args: argparse.Namespace) -> int:
    config = paper_scale() if args.paper_scale else SweepConfig()
    targets = sorted(_FIGURES) if "all" in args.targets else args.targets
    for target in targets:
        sweep, render, solver = _FIGURES[target]
        print(f"\n=== {target} ({solver}) ===")
        print(render(sweep(solver, config, workers=args.workers)))
    return 0


def _sweep_grid(args: argparse.Namespace) -> SweepConfig:
    """The grid a ``repro sweep`` invocation selects."""
    base = paper_scale() if args.paper_scale else SweepConfig()
    return SweepConfig(
        sizes=(
            tuple(int(m) for m in args.sizes.split(","))
            if args.sizes
            else base.sizes
        ),
        variations=(
            tuple(int(v) for v in args.variations.split(","))
            if args.variations
            else base.variations
        ),
        trials=args.trials if args.trials is not None else base.trials,
        seed=args.seed if args.seed is not None else base.seed,
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = resolve_spec(args.experiment)
    config = _sweep_grid(args)
    tracer = (
        RecordingTracer()
        if (args.trace_out or args.metrics_out)
        else None
    )
    run = run_sweep(
        args.experiment,
        args.solver,
        config,
        workers=args.workers,
        tracer=tracer,
        cache_path=args.resume,
        batch_trials=args.batch_trials,
    )
    print(spec.render(run.rows))
    cells = len(run.outcomes)
    print(
        f"\n{cells} cells: {run.executed} executed, "
        f"{run.skipped} restored from cache, "
        f"{len(run.failures)} failed "
        f"({run.workers} worker(s), {run.elapsed_seconds:.2f} s, "
        f"fingerprint {run.fingerprint})"
    )
    if args.resume:
        print(f"cell cache: {args.resume}")
    for outcome in run.failures:
        f = outcome.failure
        print(
            f"FAILED cell size={outcome.key.size} "
            f"variation={outcome.key.variation} trial={outcome.key.trial}: "
            f"{f.failure_reason} ({f.error_type}: {f.message})"
        )
    if tracer is not None:
        if args.trace_out:
            path = write_trace_jsonl(tracer, pathlib.Path(args.trace_out))
            print(f"trace written: {path}")
        if args.metrics_out:
            path = write_metrics_textfile(
                tracer, pathlib.Path(args.metrics_out)
            )
            print(f"metrics written: {path}")
    return 1 if run.failures else 0


def _cmd_parasitics(args: argparse.Namespace) -> int:
    rows = parasitics_sweep()
    print(render_parasitics(rows))
    budgets = max_usable_tile(rows, args.budget)
    print(f"\nmax tile size within {args.budget:.1%} IR-drop budget:")
    for resistance, size in sorted(budgets.items()):
        label = str(size) if size else "none sampled"
        print(f"  wire {resistance:4.1f} ohm -> {label}")
    return 0


def _parse_tenant_policy(text: str) -> TenantPolicy:
    """Parse one ``--tenant NAME[:WEIGHT[:INFLIGHT[:QUEUED]]]`` spec."""
    parts = text.split(":")
    if not parts[0] or len(parts) > 4:
        raise SystemExit(
            f"bad --tenant spec {text!r}; expected "
            f"NAME[:WEIGHT[:MAX_INFLIGHT[:MAX_QUEUED]]]"
        )
    try:
        return TenantPolicy(
            tenant=parts[0],
            weight=float(parts[1]) if len(parts) > 1 else 1.0,
            max_in_flight=(
                int(parts[2]) if len(parts) > 2 and parts[2] else None
            ),
            max_queued=(
                int(parts[3]) if len(parts) > 3 and parts[3] else None
            ),
        )
    except ValueError as exc:
        raise SystemExit(f"bad --tenant spec {text!r}: {exc}")


def _service_from_args(args: argparse.Namespace, tracer, telemetry=None):
    """Build the configured :class:`SolverService` for serve/batch."""
    campaign = None
    if args.chaos is not None:
        path = pathlib.Path(args.chaos)
        if not path.is_file():
            raise SystemExit(f"--chaos scenario not found: {path}")
        campaign = FaultCampaign.from_json(path)
    workers = args.workers if args.workers else args.pool_size
    config = ServiceConfig(
        pool_size=args.pool_size,
        queue_depth=args.queue_depth,
        max_attempts=args.max_attempts,
        cache_enabled=not args.no_cache,
        base_seed=args.seed,
        digital_fallback=(
            None if args.fallback == "none" else args.fallback
        ),
        deadline_s=args.deadline,
        campaign=campaign,
        workers=workers,
        executor=args.executor,
        device_latency_s=args.device_latency,
        tenants=tuple(
            _parse_tenant_policy(text) for text in args.tenant or ()
        ),
        presolve=not args.no_presolve,
        warm_start=not args.no_warm_start,
    )
    service = SolverService(config, tracer=tracer, telemetry=telemetry)
    if args.inject_fault is not None:
        if not 0 <= args.inject_fault < args.pool_size:
            raise SystemExit(
                f"--inject-fault {args.inject_fault} out of range for "
                f"pool size {args.pool_size}"
            )
        service.pool.inject_fault(args.inject_fault, 0.5)
    return service


def _run_service(args: argparse.Namespace, specs) -> int:
    """Shared serve/batch body: run, report, export."""
    tracer = (
        RecordingTracer()
        if (args.trace_out or args.metrics_out)
        else None
    )
    flight_dir = (
        pathlib.Path(args.flight_dir) if args.flight_dir else None
    )
    if flight_dir is not None:
        flight_dir.mkdir(parents=True, exist_ok=True)
    telemetry = ServiceTelemetry(flight_dir=flight_dir)
    service = _service_from_args(args, tracer, telemetry)

    completed = 0
    last_stats_at = 0

    def on_record(record) -> None:
        nonlocal completed, last_stats_at
        completed += 1
        if args.stats_every and completed % args.stats_every == 0:
            last_stats_at = completed
            print(f"[stats] {telemetry.stats_line()}", flush=True)

    records, summary = service.batch(specs, on_record=on_record)
    if args.stats_every and completed != last_stats_at:
        # Final flush: the queue drained between intervals, so the
        # last jobs would otherwise never appear in a stats line.
        print(f"[stats] {telemetry.stats_line()}", flush=True)
    if args.out:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        with out.open("w", encoding="utf-8") as handle:
            for record in records:
                handle.write(
                    json.dumps(record.to_dict(), sort_keys=True) + "\n"
                )
        print(f"records written: {out}")
    for record in records:
        marker = "warm" if record.warm else "cold"
        placement = (
            "fallback"
            if record.fallback
            else f"member {record.member} ({marker})"
        )
        line = (
            f"{record.spec.job_id}: {record.result.status.value:<17} "
            f"{placement}"
        )
        if record.requeues:
            line += f" requeues={record.requeues}"
        print(line)
    print()
    print(summary.render())
    _print_resolve_summary(records)
    campaign = service.config.campaign
    if campaign is not None:
        print(
            f"chaos:         {campaign.fired}/{len(campaign)} events "
            f"fired ({campaign.name})"
        )
    recorder = telemetry.recorder
    if recorder.dumps:
        print(f"flight recordings: {len(recorder.dumps)} dumped")
        for dump in recorder.dumps:
            print(f"  {dump}")
    elif recorder.trips and flight_dir is None:
        print(
            f"flight recorder: {recorder.trips} trip(s) not dumped "
            f"(pass --flight-dir to keep them)"
        )
    if tracer is not None:
        if args.trace_out:
            path = write_trace_jsonl(tracer, pathlib.Path(args.trace_out))
            print(f"trace written: {path}")
        if args.metrics_out:
            path = write_metrics_textfile(
                tracer,
                pathlib.Path(args.metrics_out),
                registry=telemetry.registry,
            )
            print(f"metrics written: {path}")
    return 1 if summary.failed else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.listen is not None:
        return _run_frontdoor(args)
    specs = synthesize_jobs(
        args.jobs,
        groups=args.groups,
        constraints=args.constraints,
        variation=args.variation,
        infeasible_every=args.infeasible_every,
        tenants=args.tenants,
    )
    return _run_service(args, specs)


def _run_frontdoor(args: argparse.Namespace) -> int:
    """``repro serve --listen``: take jobs over HTTP until Ctrl-C."""
    host, _, port_text = args.listen.rpartition(":")
    if not host or not port_text.isdigit():
        raise SystemExit(
            f"bad --listen address {args.listen!r}; expected HOST:PORT"
        )
    tracer = (
        RecordingTracer()
        if (args.trace_out or args.metrics_out)
        else None
    )
    flight_dir = (
        pathlib.Path(args.flight_dir) if args.flight_dir else None
    )
    if flight_dir is not None:
        flight_dir.mkdir(parents=True, exist_ok=True)
    telemetry = ServiceTelemetry(flight_dir=flight_dir)
    service = _service_from_args(args, tracer, telemetry)

    completed = 0

    def on_record(record) -> None:
        nonlocal completed
        completed += 1
        if args.stats_every and completed % args.stats_every == 0:
            print(f"[stats] {telemetry.stats_line()}", flush=True)

    door = FrontDoor(
        service,
        host=host,
        port=int(port_text),
        on_record=on_record,
    )
    bound_host, bound_port = door.address
    print(
        f"listening on http://{bound_host}:{bound_port} "
        f"(POST /submit, GET /stream, /stats, /healthz; Ctrl-C stops)",
        flush=True,
    )
    with Stopwatch() as clock:
        records = door.serve_forever()
    summary = summarize(records, clock.elapsed_seconds)
    if args.stats_every:
        print(f"[stats] {telemetry.stats_line()}", flush=True)
    print()
    print(summary.render())
    if tracer is not None:
        if args.trace_out:
            path = write_trace_jsonl(tracer, pathlib.Path(args.trace_out))
            print(f"trace written: {path}")
        if args.metrics_out:
            path = write_metrics_textfile(
                tracer,
                pathlib.Path(args.metrics_out),
                registry=telemetry.registry,
            )
            print(f"metrics written: {path}")
    return 1 if summary.failed else 0


def _print_resolve_summary(records) -> None:
    """Epilogue for batches containing re-solve jobs: placement cost."""
    resolves = [
        record
        for record in records
        if getattr(record.spec, "base_job_id", None) is not None
    ]
    if not resolves:
        return
    warm = sum(1 for record in resolves if record.warm)
    paid = sum(
        attempt.program_cells
        for record in resolves
        for attempt in record.attempts
    )
    cold_costs = [
        attempt.program_cells
        for record in records
        if getattr(record.spec, "base_job_id", None) is None
        for attempt in record.attempts
        if not attempt.warm and attempt.program_cells > 0
    ]
    line = (
        f"re-solves:     {len(resolves)} jobs, {warm} warm placements, "
        f"{paid} programming cells paid"
    )
    if cold_costs:
        line += (
            f" (a cold program costs "
            f"{max(cold_costs)} cells per placement)"
        )
    print(line)


def _cmd_resolve(args: argparse.Namespace) -> int:
    _, specs = rolling_horizon_stream(
        args.steps,
        constraints=args.constraints,
        seed=args.seed,
        drift=args.drift,
    )
    return _run_service(args, specs)


def _cmd_batch(args: argparse.Namespace) -> int:
    specs = list(read_jobs_jsonl(args.jobs_file))
    if not specs:
        raise SystemExit(f"no jobs in {args.jobs_file}")
    try:
        return _run_service(args, specs)
    except UnknownJobError as exc:
        raise SystemExit(f"{args.jobs_file}: {exc}")


def _add_service_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--pool-size", type=int, default=2,
                        help="crossbar fleet members")
    parser.add_argument("--queue-depth", type=int, default=64,
                        help="admission bound of the job queue")
    parser.add_argument("--max-attempts", type=int, default=3,
                        help="analog attempts per job before fallback")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed of all derived randomness")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the programming cache "
                             "(every placement reprograms)")
    parser.add_argument("--fallback",
                        choices=("none", "reference", "scipy"),
                        default="none",
                        help="digital fallback after analog attempts")
    parser.add_argument("--inject-fault", type=int, default=None,
                        metavar="MEMBER",
                        help="knock half the rows of this pool member "
                             "stuck-OFF before the batch")
    parser.add_argument("--chaos", default=None, metavar="SCENARIO",
                        help="JSON fault-campaign scenario to fire "
                             "during the batch (see DESIGN.md §13)")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="default per-job wall-clock budget from "
                             "first dispatch")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write per-job JSONL records here")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write the merged JSONL trace here")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write a Prometheus-style textfile here "
                             "(includes the live-telemetry registry)")
    parser.add_argument("--stats-every", type=int, default=0,
                        metavar="N",
                        help="print a one-line live stats summary every "
                             "N completed jobs (jobs/s, p50/p99 "
                             "latency, energy/job, queue depth, tier, "
                             "breaker states, SLO burn); 0 disables")
    parser.add_argument("--flight-dir", default=None, metavar="DIR",
                        help="dump flight-recorder JSONL rings here on "
                             "job failure, breaker OPEN, or brownout "
                             "tier change")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="dispatcher worker threads; 1 (default) "
                             "is the serial byte-identical scheduler, "
                             "0 means one per pool member")
    parser.add_argument("--executor", choices=("thread", "process"),
                        default="thread",
                        help="where concurrent solves run: in the "
                             "worker thread (GIL-shared) or a "
                             "pre-warmed worker-process pool")
    parser.add_argument("--device-latency", type=float, default=0.0,
                        metavar="SECONDS",
                        help="hardware-in-the-loop emulation: each "
                             "analog attempt occupies its member this "
                             "long after the simulated solve (models "
                             "blocking on a physical array; 0 off)")
    parser.add_argument("--tenant", action="append", default=None,
                        metavar="NAME[:WEIGHT[:INFLIGHT[:QUEUED]]]",
                        help="per-tenant fairness policy (repeatable): "
                             "DRR weight, in-flight cap, queue cap; "
                             "unlisted tenants get weight 1, no caps")
    parser.add_argument("--no-presolve", action="store_true",
                        help="disable the presolve infeasibility "
                             "screen at first dispatch")
    parser.add_argument("--no-warm-start", action="store_true",
                        help="disable warm-starting re-solve jobs "
                             "from their base job's optimum")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Memristor-crossbar LP solver (paper reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="solve a random LP")
    solve.add_argument("--constraints", type=int, default=24)
    solve.add_argument(
        "--solver",
        choices=("crossbar", "large_scale", "reference"),
        default="crossbar",
    )
    solve.add_argument("--variation", type=float, default=0.0,
                       help="process variation percent (e.g. 10)")
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--stuck-off", type=float, default=0.0,
                       help="stuck-OFF (open cell) fault rate")
    solve.add_argument("--stuck-on", type=float, default=0.0,
                       help="stuck-ON (shorted cell) fault rate")
    solve.add_argument("--remaps", type=int, default=0,
                       help="remap-to-fresh-array rungs in the ladder")
    solve.add_argument("--fallback",
                       choices=("none", "reference", "scipy"),
                       default="none",
                       help="digital fallback after analog attempts")
    solve.add_argument("--probe", action="store_true",
                       help="run array health probes before solving")
    solve.add_argument("--write-verify", type=float, default=None,
                       metavar="TOL",
                       help="closed-loop write-verify tolerance")
    solve.add_argument("--infeasible", action="store_true",
                       help="solve a planted-infeasible instance "
                            "instead (exercises the presolve screen)")
    solve.add_argument("--presolve", action="store_true",
                       help="run the reduction + equilibration "
                            "pipeline before solving and postsolve "
                            "the answer back to original units")
    solve.add_argument("--scaling",
                       choices=("ruiz", "geometric", "none"),
                       default="ruiz",
                       help="equilibration method used by --presolve")
    solve.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write a JSONL span/counter trace here")
    solve.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write a Prometheus-style textfile here")
    solve.set_defaults(func=_cmd_solve)

    sweep = sub.add_parser(
        "sweep",
        help="run one experiment sweep (parallel, resumable)",
        description=(
            "Run one experiment grid on the sweep execution engine. "
            "Rows are bit-identical at any --workers count; --resume "
            "keeps a JSONL cell cache so an interrupted run skips "
            "completed cells when re-invoked."
        ),
    )
    sweep.add_argument(
        "experiment",
        metavar="experiment",
        help=f"one of {', '.join(sorted(SPEC_REFS))}, or any "
             "importable module:SPEC reference",
    )
    sweep.add_argument(
        "--solver",
        choices=("crossbar", "large_scale", "reference"),
        default="crossbar",
    )
    sweep.add_argument("--workers", type=int, default=1,
                       help="process-pool width (1 = inline)")
    sweep.add_argument("--resume", default=None, metavar="CACHE",
                       help="JSONL cell cache; created if absent, "
                            "completed cells are skipped on re-run")
    sweep.add_argument("--paper-scale", action="store_true",
                       help="start from the full Section 4.2 grid")
    sweep.add_argument("--sizes", default=None,
                       help="comma-separated constraint counts")
    sweep.add_argument("--variations", default=None,
                       help="comma-separated variation percents")
    sweep.add_argument("--trials", type=int, default=None,
                       help="trials per (size, variation) cell")
    sweep.add_argument("--seed", type=int, default=None,
                       help="base seed of the cell_seed derivation")
    sweep.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write the merged JSONL trace here")
    sweep.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write a Prometheus-style textfile here")
    sweep.add_argument("--batch-trials", action="store_true",
                       help="solve each cell's trials as one batched "
                            "crossbar fleet (bit-identical rows; "
                            "ignored while tracing)")
    sweep.set_defaults(func=_cmd_sweep)

    figures = sub.add_parser(
        "figures", help="regenerate the paper's figure tables"
    )
    figures.add_argument(
        "targets", nargs="+", choices=sorted(_FIGURES) + ["all"]
    )
    figures.add_argument("--paper-scale", action="store_true")
    figures.add_argument("--workers", type=int, default=1,
                         help="process-pool width for each sweep")
    figures.set_defaults(func=_cmd_figures)

    parasitics = sub.add_parser(
        "parasitics", help="IR-drop tile-size study"
    )
    parasitics.add_argument("--budget", type=float, default=0.02)
    parasitics.set_defaults(func=_cmd_parasitics)

    serve = sub.add_parser(
        "serve",
        help="run a synthetic job batch through the solver service",
        description=(
            "Synthesize a deterministic job batch and run it through "
            "the serving layer: crossbar fleet pool, fingerprint-keyed "
            "programming cache, and bounded priority job queue."
        ),
    )
    serve.add_argument("--jobs", type=int, default=20,
                       help="number of synthetic jobs")
    serve.add_argument("--groups", type=int, default=2,
                       help="structure-sharing groups (jobs in a group "
                            "share the constraint matrix, hence warm "
                            "placements)")
    serve.add_argument("--constraints", type=int, default=24,
                       help="constraints per job")
    serve.add_argument("--variation", type=float, default=0.0,
                       help="process variation percent per job")
    serve.add_argument("--infeasible-every", type=int, default=0,
                       help="plant an infeasible job every k-th job")
    serve.add_argument("--tenants", type=int, default=1,
                       help="spread synthetic jobs round-robin over "
                            "this many tenant buckets")
    serve.add_argument("--listen", default=None, metavar="HOST:PORT",
                       help="serve external traffic over HTTP instead "
                            "of a synthetic batch (POST /submit, GET "
                            "/stream; Ctrl-C drains and exits)")
    _add_service_options(serve)
    serve.set_defaults(func=_cmd_serve)

    batch = sub.add_parser(
        "batch",
        help="run a JSONL job file through the solver service",
        description=(
            "Each input line is a JobSpec object (job_id, constraints, "
            "group, kind, priority, variation) or — when it carries a "
            "base_job_id — a ResolveSpec re-solving an earlier job's "
            "structure with new parameters.  Emits one JSONL result "
            "record per job with --out."
        ),
    )
    batch.add_argument("jobs_file", metavar="jobs.jsonl",
                       help="job specs, one JSON object per line")
    _add_service_options(batch)
    batch.set_defaults(func=_cmd_batch)

    resolve = sub.add_parser(
        "resolve",
        help="run a rolling-horizon warm re-solve stream",
        description=(
            "Solve one base LP cold, then stream parameter-only "
            "re-solves of it through the service's warm re-solve "
            "tier: each step drifts (b, c) and is placed on the pool "
            "member already programmed with the structure, writing "
            "zero programming cells and warm-starting the iterates "
            "from the base optimum."
        ),
    )
    resolve.add_argument("--steps", type=int, default=20,
                         help="number of re-solve steps in the stream")
    resolve.add_argument("--constraints", type=int, default=24,
                         help="constraints of the base instance")
    resolve.add_argument("--drift", type=float, default=0.02,
                         help="per-step relative drift of b and c")
    _add_service_options(resolve)
    resolve.set_defaults(func=_cmd_resolve)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
