"""Bounded, tenant-aware priority job queue with fair scheduling.

The queue bounds how much work callers can park in the service
(``max_depth`` globally, :attr:`TenantPolicy.max_queued` per tenant);
:meth:`JobQueue.submit` raises
:class:`~repro.exceptions.QueueFullError` at either bound so producers
feel backpressure instead of growing an unbounded backlog.  Jobs that
are already *inside* the service and merely being rescheduled after a
member failure re-enter through :meth:`JobQueue.requeue`, which is
exempt from both bounds — admission control must never turn an
accepted job into a lost one.

Ordering is deterministic and two-level:

- **Across tenants** the queue runs deficit round robin (DRR): tenants
  are visited in first-seen order, each visit tops the tenant's
  deficit up by its :attr:`TenantPolicy.weight`, and a pop spends one
  unit of deficit — so over any backlogged interval tenant completions
  converge to the weight ratio, and no tenant can starve another
  regardless of how fast it submits.  A tenant whose sub-queue is
  empty forfeits its deficit (classic DRR: you cannot bank credit
  while idle), and a tenant in the caller's ``blocked`` set (at its
  in-flight cap) is skipped with its deficit frozen.
- **Within a tenant** the original semantics hold unchanged: a binary
  heap on ``(-priority, sequence)``.  Higher priority first; within a
  priority level, submission order (FIFO).  A requeued job keeps its
  original sequence number, so a rescheduled job does not go to the
  back of its priority level.

With a single tenant the DRR layer always elects it, so the pop order
is exactly the pre-tenancy scheduler's — the determinism contract of
``--workers 1`` replay is unchanged.

Requeues also *age*: every trip through :meth:`JobQueue.requeue` bumps
the job's effective priority by ``aging_step``.  Without aging, a
low-priority job that keeps failing on a degraded member can starve
behind a steady stream of fresh high-priority work; with it, a job
that has been rescheduled ``k`` times outranks fresh submissions up to
``base_priority + k * aging_step - 1``, bounding its wait to the work
already ahead of it at that level — starvation-free as long as
admission priorities are bounded.

Thread safety: every public method takes the queue's internal lock, so
concurrent submit / requeue / pop from dispatcher workers and front
door threads never lose or duplicate a job.  The lock covers single
calls only; multi-step invariants (e.g. "pop then mark in-flight") are
the :class:`~repro.service.service.SolverService` scheduler's to hold
under its own lock.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import threading
from typing import Iterable, Mapping

from repro.exceptions import QueueFullError
from repro.obs.clock import Deadline
from repro.service.jobs import DEFAULT_TENANT, JobSpec


@dataclasses.dataclass(frozen=True)
class TenantPolicy:
    """Admission and fairness knobs of one tenant.

    Parameters
    ----------
    tenant:
        Tenant name (the value of :attr:`JobSpec.tenant` it governs).
    weight:
        DRR share relative to other tenants (default 1.0 — equal
        shares).  A tenant with weight 2 completes twice the jobs of a
        weight-1 tenant while both are backlogged.
    max_in_flight:
        Cap on this tenant's concurrently executing jobs, or ``None``
        for no cap.  Enforced by the service scheduler (it passes
        capped tenants as ``blocked`` to :meth:`JobQueue.pop`).
    max_queued:
        Cap on this tenant's *queued* jobs (admission bound), or
        ``None`` for the global bound only.  Requeues are exempt.

    Immutable, hence safe to share across threads.
    """

    tenant: str = DEFAULT_TENANT
    weight: float = 1.0
    max_in_flight: int | None = None
    max_queued: int | None = None

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ValueError("tenant must be non-empty")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1 when set")
        if self.max_queued is not None and self.max_queued < 1:
            raise ValueError("max_queued must be >= 1 when set")


@dataclasses.dataclass
class PendingJob:
    """A job inside the service: its spec plus scheduling state.

    Mutable scheduling state owned by exactly one thread at a time:
    the queue while the job waits (under the queue lock), the worker
    that popped it while an attempt runs.  Never touched from two
    threads concurrently.

    Attributes
    ----------
    spec:
        The immutable job description.
    sequence:
        Admission order; the FIFO tiebreaker within a priority level.
    attempts:
        Attempt history accumulated across reschedules (the service
        appends one :class:`~repro.service.service.JobAttempt` per
        analog attempt).
    excluded_members:
        Pool member ids this job must not be placed on again (members
        it already failed on).
    fingerprint:
        Memoized structural fingerprint of the job's problem, set by
        the service at admission when fingerprint batching is on.
        ``None`` means unknown — the job never matches a ``prefer``
        filter but schedules normally otherwise.
    problem:
        Memoized materialized LP (specs only *name* problems).  Set
        alongside ``fingerprint`` so the attempt path does not derive
        the problem a second time.
    priority_boost:
        Aging credit accumulated across requeues; the heap orders on
        ``spec.priority + priority_boost`` so rescheduled jobs cannot
        starve behind fresh same-priority submissions.
    deadline:
        The job's wall-clock budget, armed at first dispatch (``None``
        until then, and forever when the job has no budget).
    backoff_total_s:
        Accumulated retry-backoff delay across requeues (accounting;
        only *slept* when the backoff policy says so).
    first_dispatch_s:
        Clock reading at first dispatch; lets records report queueing
        and service time separately.  Never serialized.
    submitted_s:
        Clock reading at admission, stamped by the service; with
        ``first_dispatch_s`` it yields the job's queue wait.  Never
        serialized (wall-clock does not replay).
    """

    spec: JobSpec
    sequence: int
    attempts: list = dataclasses.field(default_factory=list)
    excluded_members: set = dataclasses.field(default_factory=set)
    fingerprint: str | None = None
    problem: object | None = None
    priority_boost: int = 0
    deadline: Deadline | None = None
    backoff_total_s: float = 0.0
    first_dispatch_s: float | None = None
    submitted_s: float | None = None

    @property
    def effective_priority(self) -> int:
        """Admission priority plus requeue-aging credit."""
        return self.spec.priority + self.priority_boost

    @property
    def tenant(self) -> str:
        """Tenant this job bills to (from its spec)."""
        return self.spec.tenant


class JobQueue:
    """Deterministic bounded tenant-fair priority queue.

    Thread-safe: all public methods are atomic under an internal lock
    (see module note for what the lock does *not* cover).

    Parameters
    ----------
    max_depth:
        Global admission bound across all tenants.
    aging_step:
        Effective-priority bump per requeue (0 disables aging).
    tenants:
        Per-tenant :class:`TenantPolicy` overrides, keyed by tenant
        name.  Tenants not listed get the default policy (weight 1, no
        caps), so single-tenant callers need not configure anything.
    """

    def __init__(
        self,
        max_depth: int = 64,
        *,
        aging_step: int = 1,
        tenants: Mapping[str, TenantPolicy] | Iterable[TenantPolicy] | None = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be positive")
        if aging_step < 0:
            raise ValueError("aging_step must be non-negative")
        self.max_depth = max_depth
        self.aging_step = aging_step
        self._policies: dict[str, TenantPolicy] = {}
        if tenants is not None:
            entries = (
                tenants.values()
                if isinstance(tenants, Mapping)
                else tenants
            )
            for policy in entries:
                self._policies[policy.tenant] = policy
        self._lock = threading.RLock()
        # tenant -> heap of (-effective_priority, sequence, job); the
        # per-tenant sub-queues behind the DRR election.
        self._heaps: dict[str, list[tuple[int, int, PendingJob]]] = {}
        # DRR election state: first-seen tenant order, a cursor into
        # it, and each tenant's unspent deficit.
        self._order: list[str] = []
        self._cursor = 0
        self._deficit: dict[str, float] = {}
        self._size = 0
        self._sequence = itertools.count()

    def __len__(self) -> int:
        """Total queued jobs across all tenants."""
        with self._lock:
            return self._size

    def __bool__(self) -> bool:
        """Whether any job is queued."""
        return len(self) > 0

    @property
    def full(self) -> bool:
        """Whether the *global* bound would reject a new submission."""
        with self._lock:
            return self._size >= self.max_depth

    def policy_for(self, tenant: str) -> TenantPolicy:
        """The effective :class:`TenantPolicy` of ``tenant``."""
        return self._policies.get(tenant, TenantPolicy(tenant=tenant))

    def eligible(self, blocked: frozenset | set = frozenset()) -> bool:
        """Whether a :meth:`pop` with this ``blocked`` set would
        return a job — i.e. some tenant outside ``blocked`` has
        backlog.  Atomic under the queue lock (advisory only: the
        answer can change as soon as the lock drops unless the caller
        serializes pops itself, as the service scheduler does).
        """
        with self._lock:
            return any(
                heap and tenant not in blocked
                for tenant, heap in self._heaps.items()
            )

    def depths(self) -> dict[str, int]:
        """``tenant -> queued jobs`` snapshot (telemetry surface)."""
        with self._lock:
            return {
                tenant: len(heap)
                for tenant, heap in self._heaps.items()
                if heap
            }

    # -- admission -----------------------------------------------------------

    def _reject_reason(self, spec: JobSpec) -> str | None:
        """Why a submission would be rejected, or ``None`` to admit."""
        if self._size >= self.max_depth:
            return (
                f"queue depth {self.max_depth} reached; drain completed "
                f"work before submitting more"
            )
        cap = self.policy_for(spec.tenant).max_queued
        if cap is not None and len(self._heaps.get(spec.tenant, ())) >= cap:
            return (
                f"tenant {spec.tenant!r} queue cap {cap} reached; drain "
                f"completed work before submitting more"
            )
        return None

    def submit(self, spec: JobSpec) -> PendingJob:
        """Admit a new job, or raise :class:`QueueFullError` at a bound."""
        with self._lock:
            reason = self._reject_reason(spec)
            if reason is not None:
                raise QueueFullError(reason)
            pending = PendingJob(spec=spec, sequence=next(self._sequence))
            self._push(pending)
            return pending

    def try_submit(self, spec: JobSpec) -> PendingJob | None:
        """Non-raising :meth:`submit`; ``None`` when a bound rejects."""
        with self._lock:
            if self._reject_reason(spec) is not None:
                return None
            return self.submit(spec)

    def requeue(self, pending: PendingJob) -> None:
        """Re-admit a rescheduled job, exempt from all depth bounds.

        Each requeue bumps the job's aging credit by ``aging_step`` so
        repeatedly-rescheduled work climbs past fresh same-priority
        submissions instead of starving behind them.
        """
        with self._lock:
            pending.priority_boost += self.aging_step
            self._push(pending)

    # -- election ------------------------------------------------------------

    def pop(
        self,
        *,
        prefer: str | None = None,
        blocked: frozenset | set = frozenset(),
    ) -> PendingJob | None:
        """Remove and return the next job under tenant-fair election.

        The DRR layer elects a tenant (see module note); within the
        elected tenant the highest-priority (then oldest) job is
        taken.  ``prefer`` names a structural fingerprint: within the
        elected tenant's *top priority level only* (batching never
        violates priority ordering), the oldest job carrying that
        fingerprint is chosen over the strict-FIFO head, so a warm
        pool member runs same-structure jobs back to back.

        ``blocked`` names tenants currently at their in-flight cap:
        their jobs stay queued and their deficit is frozen.  Returns
        ``None`` when jobs exist but every backlogged tenant is
        blocked (the caller waits for an in-flight slot); raises
        ``IndexError`` when the queue is truly empty, matching the
        pre-tenancy contract.
        """
        with self._lock:
            if self._size == 0:
                raise IndexError("pop from an empty job queue")
            tenant = self._elect(blocked)
            if tenant is None:
                return None
            return self._pop_from(tenant, prefer)

    def _elect(self, blocked) -> str | None:
        """DRR tenant election; ``None`` if all backlogged are blocked."""
        order = self._order
        eligible = [
            tenant
            for tenant in order
            if self._heaps.get(tenant) and tenant not in blocked
        ]
        if not eligible:
            return None
        # Bounded top-up loop: each round adds every eligible tenant's
        # weight to its deficit, so within ceil(1/min_weight) rounds
        # someone crosses 1.0.
        while True:
            for step in range(len(order)):
                position = (self._cursor + step) % len(order)
                tenant = order[position]
                if not self._heaps.get(tenant):
                    # Idle tenants forfeit credit (no banking).
                    self._deficit[tenant] = 0.0
                    continue
                if tenant in blocked:
                    continue
                if self._deficit[tenant] >= 1.0:
                    self._deficit[tenant] -= 1.0
                    # Stay on this tenant: it may spend the rest of
                    # its deficit on consecutive pops (DRR quantum).
                    self._cursor = position
                    return tenant
            for tenant in eligible:
                self._deficit[tenant] += self.policy_for(tenant).weight

    def _pop_from(self, tenant: str, prefer: str | None) -> PendingJob:
        heap = self._heaps[tenant]
        entry: tuple[int, int, PendingJob] | None = None
        if prefer is not None:
            top = heap[0][0]
            best: tuple[int, int, PendingJob] | None = None
            for candidate in heap:
                if candidate[0] != top:
                    continue
                if candidate[2].fingerprint == prefer and (
                    best is None or candidate[1] < best[1]
                ):
                    best = candidate
            if best is not None:
                heap.remove(best)
                heapq.heapify(heap)
                entry = best
        if entry is None:
            entry = heapq.heappop(heap)
        self._size -= 1
        return entry[2]

    def _push(self, pending: PendingJob) -> None:
        tenant = pending.tenant
        heap = self._heaps.get(tenant)
        if heap is None:
            heap = self._heaps[tenant] = []
            self._order.append(tenant)
            self._deficit.setdefault(tenant, 0.0)
        heapq.heappush(
            heap,
            (-pending.effective_priority, pending.sequence, pending),
        )
        self._size += 1
