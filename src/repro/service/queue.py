"""Bounded priority job queue with requeue-exempt admission control.

The queue bounds how much work a caller can park in the service
(``max_depth``); :meth:`JobQueue.submit` raises
:class:`~repro.exceptions.QueueFullError` at the bound so producers
feel backpressure instead of growing an unbounded backlog.  Jobs that
are already *inside* the service and merely being rescheduled after a
member failure re-enter through :meth:`JobQueue.requeue`, which is
exempt from the bound — admission control must never turn an accepted
job into a lost one.

Ordering is deterministic: a binary heap on ``(-priority, sequence)``.
Higher priority runs first; within a priority level, submission order
(FIFO).  A requeued job keeps its original sequence number, so a
rescheduled job does not go to the back of its priority level.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools

from repro.exceptions import QueueFullError
from repro.service.jobs import JobSpec


@dataclasses.dataclass
class PendingJob:
    """A job inside the service: its spec plus scheduling state.

    Attributes
    ----------
    spec:
        The immutable job description.
    sequence:
        Admission order; the FIFO tiebreaker within a priority level.
    attempts:
        Attempt history accumulated across reschedules (the service
        appends one :class:`~repro.service.service.JobAttempt` per
        analog attempt).
    excluded_members:
        Pool member ids this job must not be placed on again (members
        it already failed on).
    fingerprint:
        Memoized structural fingerprint of the job's problem, set by
        the service at admission when fingerprint batching is on.
        ``None`` means unknown — the job never matches a ``prefer``
        filter but schedules normally otherwise.
    problem:
        Memoized materialized LP (specs only *name* problems).  Set
        alongside ``fingerprint`` so the attempt path does not derive
        the problem a second time.
    """

    spec: JobSpec
    sequence: int
    attempts: list = dataclasses.field(default_factory=list)
    excluded_members: set = dataclasses.field(default_factory=set)
    fingerprint: str | None = None
    problem: object | None = None


class JobQueue:
    """Deterministic bounded priority queue of :class:`PendingJob`."""

    def __init__(self, max_depth: int = 64) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be positive")
        self.max_depth = max_depth
        self._heap: list[tuple[int, int, PendingJob]] = []
        self._sequence = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def full(self) -> bool:
        """Whether a new submission would be rejected."""
        return len(self._heap) >= self.max_depth

    def submit(self, spec: JobSpec) -> PendingJob:
        """Admit a new job, or raise :class:`QueueFullError` at the bound."""
        if self.full:
            raise QueueFullError(
                f"queue depth {self.max_depth} reached; drain completed "
                f"work before submitting more"
            )
        pending = PendingJob(spec=spec, sequence=next(self._sequence))
        self._push(pending)
        return pending

    def try_submit(self, spec: JobSpec) -> PendingJob | None:
        """Non-raising :meth:`submit`; ``None`` when the queue is full."""
        if self.full:
            return None
        return self.submit(spec)

    def requeue(self, pending: PendingJob) -> None:
        """Re-admit a rescheduled job, exempt from the depth bound."""
        self._push(pending)

    def pop(self, *, prefer: str | None = None) -> PendingJob:
        """Remove and return the highest-priority (then oldest) job.

        ``prefer`` names a structural fingerprint: within the *top
        priority level only* (batching never violates priority
        ordering), the oldest job carrying that fingerprint is chosen
        over the strict-FIFO head.  This lets the scheduler run
        same-structure jobs consecutively, so a warm pool member takes
        them with zero structural rewrites.
        """
        if not self._heap:
            raise IndexError("pop from an empty job queue")
        if prefer is not None:
            top = self._heap[0][0]
            best: tuple[int, int, PendingJob] | None = None
            for entry in self._heap:
                if entry[0] != top:
                    continue
                if entry[2].fingerprint == prefer and (
                    best is None or entry[1] < best[1]
                ):
                    best = entry
            if best is not None:
                self._heap.remove(best)
                heapq.heapify(self._heap)
                return best[2]
        _, _, pending = heapq.heappop(self._heap)
        return pending

    def _push(self, pending: PendingJob) -> None:
        heapq.heappush(
            self._heap,
            (-pending.spec.priority, pending.sequence, pending),
        )
