"""Bounded priority job queue with requeue-exempt admission control.

The queue bounds how much work a caller can park in the service
(``max_depth``); :meth:`JobQueue.submit` raises
:class:`~repro.exceptions.QueueFullError` at the bound so producers
feel backpressure instead of growing an unbounded backlog.  Jobs that
are already *inside* the service and merely being rescheduled after a
member failure re-enter through :meth:`JobQueue.requeue`, which is
exempt from the bound — admission control must never turn an accepted
job into a lost one.

Ordering is deterministic: a binary heap on ``(-priority, sequence)``.
Higher priority runs first; within a priority level, submission order
(FIFO).  A requeued job keeps its original sequence number, so a
rescheduled job does not go to the back of its priority level.

Requeues also *age*: every trip through :meth:`JobQueue.requeue` bumps
the job's effective priority by ``aging_step``.  Without aging, a
low-priority job that keeps failing on a degraded member can starve
behind a steady stream of fresh high-priority work; with it, a job
that has been rescheduled ``k`` times outranks fresh submissions up to
``base_priority + k * aging_step - 1``, bounding its wait to the work
already ahead of it at that level — starvation-free as long as
admission priorities are bounded.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools

from repro.exceptions import QueueFullError
from repro.obs.clock import Deadline
from repro.service.jobs import JobSpec


@dataclasses.dataclass
class PendingJob:
    """A job inside the service: its spec plus scheduling state.

    Attributes
    ----------
    spec:
        The immutable job description.
    sequence:
        Admission order; the FIFO tiebreaker within a priority level.
    attempts:
        Attempt history accumulated across reschedules (the service
        appends one :class:`~repro.service.service.JobAttempt` per
        analog attempt).
    excluded_members:
        Pool member ids this job must not be placed on again (members
        it already failed on).
    fingerprint:
        Memoized structural fingerprint of the job's problem, set by
        the service at admission when fingerprint batching is on.
        ``None`` means unknown — the job never matches a ``prefer``
        filter but schedules normally otherwise.
    problem:
        Memoized materialized LP (specs only *name* problems).  Set
        alongside ``fingerprint`` so the attempt path does not derive
        the problem a second time.
    priority_boost:
        Aging credit accumulated across requeues; the heap orders on
        ``spec.priority + priority_boost`` so rescheduled jobs cannot
        starve behind fresh same-priority submissions.
    deadline:
        The job's wall-clock budget, armed at first dispatch (``None``
        until then, and forever when the job has no budget).
    backoff_total_s:
        Accumulated retry-backoff delay across requeues (accounting;
        only *slept* when the backoff policy says so).
    first_dispatch_s:
        Clock reading at first dispatch; lets records report queueing
        and service time separately.  Never serialized.
    submitted_s:
        Clock reading at admission, stamped by the service; with
        ``first_dispatch_s`` it yields the job's queue wait.  Never
        serialized (wall-clock does not replay).
    """

    spec: JobSpec
    sequence: int
    attempts: list = dataclasses.field(default_factory=list)
    excluded_members: set = dataclasses.field(default_factory=set)
    fingerprint: str | None = None
    problem: object | None = None
    priority_boost: int = 0
    deadline: Deadline | None = None
    backoff_total_s: float = 0.0
    first_dispatch_s: float | None = None
    submitted_s: float | None = None

    @property
    def effective_priority(self) -> int:
        """Admission priority plus requeue-aging credit."""
        return self.spec.priority + self.priority_boost


class JobQueue:
    """Deterministic bounded priority queue of :class:`PendingJob`."""

    def __init__(self, max_depth: int = 64, *, aging_step: int = 1) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be positive")
        if aging_step < 0:
            raise ValueError("aging_step must be non-negative")
        self.max_depth = max_depth
        self.aging_step = aging_step
        self._heap: list[tuple[int, int, PendingJob]] = []
        self._sequence = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def full(self) -> bool:
        """Whether a new submission would be rejected."""
        return len(self._heap) >= self.max_depth

    def submit(self, spec: JobSpec) -> PendingJob:
        """Admit a new job, or raise :class:`QueueFullError` at the bound."""
        if self.full:
            raise QueueFullError(
                f"queue depth {self.max_depth} reached; drain completed "
                f"work before submitting more"
            )
        pending = PendingJob(spec=spec, sequence=next(self._sequence))
        self._push(pending)
        return pending

    def try_submit(self, spec: JobSpec) -> PendingJob | None:
        """Non-raising :meth:`submit`; ``None`` when the queue is full."""
        if self.full:
            return None
        return self.submit(spec)

    def requeue(self, pending: PendingJob) -> None:
        """Re-admit a rescheduled job, exempt from the depth bound.

        Each requeue bumps the job's aging credit by ``aging_step`` so
        repeatedly-rescheduled work climbs past fresh same-priority
        submissions instead of starving behind them.
        """
        pending.priority_boost += self.aging_step
        self._push(pending)

    def pop(self, *, prefer: str | None = None) -> PendingJob:
        """Remove and return the highest-priority (then oldest) job.

        ``prefer`` names a structural fingerprint: within the *top
        priority level only* (batching never violates priority
        ordering), the oldest job carrying that fingerprint is chosen
        over the strict-FIFO head.  This lets the scheduler run
        same-structure jobs consecutively, so a warm pool member takes
        them with zero structural rewrites.
        """
        if not self._heap:
            raise IndexError("pop from an empty job queue")
        if prefer is not None:
            top = self._heap[0][0]
            best: tuple[int, int, PendingJob] | None = None
            for entry in self._heap:
                if entry[0] != top:
                    continue
                if entry[2].fingerprint == prefer and (
                    best is None or entry[1] < best[1]
                ):
                    best = entry
            if best is not None:
                self._heap.remove(best)
                heapq.heapify(self._heap)
                return best[2]
        _, _, pending = heapq.heappop(self._heap)
        return pending

    def _push(self, pending: PendingJob) -> None:
        heapq.heappush(
            self._heap,
            (-pending.effective_priority, pending.sequence, pending),
        )
