"""The crossbar fleet: a pool of long-lived programmed arrays.

One-shot solvers program a fresh array per solve and throw it away.
The pool keeps ``size`` simulated physical members alive across jobs,
which is what makes the programming cache possible: a member that just
solved a job whose structural fingerprint matches the next job's is
handed out *warm* — the O(N²) structural program is skipped and only
the O(N) diagonal rewrite (already part of every solve) remains.

Member lifecycle::

    EMPTY ──program──▶ IDLE ◀──release── BUSY
                        │  ▲                ▲
              drain()   │  │ recover() ok   │ acquire()
                        ▼  │                │
                     DRAINING ──budget──▶ RETIRED
                               exhausted

``drain`` is how the service reacts to a health-probe rejection
(:mod:`repro.reliability.probe`): the member leaves the schedulable
set, ``recover`` re-programs it from its stored programmer — a fresh
physical array in simulation terms: new variation *and* fault draw,
the REMAP rung of the recovery ladder — and re-probes.  A member that
exhausts its drain budget is retired for good.  Jobs never wait on a
draining member; the service reschedules them onto other members.

On top of the drain ladder each member can carry a circuit breaker
(:class:`~repro.service.resilience.CircuitBreaker`): consecutive
placement failures trip it OPEN, the member takes no placements for a
cooldown counted in ``acquire`` ticks, then a single probe placement
(HALF_OPEN) decides whether it closes again.  The breaker catches
members that keep failing *without* tripping the health probe —
marginal arrays the drain ladder never sees — before they eat the
retry budget of every job placed on them.

All state transitions emit ``pool.*`` counters on the pool's tracer so
a batch trace shows warm/cold placement decisions, evictions, drains,
recoveries, retirements, and breaker trips.

Thread safety: every public method is atomic under the pool's lock.
The concurrent service passes its *own* scheduler lock in, so pool
transitions, tracer emission, and queue decisions serialize on one
lock — a BUSY member is then touched by exactly one worker until
released.  The lock covers bookkeeping, not the solve: compute on an
acquired member runs lock-free (the member is BUSY, so no other
worker selects it).  For process-backed execution the placement is
split into :meth:`CrossbarPool.reserve` (select + mark BUSY, no
programming) and :meth:`CrossbarPool.install` (adopt the operator
state the worker process returned).
"""

from __future__ import annotations

import enum
import itertools
import threading
from typing import Callable

import numpy as np

from repro.crossbar.ops import AnalogMatrixOperator
from repro.exceptions import ServiceError
from repro.obs.tracer import NOOP, Tracer
from repro.reliability.probe import (
    ProbePolicy,
    ProbeReport,
    probe_operator,
    probe_operators_batched,
)
from repro.service.resilience import (
    BREAKER_STATE_GAUGE,
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
)

#: Builds (and fully programs) an operator: ``programmer(rng, tracer)``.
#: The pool stores the last programmer per member so ``recover`` can
#: rebuild the member without knowing anything about LPs.
Programmer = Callable[[np.random.Generator, Tracer], AnalogMatrixOperator]


class MemberState(enum.Enum):
    """Lifecycle state of one pool member."""

    #: Never programmed; first acquire programs it.
    EMPTY = "empty"
    #: Programmed and schedulable.
    IDLE = "idle"
    #: Currently executing a job.
    BUSY = "busy"
    #: Pulled from scheduling after a probe rejection; awaiting recover.
    DRAINING = "draining"
    #: Drain budget exhausted; permanently out of the fleet.
    RETIRED = "retired"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class PoolMember:
    """One simulated physical array plus its scheduling metadata."""

    def __init__(self, member_id: int) -> None:
        self.member_id = member_id
        self.state = MemberState.EMPTY
        self.operator: AnalogMatrixOperator | None = None
        self.fingerprint: str | None = None
        self.programmer: Programmer | None = None
        self.jobs_served = 0
        self.drains = 0
        self.last_used = -1
        #: Pending chaos fault: ``(row_fraction, sticky)``.  Applied to
        #: the current operator immediately and — when sticky — after
        #: every reprogram, modelling a hard defect of the physical
        #: member rather than of one programming.
        self.pending_fault: tuple[float, bool] | None = None
        #: Per-member circuit breaker (``None`` when breakers are off).
        self.breaker: CircuitBreaker | None = None
        #: Fault injected while this member was BUSY, as a short label
        #: (e.g. ``"stuck_off:0.5:sticky"``).  The service consumes it
        #: when the in-flight job's attempt concludes, so post-mortems
        #: can attribute that attempt's failure to the injection.
        self.inflight_fault: str | None = None
        #: Whether the member's in-flight attempt executes in a worker
        #: *process* (its operator state lives in the child until
        #: :meth:`CrossbarPool.install`).  Faults injected meanwhile
        #: are deferred as ``pending_fault`` so they land on the
        #: member when the attempt returns instead of being silently
        #: overwritten by the child's state.
        self.remote_inflight = False

    def consume_inflight_fault(self) -> str | None:
        """Pop the fault label injected while the member was BUSY."""
        fault, self.inflight_fault = self.inflight_fault, None
        return fault

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PoolMember(id={self.member_id}, state={self.state}, "
            f"fingerprint={self.fingerprint!r}, drains={self.drains})"
        )


class CrossbarPool:
    """A fleet of :class:`PoolMember` arrays with warm placement.

    Parameters
    ----------
    size:
        Number of members.
    probe:
        Health-probe policy ``recover`` applies before returning a
        member to service; ``None`` skips the re-probe (the next job's
        own probe still gates it).
    max_drains:
        Drain/recover cycles a member survives before retirement.
    rng:
        Generator driving recovery-time reprogram draws.
    tracer:
        Sink of the ``pool.*`` counters.
    breaker:
        Per-member circuit-breaker policy; ``None`` disables breakers
        (every member always passes the breaker gate).
    on_breaker_transition:
        Optional ``(member_id, old, new, tick)`` callback invoked on
        every breaker state change, *after* the ``pool.breaker.*``
        counters are emitted — the serving layer's telemetry hook
        (state strings, e.g. ``"closed" -> "open"``).
    lock:
        Re-entrant lock all public methods take; the concurrent
        service passes its scheduler lock so pool transitions and
        scheduling decisions serialize together (and tracer emission
        stays single-threaded).  ``None`` creates a private lock.
    """

    def __init__(
        self,
        size: int,
        *,
        probe: ProbePolicy | None = None,
        max_drains: int = 2,
        rng: np.random.Generator | None = None,
        tracer: Tracer | None = None,
        breaker: BreakerPolicy | None = None,
        on_breaker_transition: Callable[
            [int, str, str, int], None
        ] | None = None,
        lock: threading.RLock | None = None,
    ) -> None:
        if size < 1:
            raise ValueError("pool size must be positive")
        if max_drains < 0:
            raise ValueError("max_drains must be non-negative")
        self._lock = lock if lock is not None else threading.RLock()
        self.probe = probe
        self.max_drains = max_drains
        self.rng = rng if rng is not None else np.random.default_rng()
        self.tracer = tracer if tracer is not None else NOOP
        self.members = [PoolMember(index) for index in range(size)]
        self._ticks = itertools.count()
        self._acquires = 0
        self.breaker_policy = breaker
        self.on_breaker_transition = on_breaker_transition
        if breaker is not None:
            for member in self.members:
                member.breaker = CircuitBreaker(
                    breaker,
                    on_transition=self._breaker_transition_hook(
                        member.member_id
                    ),
                )

    def _breaker_transition_hook(self, member_id: int):
        def hook(old: BreakerState, new: BreakerState, tick: int) -> None:
            """Count and trace one breaker transition (lock held)."""
            if new is BreakerState.OPEN:
                name = (
                    "pool.breaker.reopened"
                    if old is BreakerState.HALF_OPEN
                    else "pool.breaker.opened"
                )
            elif new is BreakerState.HALF_OPEN:
                name = "pool.breaker.half_open"
            else:
                name = "pool.breaker.closed"
            self.tracer.count(name)
            self.tracer.gauge(
                f"pool.breaker.state.{member_id}", BREAKER_STATE_GAUGE[new]
            )
            if self.on_breaker_transition is not None:
                self.on_breaker_transition(
                    member_id, old.value, new.value, tick
                )

        return hook

    # -- placement -----------------------------------------------------------

    def acquire(
        self,
        fingerprint: str,
        programmer: Programmer,
        *,
        rng: np.random.Generator,
        tracer: Tracer | None = None,
        exclude: frozenset | set = frozenset(),
    ) -> tuple[PoolMember | None, bool]:
        """Place a job: returns ``(member, warm)`` or ``(None, False)``.

        Placement preference: an IDLE member already programmed with
        ``fingerprint`` (warm — most recently used wins, keeping the
        working set hot), else an EMPTY member (cold program), else
        the least-recently-used IDLE member (cold: its previous
        program is *evicted*).  Members in ``exclude`` — typically
        ones the job already failed on — and members not schedulable
        (BUSY / DRAINING / RETIRED) are never chosen; if nothing is
        left, ``(None, False)`` tells the caller to fall back or fail.

        Cold placements call ``programmer(rng, tracer)`` so the full
        structural write lands in the *job's* trace; warm placements
        re-attach ``rng`` and ``tracer`` to the existing operator so
        the job's diagonal writes and variation draws stay
        deterministic per attempt and attributed per job.

        Atomic under the pool lock.  Note that a cold placement's
        programming runs *inside* the lock — the thread-executor
        concurrent mode therefore serializes cold programs (a one-off
        cost while the fleet warms up); the process executor programs
        in the worker child via :meth:`reserve` / :meth:`install`
        instead.
        """
        with self._lock:
            job_tracer = tracer if tracer is not None else NOOP
            member, warm = self._select(fingerprint, exclude)
            if member is None:
                return None, False
            if warm:
                operator = member.operator
                assert operator is not None
                operator.rng = rng
                operator.tracer = job_tracer
                operator.array.rng = rng
                operator.array.tracer = job_tracer
            else:
                member.operator = programmer(rng, job_tracer)
                member.fingerprint = fingerprint
                member.programmer = programmer
                self._apply_pending_fault(member, rng)
            self._mark_busy(member)
            return member, warm

    def reserve(
        self,
        fingerprint: str,
        *,
        exclude: frozenset | set = frozenset(),
    ) -> tuple[PoolMember | None, bool]:
        """Select and mark a member BUSY *without* programming it.

        The process-executor placement path: selection (and its
        counters) matches :meth:`acquire` exactly, but programming is
        deferred to the worker child — a cold reservation evicts the
        member's old program immediately and leaves ``operator`` as
        ``None`` until :meth:`install`; a warm reservation keeps the
        operator attached so the caller can snapshot its state for
        shipping.  Atomic under the pool lock.
        """
        with self._lock:
            member, warm = self._select(fingerprint, exclude)
            if member is None:
                return None, False
            if not warm:
                member.operator = None
                member.fingerprint = None
                member.programmer = None
            member.remote_inflight = True
            self._mark_busy(member)
            return member, warm

    def install(
        self,
        member: PoolMember,
        operator: AnalogMatrixOperator | None,
        *,
        fingerprint: str,
        programmer: Programmer,
        rng: np.random.Generator,
    ) -> None:
        """Adopt the operator state a worker process returned.

        Completes a :meth:`reserve`: the member takes the (possibly
        mutated) operator back, records the fingerprint it now holds,
        and stores a parent-side ``programmer`` so :meth:`recover` can
        rebuild it later.  A fault injected while the attempt was in
        flight is applied now (see ``PoolMember.remote_inflight``).
        Atomic under the pool lock; call before :meth:`release`.
        """
        with self._lock:
            member.remote_inflight = False
            if operator is None:
                return
            member.operator = operator
            member.fingerprint = fingerprint
            member.programmer = programmer
            self._apply_pending_fault(member, rng)

    def _select(
        self, fingerprint: str, exclude: frozenset | set
    ) -> tuple[PoolMember | None, bool]:
        """Shared placement choice of :meth:`acquire` / :meth:`reserve`.

        Caller holds the pool lock.
        """
        self._acquires += 1
        tick = self._acquires
        candidates = []
        for member in self.members:
            if member.member_id in exclude or member.state not in (
                MemberState.EMPTY,
                MemberState.IDLE,
            ):
                continue
            if member.breaker is not None and not member.breaker.allow(tick):
                self.tracer.count("pool.breaker.rejections")
                continue
            candidates.append(member)
        if not candidates:
            self.tracer.count("pool.placement_failures")
            return None, False

        warm_hits = [
            member
            for member in candidates
            if member.state is MemberState.IDLE
            and member.fingerprint == fingerprint
        ]
        if warm_hits:
            self.tracer.count("pool.acquire_warm")
            return max(warm_hits, key=lambda m: m.last_used), True
        empty = [
            member
            for member in candidates
            if member.state is MemberState.EMPTY
        ]
        if empty:
            member = empty[0]
        else:
            member = min(candidates, key=lambda m: m.last_used)
            self.tracer.count("pool.evictions")
        self.tracer.count("pool.acquire_cold")
        return member, False

    def _mark_busy(self, member: PoolMember) -> None:
        """Transition a selected member into BUSY (lock held)."""
        member.state = MemberState.BUSY
        member.last_used = next(self._ticks)
        member.jobs_served += 1

    def release(self, member: PoolMember) -> None:
        """Return a BUSY member to the schedulable set.

        A member whose reservation never got an operator installed
        (the attempt found no capacity or crashed before programming)
        goes back to EMPTY rather than IDLE.  Atomic under the pool
        lock.
        """
        with self._lock:
            if member.state is not MemberState.BUSY:
                raise ServiceError(
                    f"cannot release member {member.member_id} in state "
                    f"{member.state}"
                )
            member.remote_inflight = False
            member.state = (
                MemberState.IDLE
                if member.operator is not None
                else MemberState.EMPTY
            )

    def note_result(self, member: PoolMember, success: bool) -> None:
        """Feed a placement outcome to the member's circuit breaker.

        Ticks use the acquire counter so the cooldown means "this many
        further placement decisions", which is deterministic under
        replay (wall-clock is not).  Atomic under the pool lock.
        """
        with self._lock:
            if member.breaker is None:
                return
            if success:
                member.breaker.record_success(self._acquires)
            else:
                member.breaker.record_failure(self._acquires)

    # -- health --------------------------------------------------------------

    def drain(self, member: PoolMember) -> None:
        """Pull a member from scheduling after a health failure.

        Atomic under the pool lock.
        """
        with self._lock:
            if member.state is MemberState.RETIRED:
                return
            member.state = MemberState.DRAINING
            self.tracer.count("pool.drains")

    def recover(self, member: PoolMember) -> bool:
        """Reprogram and re-probe a DRAINING member.

        Each cycle burns one unit of the drain budget and rebuilds the
        member from its stored programmer — in simulation terms a
        fresh physical array (new variation and fault draw), i.e. the
        REMAP rung of the recovery ladder.  A sticky injected fault
        survives the rebuild (hard defect), so such a member fails its
        re-probe repeatedly and retires once the budget is gone.
        Returns whether the member is back in service.

        Atomic under the pool lock (including the reprogram itself —
        recovery is rare, correctness beats overlap here).
        """
        with self._lock:
            if member.state is not MemberState.DRAINING:
                raise ServiceError(
                    f"cannot recover member {member.member_id} in state "
                    f"{member.state}"
                )
            while member.drains < self.max_drains:
                member.drains += 1
                if member.programmer is None:
                    # Never programmed: nothing to rebuild, back to EMPTY.
                    member.state = MemberState.EMPTY
                    self.tracer.count("pool.recoveries")
                    return True
                member.operator = member.programmer(self.rng, self.tracer)
                self._apply_pending_fault(member, self.rng)
                if self.probe is not None:
                    report = probe_operator(
                        member.operator,
                        self.probe,
                        self.rng,
                        label=f"pool-{member.member_id}",
                    )
                    if not report.healthy:
                        self.tracer.count("pool.recover_failures")
                        continue
                member.state = MemberState.IDLE
                self.tracer.count("pool.recoveries")
                return True
            member.state = MemberState.RETIRED
            member.operator = None
            self.tracer.count("pool.retirements")
            return False

    def audit(
        self,
        policy: ProbePolicy | None = None,
        *,
        drain_unhealthy: bool = False,
    ) -> dict[int, "ProbeReport"]:
        """Health-probe every programmed member, one batched fleet pass.

        Drives the probe vectors through all IDLE/BUSY members' arrays
        as stacked tensor ops
        (:func:`~repro.reliability.probe.probe_operators_batched`) —
        the fleet-wide analogue of the per-job probe, for operators
        sweeping a serving pool between batches.  Reports are bitwise
        what per-member :func:`~repro.reliability.probe.probe_operator`
        calls in member order would produce.  With ``drain_unhealthy``
        set, failing members leave the schedulable set (the normal
        :meth:`recover` cycle then applies).

        Uses the pool's configured probe policy by default; raises
        ``ServiceError`` if neither a policy argument nor a pool
        policy exists.  Atomic under the pool lock.
        """
        policy = policy if policy is not None else self.probe
        if policy is None:
            raise ServiceError("no probe policy configured for audit")
        with self._lock:
            named = [
                (member.member_id, member)
                for member in self.members
                if member.operator is not None
            ]
            if not named:
                return {}
            reports = probe_operators_batched(
                [
                    (f"pool-{member_id}", member.operator)
                    for member_id, member in named
                ],
                policy,
                self.rng,
            )
            self.tracer.count("pool.audits")
            outcome: dict[int, ProbeReport] = {}
            for (member_id, member), report in zip(named, reports):
                outcome[member_id] = report
                if not report.healthy:
                    self.tracer.count("pool.audit_failures")
                    if drain_unhealthy and member.state in (
                        MemberState.IDLE,
                        MemberState.EMPTY,
                    ):
                        member.state = MemberState.DRAINING
                        self.tracer.count("pool.drains")
            return outcome

    # -- chaos ---------------------------------------------------------------

    def inject_fault(
        self,
        member_id: int,
        row_fraction: float = 0.5,
        *,
        sticky: bool = False,
    ) -> None:
        """Knock rows of a member stuck-OFF (see
        :meth:`~repro.crossbar.array.CrossbarArray.inject_stuck_off`).

        Applied to the member's current operator immediately if it has
        one, and remembered so a member programmed later is poisoned
        right after programming.  A non-sticky fault is cleared by the
        next (re)program — soft corruption one recover cycle fixes; a
        sticky fault re-applies forever — a hard defect that forces
        retirement.

        Injecting into a BUSY member corrupts the job *in flight* on
        it; the member records the injection as :attr:`inflight_fault`
        so the service can tag that job's attempt with the fault for
        post-mortem attribution (the attempt's failure is the fault's
        doing, not the job's).  A member whose attempt runs in a
        worker *process* (``remote_inflight``) keeps the fault pending
        instead — the authoritative operator state is in the child, so
        the fault lands via :meth:`install` when the attempt returns
        (the in-flight attempt itself is not corrupted; the drift is
        documented as transient in DESIGN.md §15).

        Atomic under the pool lock.
        """
        with self._lock:
            member = self.members[member_id]
            member.pending_fault = (row_fraction, sticky)
            if member.remote_inflight:
                label = f"stuck_off:{row_fraction:g}"
                if sticky:
                    label += ":sticky"
                member.inflight_fault = label
            elif member.operator is not None:
                member.operator.array.inject_stuck_off(row_fraction)
                if not sticky:
                    member.pending_fault = None
                if member.state is MemberState.BUSY:
                    label = f"stuck_off:{row_fraction:g}"
                    if sticky:
                        label += ":sticky"
                    member.inflight_fault = label
            self.tracer.count("pool.faults_injected")

    def inject_drift(self, member_id: int, magnitude: float = 0.1) -> None:
        """Apply a multiplicative conductance-drift burst to a member.

        Unlike :meth:`inject_fault` this perturbs every programmed
        cell by a bounded relative amount (see
        :meth:`~repro.crossbar.array.CrossbarArray.apply_drift`) — the
        aged-array / temperature-step chaos mode.  Drift is inherently
        transient: the next (re)program overwrites it, so nothing is
        remembered.  A BUSY member tags its in-flight job, as with
        :meth:`inject_fault`.  Drift against a ``remote_inflight``
        member is a no-op on state (the child holds the real operator
        and drift is transient by definition) but still tags the
        in-flight attempt.

        Atomic under the pool lock.
        """
        with self._lock:
            member = self.members[member_id]
            if member.remote_inflight:
                member.inflight_fault = f"drift:{magnitude:g}"
                self.tracer.count("pool.drift_injected")
                return
            if member.operator is None:
                return
            member.operator.array.apply_drift(magnitude, rng=self.rng)
            if member.state is MemberState.BUSY:
                member.inflight_fault = f"drift:{magnitude:g}"
            self.tracer.count("pool.drift_injected")

    def _apply_pending_fault(
        self, member: PoolMember, rng: np.random.Generator
    ) -> None:
        if member.pending_fault is None or member.operator is None:
            return
        row_fraction, sticky = member.pending_fault
        member.operator.array.inject_stuck_off(row_fraction, rng=rng)
        if not sticky:
            member.pending_fault = None

    # -- introspection -------------------------------------------------------

    def states(self) -> dict[int, MemberState]:
        """``member_id -> state`` snapshot (atomic under the lock)."""
        with self._lock:
            return {m.member_id: m.state for m in self.members}

    def active_members(self) -> int:
        """Members not yet retired (atomic under the lock)."""
        with self._lock:
            return sum(
                1
                for m in self.members
                if m.state is not MemberState.RETIRED
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        states = ", ".join(
            f"{m.member_id}:{m.state}" for m in self.members
        )
        return f"CrossbarPool({states})"
