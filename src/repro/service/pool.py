"""The crossbar fleet: a pool of long-lived programmed arrays.

One-shot solvers program a fresh array per solve and throw it away.
The pool keeps ``size`` simulated physical members alive across jobs,
which is what makes the programming cache possible: a member that just
solved a job whose structural fingerprint matches the next job's is
handed out *warm* — the O(N²) structural program is skipped and only
the O(N) diagonal rewrite (already part of every solve) remains.

Member lifecycle::

    EMPTY ──program──▶ IDLE ◀──release── BUSY
                        │  ▲                ▲
              drain()   │  │ recover() ok   │ acquire()
                        ▼  │                │
                     DRAINING ──budget──▶ RETIRED
                               exhausted

``drain`` is how the service reacts to a health-probe rejection
(:mod:`repro.reliability.probe`): the member leaves the schedulable
set, ``recover`` re-programs it from its stored programmer — a fresh
physical array in simulation terms: new variation *and* fault draw,
the REMAP rung of the recovery ladder — and re-probes.  A member that
exhausts its drain budget is retired for good.  Jobs never wait on a
draining member; the service reschedules them onto other members.

All state transitions emit ``pool.*`` counters on the pool's tracer so
a batch trace shows warm/cold placement decisions, evictions, drains,
recoveries, and retirements.
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable

import numpy as np

from repro.crossbar.ops import AnalogMatrixOperator
from repro.exceptions import ServiceError
from repro.obs.tracer import NOOP, Tracer
from repro.reliability.probe import ProbePolicy, probe_operator

#: Builds (and fully programs) an operator: ``programmer(rng, tracer)``.
#: The pool stores the last programmer per member so ``recover`` can
#: rebuild the member without knowing anything about LPs.
Programmer = Callable[[np.random.Generator, Tracer], AnalogMatrixOperator]


class MemberState(enum.Enum):
    """Lifecycle state of one pool member."""

    #: Never programmed; first acquire programs it.
    EMPTY = "empty"
    #: Programmed and schedulable.
    IDLE = "idle"
    #: Currently executing a job.
    BUSY = "busy"
    #: Pulled from scheduling after a probe rejection; awaiting recover.
    DRAINING = "draining"
    #: Drain budget exhausted; permanently out of the fleet.
    RETIRED = "retired"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class PoolMember:
    """One simulated physical array plus its scheduling metadata."""

    def __init__(self, member_id: int) -> None:
        self.member_id = member_id
        self.state = MemberState.EMPTY
        self.operator: AnalogMatrixOperator | None = None
        self.fingerprint: str | None = None
        self.programmer: Programmer | None = None
        self.jobs_served = 0
        self.drains = 0
        self.last_used = -1
        #: Pending chaos fault: ``(row_fraction, sticky)``.  Applied to
        #: the current operator immediately and — when sticky — after
        #: every reprogram, modelling a hard defect of the physical
        #: member rather than of one programming.
        self.pending_fault: tuple[float, bool] | None = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PoolMember(id={self.member_id}, state={self.state}, "
            f"fingerprint={self.fingerprint!r}, drains={self.drains})"
        )


class CrossbarPool:
    """A fleet of :class:`PoolMember` arrays with warm placement.

    Parameters
    ----------
    size:
        Number of members.
    probe:
        Health-probe policy ``recover`` applies before returning a
        member to service; ``None`` skips the re-probe (the next job's
        own probe still gates it).
    max_drains:
        Drain/recover cycles a member survives before retirement.
    rng:
        Generator driving recovery-time reprogram draws.
    tracer:
        Sink of the ``pool.*`` counters.
    """

    def __init__(
        self,
        size: int,
        *,
        probe: ProbePolicy | None = None,
        max_drains: int = 2,
        rng: np.random.Generator | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if size < 1:
            raise ValueError("pool size must be positive")
        if max_drains < 0:
            raise ValueError("max_drains must be non-negative")
        self.probe = probe
        self.max_drains = max_drains
        self.rng = rng if rng is not None else np.random.default_rng()
        self.tracer = tracer if tracer is not None else NOOP
        self.members = [PoolMember(index) for index in range(size)]
        self._ticks = itertools.count()

    # -- placement -----------------------------------------------------------

    def acquire(
        self,
        fingerprint: str,
        programmer: Programmer,
        *,
        rng: np.random.Generator,
        tracer: Tracer | None = None,
        exclude: frozenset | set = frozenset(),
    ) -> tuple[PoolMember | None, bool]:
        """Place a job: returns ``(member, warm)`` or ``(None, False)``.

        Placement preference: an IDLE member already programmed with
        ``fingerprint`` (warm — most recently used wins, keeping the
        working set hot), else an EMPTY member (cold program), else
        the least-recently-used IDLE member (cold: its previous
        program is *evicted*).  Members in ``exclude`` — typically
        ones the job already failed on — and members not schedulable
        (BUSY / DRAINING / RETIRED) are never chosen; if nothing is
        left, ``(None, False)`` tells the caller to fall back or fail.

        Cold placements call ``programmer(rng, tracer)`` so the full
        structural write lands in the *job's* trace; warm placements
        re-attach ``rng`` and ``tracer`` to the existing operator so
        the job's diagonal writes and variation draws stay
        deterministic per attempt and attributed per job.
        """
        job_tracer = tracer if tracer is not None else NOOP
        candidates = [
            member
            for member in self.members
            if member.member_id not in exclude
            and member.state in (MemberState.EMPTY, MemberState.IDLE)
        ]
        if not candidates:
            self.tracer.count("pool.placement_failures")
            return None, False

        warm_hits = [
            member
            for member in candidates
            if member.state is MemberState.IDLE
            and member.fingerprint == fingerprint
        ]
        if warm_hits:
            member = max(warm_hits, key=lambda m: m.last_used)
            warm = True
            self.tracer.count("pool.acquire_warm")
            operator = member.operator
            assert operator is not None
            operator.rng = rng
            operator.tracer = job_tracer
            operator.array.rng = rng
            operator.array.tracer = job_tracer
        else:
            empty = [
                member
                for member in candidates
                if member.state is MemberState.EMPTY
            ]
            if empty:
                member = empty[0]
            else:
                member = min(candidates, key=lambda m: m.last_used)
                self.tracer.count("pool.evictions")
            warm = False
            self.tracer.count("pool.acquire_cold")
            member.operator = programmer(rng, job_tracer)
            member.fingerprint = fingerprint
            member.programmer = programmer
            self._apply_pending_fault(member, rng)

        member.state = MemberState.BUSY
        member.last_used = next(self._ticks)
        member.jobs_served += 1
        return member, warm

    def release(self, member: PoolMember) -> None:
        """Return a BUSY member to the schedulable set."""
        if member.state is not MemberState.BUSY:
            raise ServiceError(
                f"cannot release member {member.member_id} in state "
                f"{member.state}"
            )
        member.state = MemberState.IDLE

    # -- health --------------------------------------------------------------

    def drain(self, member: PoolMember) -> None:
        """Pull a member from scheduling after a health failure."""
        if member.state is MemberState.RETIRED:
            return
        member.state = MemberState.DRAINING
        self.tracer.count("pool.drains")

    def recover(self, member: PoolMember) -> bool:
        """Reprogram and re-probe a DRAINING member.

        Each cycle burns one unit of the drain budget and rebuilds the
        member from its stored programmer — in simulation terms a
        fresh physical array (new variation and fault draw), i.e. the
        REMAP rung of the recovery ladder.  A sticky injected fault
        survives the rebuild (hard defect), so such a member fails its
        re-probe repeatedly and retires once the budget is gone.
        Returns whether the member is back in service.
        """
        if member.state is not MemberState.DRAINING:
            raise ServiceError(
                f"cannot recover member {member.member_id} in state "
                f"{member.state}"
            )
        while member.drains < self.max_drains:
            member.drains += 1
            if member.programmer is None:
                # Never programmed: nothing to rebuild, back to EMPTY.
                member.state = MemberState.EMPTY
                self.tracer.count("pool.recoveries")
                return True
            member.operator = member.programmer(self.rng, self.tracer)
            self._apply_pending_fault(member, self.rng)
            if self.probe is not None:
                report = probe_operator(
                    member.operator,
                    self.probe,
                    self.rng,
                    label=f"pool-{member.member_id}",
                )
                if not report.healthy:
                    self.tracer.count("pool.recover_failures")
                    continue
            member.state = MemberState.IDLE
            self.tracer.count("pool.recoveries")
            return True
        member.state = MemberState.RETIRED
        member.operator = None
        self.tracer.count("pool.retirements")
        return False

    # -- chaos ---------------------------------------------------------------

    def inject_fault(
        self,
        member_id: int,
        row_fraction: float = 0.5,
        *,
        sticky: bool = False,
    ) -> None:
        """Knock rows of a member stuck-OFF (see
        :meth:`~repro.crossbar.array.CrossbarArray.inject_stuck_off`).

        Applied to the member's current operator immediately if it has
        one, and remembered so a member programmed later is poisoned
        right after programming.  A non-sticky fault is cleared by the
        next (re)program — soft corruption one recover cycle fixes; a
        sticky fault re-applies forever — a hard defect that forces
        retirement.
        """
        member = self.members[member_id]
        member.pending_fault = (row_fraction, sticky)
        if member.operator is not None:
            member.operator.array.inject_stuck_off(row_fraction)
            if not sticky:
                member.pending_fault = None
        self.tracer.count("pool.faults_injected")

    def _apply_pending_fault(
        self, member: PoolMember, rng: np.random.Generator
    ) -> None:
        if member.pending_fault is None or member.operator is None:
            return
        row_fraction, sticky = member.pending_fault
        member.operator.array.inject_stuck_off(row_fraction, rng=rng)
        if not sticky:
            member.pending_fault = None

    # -- introspection -------------------------------------------------------

    def states(self) -> dict[int, MemberState]:
        """``member_id -> state`` snapshot."""
        return {m.member_id: m.state for m in self.members}

    def active_members(self) -> int:
        """Members not yet retired."""
        return sum(
            1 for m in self.members if m.state is not MemberState.RETIRED
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        states = ", ".join(
            f"{m.member_id}:{m.state}" for m in self.members
        )
        return f"CrossbarPool({states})"
