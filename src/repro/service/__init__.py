"""Solver service: crossbar fleet pool, programming cache, job queue.

The serving layer on top of the one-shot solvers (ROADMAP: production
serving).  See :mod:`repro.service.service` for the scheduler,
:mod:`repro.service.pool` for the fleet lifecycle,
:mod:`repro.service.fingerprint` for the cache contract,
:mod:`repro.service.jobs` for the deterministic job derivation, and
:mod:`repro.service.resilience` for deadlines, retry backoff, circuit
breakers, brownout degradation, and chaos campaigns,
:mod:`repro.service.telemetry` for the live metrics / SLO / flight-
recorder surface behind ``--stats-every``,
:mod:`repro.service.dispatch` for the concurrent worker-thread /
worker-process dispatcher behind ``--workers``, and
:mod:`repro.service.frontdoor` for the JSONL-over-HTTP network front
door behind ``--listen``.
"""

from repro.service.dispatch import ConcurrentDispatcher
from repro.service.fingerprint import structural_fingerprint
from repro.service.frontdoor import FrontDoor
from repro.service.jobs import (
    DEFAULT_TENANT,
    JobSpec,
    ResolveSpec,
    attempt_seed,
    build_problem,
    build_resolve_problem,
    job_seed,
    read_jobs_jsonl,
    structure_seed,
    synthesize_jobs,
    synthesize_resolve_stream,
    write_jobs_jsonl,
)
from repro.service.pool import CrossbarPool, MemberState, PoolMember
from repro.service.queue import JobQueue, PendingJob, TenantPolicy
from repro.service.resilience import (
    FAULT_KINDS,
    BackoffPolicy,
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    Deadline,
    DegradationController,
    DegradationPolicy,
    DegradationTier,
    FaultCampaign,
    FaultEvent,
)
from repro.service.service import (
    SERVING_SCALE_HEADROOM,
    JobAttempt,
    JobRecord,
    ServiceConfig,
    ServiceSummary,
    SolverService,
    default_serving_settings,
    summarize,
)
from repro.service.telemetry import ServiceTelemetry

__all__ = [
    "DEFAULT_TENANT",
    "FAULT_KINDS",
    "SERVING_SCALE_HEADROOM",
    "BackoffPolicy",
    "BreakerPolicy",
    "BreakerState",
    "CircuitBreaker",
    "ConcurrentDispatcher",
    "CrossbarPool",
    "Deadline",
    "DegradationController",
    "DegradationPolicy",
    "DegradationTier",
    "FaultCampaign",
    "FaultEvent",
    "FrontDoor",
    "JobAttempt",
    "JobQueue",
    "JobRecord",
    "JobSpec",
    "MemberState",
    "PendingJob",
    "PoolMember",
    "ResolveSpec",
    "ServiceConfig",
    "ServiceSummary",
    "ServiceTelemetry",
    "SolverService",
    "TenantPolicy",
    "attempt_seed",
    "build_problem",
    "build_resolve_problem",
    "default_serving_settings",
    "job_seed",
    "read_jobs_jsonl",
    "structural_fingerprint",
    "structure_seed",
    "summarize",
    "synthesize_jobs",
    "synthesize_resolve_stream",
    "write_jobs_jsonl",
]
