"""Structural fingerprints: the programming-cache key.

The paper's O(N) per-iteration cost rests on a split of the Newton
matrix M (Eqn. 14a) into *structural* blocks — A, Aᵀ, the compensation
columns for negative entries, the identity/link rows — written once,
and the X, Y, Z, W *diagonals*, rewritten every iteration.  The same
split generalizes across requests: two LPs with the same constraint
matrix A (different b, c) program byte-identical structural blocks, so
a long-lived array that solved one can solve the other after only the
O(N) diagonal rewrite.

:func:`structural_fingerprint` captures that contract as a sha256 key:

- the exact bytes of A (every structural block of M is a deterministic
  function of A — including which columns get compensation variables);
- every setting that changes the *programmed conductances* for the same
  A: the device window, the conductance-mapping policy (headroom, row
  scaling, off-state), the write-verify policy, and ``initial_value``
  (the global scale is derived from the matrix peak, which includes
  the initial diagonals);
- the variation model's repr — variation does not change the nominal
  program, but it decides the probe tolerance and the physical state
  distribution, and mixing jobs with different hardware assumptions on
  one array would make their counters incomparable.

Vectors b and c never enter the fingerprint: they only appear in the
digitally-computed right-hand side (Eqn. 15a), never on the array.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.core.problem import LinearProgram
from repro.core.settings import CrossbarSolverSettings


def structural_fingerprint(
    problem: LinearProgram, settings: CrossbarSolverSettings
) -> str:
    """Sha256 key of the structural (A/Aᵀ + compensation) program.

    Equal fingerprints guarantee byte-identical structural blocks and
    identical conductance mapping: an array programmed for one problem
    can serve the other warm (diagonal rewrites only).
    """
    digest = hashlib.sha256()
    A = np.ascontiguousarray(problem.A, dtype=np.float64)
    digest.update(f"shape:{A.shape[0]}x{A.shape[1]};".encode())
    digest.update(A.tobytes())
    verify = settings.write_verify
    identity = (
        f"device:{settings.device.name};"
        f"variation:{settings.variation!r};"
        f"dac:{settings.dac_bits};adc:{settings.adc_bits};"
        f"headroom:{settings.scale_headroom};"
        f"row_scaling:{settings.row_scaling};"
        f"off_state:{settings.off_state};"
        f"initial:{settings.initial_value};"
        f"verify:{None if verify is None else (verify.tolerance, verify.max_rounds)};"
    )
    digest.update(identity.encode())
    return digest.hexdigest()[:16]
