"""Live serving telemetry: the service's streaming dashboard state.

:class:`ServiceTelemetry` bundles the three obs-layer primitives into
one object the :class:`~repro.service.service.SolverService` drives
through narrow hooks:

- a :class:`~repro.obs.metrics.MetricsRegistry` of streaming
  histograms (latency, per-job energy, queue wait — global and
  per-priority / per-group label sets) plus live gauges for queue
  depth, brownout tier, and per-member breaker state;
- an :class:`~repro.obs.slo.SLOTracker` folding every job outcome
  into availability and deadline error budgets with multi-window
  burn-rate gauges;
- a :class:`~repro.obs.recorder.FlightRecorder` ring of recent job /
  breaker / tier / chaos events, dumped to JSONL when a job fails, a
  breaker opens, or the brownout tier changes.

Everything here is wall-clock-side observability: nothing feeds back
into scheduling, and the deterministic record stream is computed
before any hook fires, so an attached telemetry object can never
change what the service does — only what it reports.

:meth:`ServiceTelemetry.stats_line` renders the one-line periodic
status ``repro serve --stats-every N`` prints: throughput, windowed
p50/p99 latency, energy per job, queue depth, tier, breaker states,
and SLO burn.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.obs.clock import monotonic
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder
from repro.obs.slo import SLOTracker
from repro.service.resilience import DegradationTier

#: Single-character badge per breaker state for the stats line:
#: ``brk=CCO`` reads as "members 0,1 closed, member 2 open".
_BREAKER_BADGE = {"closed": "C", "half_open": "H", "open": "O"}

#: Failure-reason value that counts against the deadline SLO.
_DEADLINE_REASON = "deadline_exceeded"


class ServiceTelemetry:
    """Aggregates live metrics, SLO budgets, and the flight recorder.

    Parameters
    ----------
    registry / slo / recorder:
        Pre-built components, or ``None`` to construct defaults.
    flight_dir:
        Directory the default flight recorder dumps into; ignored when
        ``recorder`` is given.  ``None`` keeps the ring in memory only
        (trips are still counted).
    clock:
        Time source for windows, budgets, and event stamps; injectable
        for deterministic tests.
    window_s:
        Sliding-window width of the default registry's histograms.
    """

    def __init__(
        self,
        *,
        registry: MetricsRegistry | None = None,
        slo: SLOTracker | None = None,
        recorder: FlightRecorder | None = None,
        flight_dir=None,
        clock: Callable[[], float] = monotonic,
        window_s: float = 60.0,
    ) -> None:
        self.clock = clock
        self.registry = (
            registry
            if registry is not None
            else MetricsRegistry(window_s=window_s, clock=clock)
        )
        self.slo = slo if slo is not None else SLOTracker(clock=clock)
        self.recorder = (
            recorder
            if recorder is not None
            else FlightRecorder(directory=flight_dir, clock=clock)
        )
        self.jobs = 0
        self.succeeded = 0
        self.energy_j_total = 0.0
        self.queue_depth = 0
        self.tier = DegradationTier.NORMAL
        self.breaker_states: dict[int, str] = {}
        self._started_s = clock()

    # -- service hooks -------------------------------------------------------

    def on_submit(self, spec) -> None:
        """One job admitted (``submit`` / ``try_submit`` success).

        Called under the service lock (admission is atomic there), so
        it needs no locking of its own.
        """
        self.registry.inc("service.jobs_submitted")
        self.registry.inc(
            "service.jobs_submitted",
            labels={"tenant": spec.tenant},
        )

    def on_lock_wait(self, waited_s: float) -> None:
        """One scheduler-lock acquisition by a dispatcher worker.

        Feeds the lock-contention counters (acquisitions and total
        seconds spent waiting) — registry-only, never the tracer, so
        traces stay byte-identical in serial replay and deterministic
        in totals under concurrency.  Called with the lock held.
        """
        self.registry.inc("service.lock.acquires")
        self.registry.inc("service.lock.wait_s", waited_s)

    def on_job(
        self, record, *, queue_depth: int = 0, tier: int = 0
    ) -> None:
        """One job finished (either way); fold it into every surface."""
        self.jobs += 1
        self.queue_depth = queue_depth
        success = record.success
        if success:
            self.succeeded += 1
        self.registry.inc("service.jobs_completed" if success else "service.jobs_failed")
        self.registry.set_gauge("service.queue.depth", float(queue_depth))

        labels: Mapping[str, str] = {
            "priority": str(record.spec.priority),
            "group": str(record.spec.group),
            "tenant": record.spec.tenant,
        }
        self.registry.inc(
            "service.jobs_completed" if success else "service.jobs_failed",
            labels={"tenant": record.spec.tenant},
        )
        latency_s = record.elapsed_seconds
        if latency_s > 0:
            self.registry.observe("service.latency_s", latency_s)
            self.registry.observe(
                "service.latency_s", latency_s, labels=labels
            )
        queue_wait = getattr(record, "queue_wait_s", 0.0)
        if queue_wait > 0:
            self.registry.observe("service.queue_wait_s", queue_wait)
        energy = getattr(record, "energy_j", 0.0)
        if energy > 0:
            self.energy_j_total += energy
            self.registry.inc("service.energy_j", energy)
            self.registry.observe("service.job_energy_j", energy)
            self.registry.observe(
                "service.job_energy_j", energy, labels=labels
            )

        if getattr(record.spec, "base_job_id", None) is not None:
            # Re-solve tier: count the job and the placement cost its
            # attempts actually paid (zero for a pure warm re-solve).
            self.registry.inc("service.resolve.jobs")
            program_cells = sum(
                getattr(attempt, "program_cells", 0)
                for attempt in record.attempts
            )
            if program_cells > 0:
                self.registry.inc(
                    "service.resolve.program_cells", float(program_cells)
                )

        reason = record.result.failure_reason.value
        deadline_missed = reason == _DEADLINE_REASON
        self.slo.record(success=success, deadline_missed=deadline_missed)
        for name, value in self.slo.gauges().items():
            self.registry.set_gauge(name, value)

        self.recorder.record(
            "job",
            job_id=record.spec.job_id,
            status=record.result.status.value,
            failure_reason=reason,
            member=record.member,
            warm=record.warm,
            requeues=record.requeues,
            fallback=record.fallback,
            tier=tier,
            latency_s=latency_s,
            energy_j=energy,
        )
        if not success:
            self.recorder.trip(
                "job_failed",
                job_id=record.spec.job_id,
                failure_reason=reason,
            )

    def on_breaker(
        self, member_id: int, old: str, new: str, tick: int
    ) -> None:
        """One member's circuit breaker changed state."""
        self.breaker_states[member_id] = new
        self.registry.set_gauge(
            "pool.breaker.state",
            float(
                {"closed": 0, "half_open": 1, "open": 2}.get(new, 0)
            ),
            labels={"member": str(member_id)},
        )
        self.recorder.record(
            "breaker", member=member_id, old=old, new=new, tick=tick
        )
        if new == "open":
            self.recorder.trip(
                "breaker_open", member=member_id, previous=old, tick=tick
            )

    def on_tier(self, old: int, new: int, samples: int) -> None:
        """The brownout controller moved tiers."""
        self.tier = DegradationTier(new)
        self.registry.set_gauge("service.degradation.tier", float(new))
        self.recorder.record(
            "tier", old=old, new=new, samples=samples
        )
        self.recorder.trip(
            "tier_change",
            old=DegradationTier(old).name,
            new=DegradationTier(new).name,
            samples=samples,
        )

    def on_chaos(self, event) -> None:
        """One chaos-campaign event fired into the live service."""
        self.registry.inc("service.chaos.events")
        self.recorder.record(
            "chaos",
            fault=event.kind,
            at_job=event.at_job,
            member=event.member,
        )

    # -- rendering -----------------------------------------------------------

    def _quantiles_ms(self) -> tuple[float, float]:
        """Windowed (p50, p99) latency in ms, cumulative fallback.

        The sliding window goes empty during an idle stretch; falling
        back to the cumulative histogram keeps the stats line showing
        the run's percentiles instead of zeros.
        """
        series = self.registry.histogram("service.latency_s")
        hist = series.window.snapshot()
        if hist.count == 0:
            hist = series.cumulative
        return hist.quantile(0.5) * 1e3, hist.quantile(0.99) * 1e3

    def stats_line(self) -> str:
        """One-line live status for ``--stats-every`` printing."""
        elapsed = max(self.clock() - self._started_s, 1e-9)
        rate = self.jobs / elapsed
        p50_ms, p99_ms = self._quantiles_ms()
        energy_per_job = (
            self.energy_j_total / self.jobs if self.jobs else 0.0
        )
        badges = "".join(
            _BREAKER_BADGE.get(self.breaker_states[m], "?")
            for m in sorted(self.breaker_states)
        )
        parts = [
            f"jobs={self.jobs}",
            f"ok={self.succeeded}",
            f"{rate:.1f} jobs/s",
            f"p50={p50_ms:.1f}ms",
            f"p99={p99_ms:.1f}ms",
            f"energy/job={energy_per_job:.3g}J",
            f"q={self.queue_depth}",
            f"tier={self.tier.name}",
        ]
        if badges:
            parts.append(f"brk={badges}")
        parts.append(self.slo.describe())
        return "  ".join(parts)
