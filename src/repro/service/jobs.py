"""Job specifications for the solver service.

A :class:`JobSpec` names one LP solve request without carrying the
problem data: the problem is *derived* deterministically from the spec
and the service's base seed, so a job file is a few bytes per job, a
batch replays bit-for-bit, and two services with the same base seed
agree on every problem.

The derivation splits randomness the same way the crossbar splits the
Newton matrix:

- the **structure seed** depends only on ``(base_seed, group)`` and
  drives the constraint matrix A — every job in a group programs
  byte-identical structural blocks, which is what the programming
  cache (:mod:`repro.service.fingerprint`) exploits;
- the **job seed** depends on ``(base_seed, job_id)`` and drives the
  right-hand sides b and objective c — per-job state that never
  touches the array;
- the **attempt seed** additionally folds in the attempt index, so a
  rescheduled job re-draws process variation (the paper's Section 4.5
  reading: each retry is a fresh physical draw) while the problem
  itself stays fixed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
from typing import Iterable, Iterator

import numpy as np

from repro.core.problem import LinearProgram
from repro.workloads.random_lp import (
    random_feasible_lp,
    random_infeasible_lp,
)

#: Valid ``JobSpec.kind`` values.
JOB_KINDS = ("feasible", "infeasible")

#: Tenant a spec bills to when none is named.
DEFAULT_TENANT = "default"


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """One solve request.

    Parameters
    ----------
    job_id:
        Unique name; seeds the per-job b/c draw, keys the result
        records, and labels the job's trace span.
    constraints:
        Number of inequality constraints (m); variables follow the
        paper's ``m // 3`` rule.
    group:
        Structure-sharing group: jobs with equal ``(group,
        constraints, kind)`` share the exact same constraint matrix A
        and therefore the same programming-cache fingerprint.
    kind:
        ``"feasible"`` or ``"infeasible"`` (planted certificate).
    priority:
        Scheduling priority; higher runs first (FIFO within a level).
        Priority orders jobs *within* a tenant; across tenants the
        queue's weighted fair scheduler decides (see
        :class:`~repro.service.queue.JobQueue`).
    tenant:
        Admission/fairness bucket this job bills to.  Tenants share
        the pool under deficit-round-robin weighted fair scheduling
        with per-tenant in-flight and queue-depth caps
        (:class:`~repro.service.queue.TenantPolicy`).  The default
        tenant makes single-tenant deployments behave exactly like
        the pre-tenancy scheduler.
    variation:
        Process-variation percent for this job's hardware model.
    deadline_s:
        Wall-clock budget in seconds, counted from the job's first
        dispatch.  ``None`` inherits the service default (which may
        itself be unbounded).  Checked between recovery rungs and PDIP
        iterations; an expired job fails with a machine-readable
        DEADLINE_EXCEEDED and is never re-dispatched.
    max_attempts:
        Per-job retry budget override; ``None`` inherits the service
        default.  Must be >= 1.
    """

    job_id: str
    constraints: int = 24
    group: int = 0
    kind: str = "feasible"
    priority: int = 0
    tenant: str = DEFAULT_TENANT
    variation: float = 0.0
    deadline_s: float | None = None
    max_attempts: int | None = None

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ValueError("job_id must be non-empty")
        if not self.tenant:
            raise ValueError("tenant must be non-empty")
        if self.constraints < 3:
            raise ValueError("constraints must be >= 3")
        if self.kind not in JOB_KINDS:
            raise ValueError(
                f"unknown job kind {self.kind!r}; expected one of "
                f"{JOB_KINDS}"
            )
        if self.variation < 0:
            raise ValueError("variation percent must be non-negative")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive when set")
        if self.max_attempts is not None and self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1 when set")

    def to_dict(self) -> dict:
        """Plain-dict form (the JSONL job-file line)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        """Build a spec from a parsed JSONL line (extras ignored)."""
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclasses.dataclass(frozen=True)
class ResolveSpec:
    """A parameter-only re-solve of an already-admitted job.

    The structural fields (``constraints``, ``group``, ``kind``,
    ``variation``) are *inherited* from the base job at admission —
    the service overwrites whatever a JSONL line carries — so a
    resolve can never silently name a different structure than the
    array it expects to reuse.  Only ``b``/``c`` (explicit new
    parameters) and/or ``perturb`` (a seeded multiplicative drift of
    the base problem's parameters, the rolling-horizon idiom) are new.

    Parameters
    ----------
    job_id / priority / tenant / deadline_s / max_attempts:
        As on :class:`JobSpec` (``priority``/``tenant`` default to the
        base job's values when admitted through
        ``SolverService.resolve``).
    base_job_id:
        The admitted job whose structure (and stored optimum, for
        warm-starting) this re-solve reuses.  May itself name an
        earlier resolve — rolling horizons chain.
    b / c:
        Explicit replacement right-hand side / objective (optional;
        ``None`` keeps the base problem's vector).
    perturb:
        Relative drift amplitude: each kept parameter vector is
        multiplied by ``1 + perturb * U(-1, 1)`` drawn from the job
        seed.  ``0`` re-solves the base parameters unchanged.
    """

    job_id: str
    base_job_id: str
    constraints: int = 24
    group: int = 0
    kind: str = "feasible"
    priority: int = 0
    tenant: str = DEFAULT_TENANT
    variation: float = 0.0
    deadline_s: float | None = None
    max_attempts: int | None = None
    b: tuple[float, ...] | None = None
    c: tuple[float, ...] | None = None
    perturb: float = 0.0

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ValueError("job_id must be non-empty")
        if not self.base_job_id:
            raise ValueError("base_job_id must be non-empty")
        if self.job_id == self.base_job_id:
            raise ValueError("a resolve cannot name itself as base")
        if not self.tenant:
            raise ValueError("tenant must be non-empty")
        if not 0.0 <= self.perturb < 1.0:
            raise ValueError("perturb must lie in [0, 1)")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive when set")
        if self.max_attempts is not None and self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1 when set")
        for label, vector in (("b", self.b), ("c", self.c)):
            if vector is None:
                continue
            values = tuple(float(v) for v in vector)
            if not all(np.isfinite(values)):
                raise ValueError(f"{label} contains non-finite entries")
            object.__setattr__(self, label, values)

    def to_dict(self) -> dict:
        """Plain-dict form (the JSONL job-file line)."""
        data = dataclasses.asdict(self)
        for label in ("b", "c"):
            if data[label] is not None:
                data[label] = list(data[label])
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ResolveSpec":
        """Build a spec from a parsed JSONL line (extras ignored)."""
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


def _derived_seed(*parts) -> int:
    """A 63-bit seed from a sha256 over the joined parts."""
    text = ":".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def structure_seed(base_seed: int, spec: JobSpec) -> int:
    """Seed of the shared constraint-matrix draw for ``spec``'s group."""
    return _derived_seed(
        "structure", base_seed, spec.group, spec.constraints, spec.kind
    )


def job_seed(base_seed: int, job_id: str) -> int:
    """Seed of the per-job right-hand-side / objective draw."""
    return _derived_seed("job", base_seed, job_id)


def attempt_seed(base_seed: int, job_id: str, attempt: int) -> int:
    """Seed of one attempt's variation / fault / probe draws."""
    return _derived_seed("attempt", base_seed, job_id, attempt)


def build_problem(spec: JobSpec, base_seed: int) -> LinearProgram:
    """Materialize the LP a spec names (pure function of spec + seed)."""
    s_rng = np.random.default_rng(structure_seed(base_seed, spec))
    rng = np.random.default_rng(job_seed(base_seed, spec.job_id))
    generator = (
        random_feasible_lp
        if spec.kind == "feasible"
        else random_infeasible_lp
    )
    return generator(
        spec.constraints,
        rng=rng,
        structure_rng=s_rng,
        name=spec.job_id,
    )


def build_resolve_problem(
    spec: ResolveSpec,
    base_problem: LinearProgram,
    base_seed: int,
) -> LinearProgram:
    """Materialize the LP a resolve spec names, given its base problem.

    The constraint matrix is the base problem's ``A`` unchanged (that
    is the whole point — the programmed array stays valid).  Explicit
    ``b``/``c`` replace the base vectors; otherwise ``perturb`` applies
    a multiplicative drift drawn from the job seed.  Both drift vectors
    are always drawn so the stream replays bit-for-bit regardless of
    which parameters a given step overrides.
    """
    m, n = base_problem.A.shape
    b = (
        np.asarray(spec.b, dtype=float)
        if spec.b is not None
        else base_problem.b
    )
    c = (
        np.asarray(spec.c, dtype=float)
        if spec.c is not None
        else base_problem.c
    )
    if spec.perturb > 0.0:
        rng = np.random.default_rng(job_seed(base_seed, spec.job_id))
        drift_b = 1.0 + spec.perturb * rng.uniform(-1.0, 1.0, m)
        drift_c = 1.0 + spec.perturb * rng.uniform(-1.0, 1.0, n)
        if spec.b is None:
            b = base_problem.b * drift_b
        if spec.c is None:
            c = base_problem.c * drift_c
    if b.shape != (m,) or c.shape != (n,):
        raise ValueError(
            f"resolve {spec.job_id!r} carries b/c of shape "
            f"{b.shape}/{c.shape}; base problem needs ({m},)/({n},)"
        )
    return LinearProgram(c=c, A=base_problem.A, b=b, name=spec.job_id)


def synthesize_resolve_stream(
    steps: int,
    *,
    constraints: int = 24,
    group: int = 0,
    perturb: float = 0.02,
    tenant: str = DEFAULT_TENANT,
    prefix: str = "horizon",
    chain: bool = True,
) -> list:
    """One cold base job plus ``steps`` rolling-horizon re-solves.

    Models the paper's streaming regime: the network/recipe matrix A
    is fixed, demands drift a few percent per scheduling period.  With
    ``chain=True`` (default) each step perturbs the *previous* step's
    parameters (a random walk, like a real horizon); otherwise every
    step drifts from the base job directly.  The first spec is the
    :class:`JobSpec` that pays the one cold programming; everything
    after re-solves warm.
    """
    if steps < 1:
        raise ValueError("steps must be positive")
    base = JobSpec(
        job_id=f"{prefix}-base",
        constraints=constraints,
        group=group,
        tenant=tenant,
    )
    specs: list = [base]
    parent = base.job_id
    for index in range(steps):
        spec = ResolveSpec(
            job_id=f"{prefix}-r{index:04d}",
            base_job_id=parent,
            constraints=constraints,
            group=group,
            perturb=perturb,
            tenant=tenant,
        )
        specs.append(spec)
        if chain:
            parent = spec.job_id
    return specs


def synthesize_jobs(
    count: int,
    *,
    groups: int = 1,
    constraints: int = 24,
    variation: float = 0.0,
    infeasible_every: int = 0,
    tenants: int = 1,
    prefix: str = "job",
) -> list[JobSpec]:
    """A deterministic batch of job specs for demos, tests, and CI.

    Jobs are assigned to structure groups round-robin, so ``count``
    jobs over ``groups`` groups repeat each constraint matrix roughly
    ``count / groups`` times — the warm-cache regime.  When
    ``infeasible_every > 0``, every k-th job plants an infeasibility
    certificate instead (its own structure sub-group, since the
    contradiction rows change A).  ``tenants > 1`` spreads jobs
    round-robin over ``tenant-00`` .. ``tenant-NN`` buckets for
    multi-tenant serving demos; the default keeps every job on the
    single default tenant.
    """
    if count < 1:
        raise ValueError("count must be positive")
    if groups < 1:
        raise ValueError("groups must be positive")
    if tenants < 1:
        raise ValueError("tenants must be positive")
    specs = []
    for index in range(count):
        infeasible = infeasible_every > 0 and (index + 1) % infeasible_every == 0
        specs.append(
            JobSpec(
                job_id=f"{prefix}-{index:04d}",
                constraints=constraints,
                group=index % groups,
                kind="infeasible" if infeasible else "feasible",
                tenant=(
                    f"tenant-{index % tenants:02d}"
                    if tenants > 1
                    else DEFAULT_TENANT
                ),
                variation=variation,
            )
        )
    return specs


def write_jobs_jsonl(
    specs: Iterable[JobSpec], path: str | pathlib.Path
) -> pathlib.Path:
    """Write one spec per line; the ``repro batch`` input format."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for spec in specs:
            handle.write(json.dumps(spec.to_dict(), sort_keys=True) + "\n")
    return path


def read_jobs_jsonl(path: str | pathlib.Path) -> Iterator:
    """Yield specs from a JSONL job file (blank lines ignored).

    Lines carrying a ``base_job_id`` parse as :class:`ResolveSpec`,
    everything else as :class:`JobSpec` — so one file can hold a mixed
    solve/re-solve stream (``repro batch`` replays it in order, and
    order matters: a resolve must follow its base).
    """
    with pathlib.Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            if data.get("base_job_id"):
                yield ResolveSpec.from_dict(data)
            else:
                yield JobSpec.from_dict(data)
