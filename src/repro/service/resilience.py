"""Fault-tolerance primitives for the serving layer.

The paper's pitch is a solver that keeps delivering answers on
imperfect analog hardware; this module gives the serving stack the
matching operational vocabulary, treating device failure as a
continuous operating condition rather than an exception:

- **deadlines** — :class:`~repro.obs.clock.Deadline` (re-exported
  here) bounds a job's wall-clock budget; the solvers check it between
  recovery rungs and PDIP iterations, and the service refuses to
  dispatch (or re-dispatch) an expired job;
- **retry budgets** — :class:`BackoffPolicy` computes exponential
  backoff with *deterministic seeded jitter* between requeue attempts,
  so a fault storm does not turn into a synchronized retry stampede
  while batch replays stay bit-identical;
- **circuit breakers** — :class:`CircuitBreaker` (one per pool member)
  stops placing jobs on a flapping array after consecutive failures,
  cools down for a fixed number of scheduler ticks, then lets a single
  probe job through (HALF_OPEN) before closing again — catching
  members that fail *without* tripping the health probe before the
  drain budget retires them;
- **brownout degradation** — :class:`DegradationController` watches a
  sliding failure-rate window and sheds work to a cheaper tier
  (skip write-verify → cap retry attempts → route straight to the
  digital fallback) with hysteresis on the way back up, so throughput
  degrades smoothly instead of collapsing;
- **chaos campaigns** — :class:`FaultCampaign` schedules declarative,
  seeded fault scenarios (stuck-cell storms, member death, drift
  bursts, queue-saturation pulses) at chosen dispatch indices,
  replacing one-shot ``inject_fault`` poking for sustained failure
  testing (``repro batch --chaos scenario.json``).

Everything here is deterministic by construction: breaker cooldowns
count scheduler ticks (not wall-clock), backoff jitter derives from
sha256 over ``(base_seed, job_id, attempt)``, and campaign events fire
at dispatch indices — the same seed and scenario replay to the same
``JobRecord`` stream.  Deadlines are the one wall-clock concept; tests
inject a fake clock to keep them deterministic too.
"""

from __future__ import annotations

import collections
import dataclasses
import enum
import hashlib
import json
import pathlib
from typing import Callable, Iterable

from repro.obs.clock import Deadline
from repro.obs.tracer import NOOP, Tracer

__all__ = [
    "BackoffPolicy",
    "BreakerPolicy",
    "BreakerState",
    "CircuitBreaker",
    "Deadline",
    "DegradationController",
    "DegradationPolicy",
    "DegradationTier",
    "FAULT_KINDS",
    "FaultCampaign",
    "FaultEvent",
]


def _unit_interval(*parts) -> float:
    """Deterministic uniform draw in [0, 1) from sha256 over the parts."""
    text = ":".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


# -- retry budgets -----------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with deterministic seeded jitter.

    The delay before requeue attempt ``k`` (1-based) is
    ``min(max_s, base_s * multiplier**(k-1))`` shrunk by up to
    ``jitter`` of itself, where the jitter draw is a pure function of
    ``(base_seed, job_id, attempt)`` — two services with the same seed
    and job stream compute identical delays, but two jobs failing at
    the same instant back off differently (no retry stampede).

    ``sleep=False`` (the default) only *accounts* the delay — it is
    stamped on the attempt record and the ``service.backoff_seconds``
    counter — without stalling the simulation; set ``sleep=True`` when
    fronting real traffic.
    """

    base_s: float = 0.05
    multiplier: float = 2.0
    max_s: float = 2.0
    jitter: float = 0.5
    sleep: bool = False

    def __post_init__(self) -> None:
        if self.base_s <= 0:
            raise ValueError("base_s must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_s < self.base_s:
            raise ValueError("max_s must be >= base_s")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must lie in [0, 1]")

    def delay_s(self, base_seed: int, job_id: str, attempt: int) -> float:
        """Backoff before requeue attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt must be >= 1")
        raw = min(self.max_s, self.base_s * self.multiplier ** (attempt - 1))
        unit = _unit_interval("backoff", base_seed, job_id, attempt)
        return raw * (1.0 - self.jitter * unit)


# -- circuit breakers --------------------------------------------------------


class BreakerState(enum.Enum):
    """Circuit-breaker state machine (CLOSED → OPEN → HALF_OPEN)."""

    #: Healthy: placements flow normally.
    CLOSED = "closed"
    #: Tripped: the member takes no placements until the cooldown ends.
    OPEN = "open"
    #: Cooling down ended: exactly one probe job is let through.
    HALF_OPEN = "half_open"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Numeric encoding for the ``pool.breaker.state.<id>`` gauge.
BREAKER_STATE_GAUGE = {
    BreakerState.CLOSED: 0,
    BreakerState.HALF_OPEN: 1,
    BreakerState.OPEN: 2,
}


@dataclasses.dataclass(frozen=True)
class BreakerPolicy:
    """Per-pool-member circuit-breaker configuration.

    Cooldowns count *scheduler ticks* (pool ``acquire`` calls), not
    wall-clock — the breaker stays deterministic under replay and
    meaningful in simulation, where a thousand jobs run in a second.
    """

    #: Consecutive failures that trip CLOSED → OPEN.
    failure_threshold: int = 3
    #: Scheduler ticks an OPEN breaker waits before probing.
    cooldown_ticks: int = 8
    #: Probe successes needed to close from HALF_OPEN.
    half_open_successes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_ticks < 1:
            raise ValueError("cooldown_ticks must be >= 1")
        if self.half_open_successes < 1:
            raise ValueError("half_open_successes must be >= 1")


class CircuitBreaker:
    """One member's breaker; the pool drives it from placement results.

    ``on_transition(old, new, tick)`` fires on every state change so
    the pool can emit ``pool.breaker.*`` counters and state gauges;
    :attr:`transitions` keeps the full ``(tick, old, new)`` history for
    span-replay reconciliation.
    """

    def __init__(
        self,
        policy: BreakerPolicy,
        *,
        on_transition: (
            Callable[[BreakerState, BreakerState, int], None] | None
        ) = None,
    ) -> None:
        self.policy = policy
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_tick: int | None = None
        self._half_open_successes = 0
        self._on_transition = on_transition
        self.transitions: list[tuple[int, BreakerState, BreakerState]] = []

    def _move(self, new: BreakerState, tick: int) -> None:
        old = self.state
        if old is new:
            return
        self.state = new
        self.transitions.append((tick, old, new))
        if self._on_transition is not None:
            self._on_transition(old, new, tick)

    def allow(self, tick: int) -> bool:
        """Whether a placement may land on this member at ``tick``.

        An OPEN breaker whose cooldown has elapsed moves to HALF_OPEN
        and admits the probe placement in the same call.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            assert self.opened_tick is not None
            if tick - self.opened_tick >= self.policy.cooldown_ticks:
                self._half_open_successes = 0
                self._move(BreakerState.HALF_OPEN, tick)
                return True
            return False
        return True  # HALF_OPEN: the probe placement

    def record_success(self, tick: int) -> None:
        """A placement on this member concluded successfully."""
        self.consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self._half_open_successes += 1
            if self._half_open_successes >= self.policy.half_open_successes:
                self._move(BreakerState.CLOSED, tick)

    def record_failure(self, tick: int) -> None:
        """A placement on this member failed."""
        if self.state is BreakerState.HALF_OPEN:
            # The probe failed: straight back to OPEN, fresh cooldown.
            self.opened_tick = tick
            self.consecutive_failures = self.policy.failure_threshold
            self._move(BreakerState.OPEN, tick)
            return
        self.consecutive_failures += 1
        if (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.policy.failure_threshold
        ):
            self.opened_tick = tick
            self._move(BreakerState.OPEN, tick)


# -- brownout degradation ----------------------------------------------------


class DegradationTier(enum.IntEnum):
    """Service degradation tiers, cheapest-first shedding order."""

    #: Full pipeline: write-verify, probes, full retry budget.
    NORMAL = 0
    #: Shed closed-loop write-verify (cheaper programming).
    SKIP_VERIFY = 1
    #: Additionally cap each job to a single analog attempt.
    CAP_RECOVERY = 2
    #: Route jobs straight to the digital fallback (analog browned out).
    DIGITAL_ONLY = 3


@dataclasses.dataclass(frozen=True)
class DegradationPolicy:
    """Sliding-window brownout configuration with hysteresis.

    The controller tracks the failure rate of the last ``window``
    attempts.  Crossing ``enter_thresholds[k-1]`` sheds to tier ``k``
    immediately; recovery steps down one tier at a time, and only when
    the rate has fallen ``exit_margin`` *below* the tier's entry
    threshold and at least ``cooldown`` attempts have passed since the
    last change — the hysteresis that keeps the service from flapping
    between tiers at the boundary.
    """

    window: int = 16
    min_samples: int = 8
    enter_thresholds: tuple[float, float, float] = (0.25, 0.5, 0.75)
    exit_margin: float = 0.15
    cooldown: int = 4

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ValueError("window must be >= 2")
        if not 1 <= self.min_samples <= self.window:
            raise ValueError("min_samples must lie in [1, window]")
        if len(self.enter_thresholds) != 3:
            raise ValueError("enter_thresholds must have one entry per tier")
        previous = 0.0
        for threshold in self.enter_thresholds:
            if not previous < threshold <= 1.0:
                raise ValueError(
                    "enter_thresholds must be increasing and in (0, 1]"
                )
            previous = threshold
        if self.exit_margin <= 0:
            raise ValueError("exit_margin must be positive")
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")


class DegradationController:
    """Tracks attempt outcomes and drives the current tier.

    Emits ``service.degradation.sheds`` / ``.recoveries`` counters and
    the ``service.degradation.tier`` gauge on the service tracer;
    :attr:`transitions` keeps ``(sample_index, old_tier, new_tier)``
    for span-replay reconciliation.
    """

    def __init__(
        self,
        policy: DegradationPolicy | None = None,
        *,
        tracer: Tracer | None = None,
        on_transition=None,
    ) -> None:
        self.policy = policy if policy is not None else DegradationPolicy()
        self.tracer = tracer if tracer is not None else NOOP
        self.tier = DegradationTier.NORMAL
        self.samples = 0
        self._outcomes: collections.deque = collections.deque(
            maxlen=self.policy.window
        )
        self._since_change = 0
        self.transitions: list[tuple[int, int, int]] = []
        #: Optional ``(old, new, samples)`` callback fired on every
        #: tier change — the serving layer's telemetry hook.
        self.on_transition = on_transition

    def failure_rate(self) -> float:
        """Failure share of the current window (0 when empty)."""
        if not self._outcomes:
            return 0.0
        failures = sum(1 for ok in self._outcomes if not ok)
        return failures / len(self._outcomes)

    def _target_tier(self, rate: float) -> DegradationTier:
        target = DegradationTier.NORMAL
        for tier, threshold in zip(
            (
                DegradationTier.SKIP_VERIFY,
                DegradationTier.CAP_RECOVERY,
                DegradationTier.DIGITAL_ONLY,
            ),
            self.policy.enter_thresholds,
        ):
            if rate >= threshold:
                target = tier
        return target

    def _move(self, new: DegradationTier) -> None:
        old = self.tier
        self.tier = new
        self._since_change = 0
        self.transitions.append((self.samples, int(old), int(new)))
        if new > old:
            self.tracer.count("service.degradation.sheds")
        else:
            self.tracer.count("service.degradation.recoveries")
        self.tracer.gauge("service.degradation.tier", int(new))
        if self.on_transition is not None:
            self.on_transition(int(old), int(new), self.samples)

    def record(self, success: bool) -> DegradationTier:
        """Fold one attempt outcome in; returns the (new) tier."""
        self._outcomes.append(bool(success))
        self.samples += 1
        self._since_change += 1
        if len(self._outcomes) < self.policy.min_samples:
            return self.tier
        rate = self.failure_rate()
        target = self._target_tier(rate)
        if target > self.tier:
            # Shed immediately: brownouts do not wait for cooldowns.
            self._move(target)
        elif (
            target < self.tier
            and self._since_change >= self.policy.cooldown
            and rate
            <= self.policy.enter_thresholds[int(self.tier) - 1]
            - self.policy.exit_margin
        ):
            # Recover one tier at a time, with hysteresis.
            self._move(DegradationTier(int(self.tier) - 1))
        return self.tier


# -- chaos campaigns ---------------------------------------------------------


#: Valid ``FaultEvent.kind`` values.
FAULT_KINDS = ("stuck_cells", "member_death", "drift", "queue_pulse")


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault, fired before dispatch ``at_job``.

    Parameters
    ----------
    at_job:
        Dispatch index (0-based count of scheduler steps) at which the
        event fires — *before* that step's job is popped.
    kind:
        ``stuck_cells`` — knock ``row_fraction`` of ``member``'s rows
        stuck-OFF (``sticky`` survives reprogramming: a hard defect);
        ``member_death`` — permanent full-array hard fault on
        ``member`` (drains, fails recovery, retires);
        ``drift`` — multiplicative conductance drift burst of relative
        ``magnitude`` on ``member``'s programmed array;
        ``queue_pulse`` — a burst of ``jobs`` synthetic filler jobs
        (``constraints`` each) submitted through admission control,
        saturating the queue.
    """

    at_job: int
    kind: str
    member: int | None = None
    row_fraction: float = 0.5
    sticky: bool = False
    magnitude: float = 0.1
    jobs: int = 4
    constraints: int = 12

    def __post_init__(self) -> None:
        if self.at_job < 0:
            raise ValueError("at_job must be non-negative")
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.kind in ("stuck_cells", "member_death", "drift"):
            if self.member is None or self.member < 0:
                raise ValueError(f"{self.kind} event needs a member id")
        if self.kind == "stuck_cells" and not 0 < self.row_fraction <= 1:
            raise ValueError("row_fraction must lie in (0, 1]")
        if self.kind == "drift" and self.magnitude <= 0:
            raise ValueError("drift magnitude must be positive")
        if self.kind == "queue_pulse" and self.jobs < 1:
            raise ValueError("queue_pulse needs jobs >= 1")

    def to_dict(self) -> dict:
        """Plain-dict form (one entry of the scenario JSON)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        """Build an event from a parsed scenario entry."""
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


class FaultCampaign:
    """A declarative, seeded schedule of fault events.

    Replaces one-shot ``inject_fault`` poking for sustained failure
    scenarios: the service fires :meth:`events_at` before every
    scheduler step, so the same seed and scenario replay the exact
    fault sequence at any pool size.  The JSON form (one object:
    ``name``, ``seed``, ``events`` list) is the ``repro batch --chaos``
    input.
    """

    def __init__(
        self,
        events: Iterable[FaultEvent],
        *,
        name: str = "campaign",
        seed: int = 0,
    ) -> None:
        self.name = name
        self.seed = seed
        # Stable order: by dispatch index, ties by listing order.
        self.events = tuple(
            sorted(enumerate(events), key=lambda pair: (pair[1].at_job, pair[0]))
        )
        self.events = tuple(event for _, event in self.events)
        self._by_index: dict[int, list[FaultEvent]] = {}
        for event in self.events:
            self._by_index.setdefault(event.at_job, []).append(event)
        self.fired = 0

    def __len__(self) -> int:
        return len(self.events)

    def events_at(self, index: int) -> tuple[FaultEvent, ...]:
        """Events scheduled for dispatch index ``index`` (may be empty)."""
        return tuple(self._by_index.get(index, ()))

    def unfired_after(self, index: int) -> tuple[FaultEvent, ...]:
        """Events scheduled past ``index`` (diagnostics for short runs)."""
        return tuple(e for e in self.events if e.at_job > index)

    def to_dict(self) -> dict:
        """Plain-dict form (the ``--chaos`` scenario JSON object)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultCampaign":
        """Build a campaign from a parsed scenario object."""
        return cls(
            [FaultEvent.from_dict(e) for e in data.get("events", [])],
            name=data.get("name", "campaign"),
            seed=data.get("seed", 0),
        )

    @classmethod
    def from_json(cls, path: str | pathlib.Path) -> "FaultCampaign":
        """Load a scenario file (the ``repro batch --chaos`` input)."""
        with pathlib.Path(path).open("r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def to_json(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write the scenario JSON; returns the path written."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultCampaign(name={self.name!r}, seed={self.seed}, "
            f"events={len(self.events)})"
        )


def stuck_storm(
    members: Iterable[int],
    *,
    start: int = 0,
    stride: int = 2,
    row_fraction: float = 0.5,
    sticky: bool = False,
) -> list[FaultEvent]:
    """A stuck-cell storm: one ``stuck_cells`` hit per member, staggered
    ``stride`` dispatches apart starting at ``start``.  A convenience
    for benches and CI scenarios.
    """
    return [
        FaultEvent(
            at_job=start + position * stride,
            kind="stuck_cells",
            member=member,
            row_fraction=row_fraction,
            sticky=sticky,
        )
        for position, member in enumerate(members)
    ]
