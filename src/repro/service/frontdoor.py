"""JSONL-over-HTTP network front door for the solver service.

:class:`FrontDoor` binds a stdlib :class:`~http.server.
ThreadingHTTPServer` in front of a :class:`~repro.service.service.
SolverService` whose queue a :class:`~repro.service.dispatch.
ConcurrentDispatcher` drains continuously, so the service takes
sustained external traffic (``repro serve --listen HOST:PORT``).

Endpoints (all JSON / JSONL, no dependencies beyond the stdlib):

- ``POST /submit`` — body is one job spec per line, the exact schema
  of the ``repro batch`` jobs file (:meth:`~repro.service.jobs.
  JobSpec.to_dict`).  Each line is admitted through ``try_submit``;
  the response body echoes one JSONL ack per line: ``{"job_id": ...,
  "accepted": true}`` or ``{"accepted": false, "error": ...}`` when a
  bound rejected or the spec failed validation.  Admission control is
  the service's own: queue depth and per-tenant caps apply unchanged.
- ``POST /resolve`` — body is one :class:`~repro.service.jobs.
  ResolveSpec` per line (``base_job_id`` required): parameter-only
  warm re-solves against an already-submitted job's structure.  Acks
  mirror ``/submit``; a line naming a base job the service never
  admitted is rejected with ``{"accepted": false, "code": 404, ...}``
  (a structured reject, never a connection error), and the response
  status is 404 when *every* line was an unknown-base reject.
- ``GET /stream?since=N&timeout=S`` — completed job records as JSONL,
  each line ``{"seq": i, ...record}`` in completion order.  ``since``
  (default 0) skips records already seen; ``timeout`` (seconds,
  default 0) long-polls for at least one new record.  Clients resume
  by passing the last ``seq + 1``.
- ``GET /stats`` — the live one-line telemetry summary plus raw
  counts, when the service has telemetry attached.
- ``GET /healthz`` — liveness plus queue depth and brownout tier.

Thread safety: handler threads touch the service only through its
thread-safe admission methods; completed records flow through the
dispatcher's ``on_record`` hook (held under the service lock) into a
front-door list guarded by its own condition.  The condition is only
ever acquired *after* the service lock on that path and never the
other way around, so the two locks cannot deadlock.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable
from urllib.parse import parse_qs, urlparse

from repro.exceptions import UnknownJobError
from repro.service.dispatch import ConcurrentDispatcher
from repro.service.jobs import JobSpec, ResolveSpec
from repro.service.service import JobRecord, SolverService


class FrontDoor:
    """HTTP facade + continuous dispatcher over one service.

    Parameters
    ----------
    service:
        The service to expose.  Its ``config.workers`` worker threads
        drain the queue for as long as the front door runs.
    host / port:
        Bind address; port ``0`` picks a free port (see
        :attr:`address` after construction — the socket binds in the
        constructor, so tests can read the port before :meth:`start`).
    on_record:
        Optional per-completion hook (fired under the service lock,
        after the record is published to ``/stream`` waiters) — the
        CLI's ``--stats-every`` printer.

    Lifecycle: ``start()`` → traffic → ``stop()``; or
    ``serve_forever()`` which blocks until ``KeyboardInterrupt``.
    Thread-safe by construction (see module note).
    """

    def __init__(
        self,
        service: SolverService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        on_record: Callable[[JobRecord], None] | None = None,
    ) -> None:
        self.service = service
        self._user_on_record = on_record
        self._records: list[JobRecord] = []
        self._cond = threading.Condition()
        self._dispatcher = ConcurrentDispatcher(service)
        self._server = ThreadingHTTPServer(
            (host, port), _make_handler(self)
        )
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — resolved even for port 0."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    @property
    def records(self) -> list[JobRecord]:
        """Snapshot of completed records so far (completion order)."""
        with self._cond:
            return list(self._records)

    def _on_record(self, record: JobRecord) -> None:
        """Dispatcher completion hook (runs under the service lock)."""
        with self._cond:
            self._records.append(record)
            self._cond.notify_all()
        if self._user_on_record is not None:
            self._user_on_record(record)

    def start(self) -> None:
        """Start the dispatcher workers and the HTTP listener."""
        self._dispatcher.start(on_record=self._on_record)
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-frontdoor",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> list[JobRecord]:
        """Stop listening, finish queued work, return all records.

        In-flight and queued jobs complete before this returns (an
        accepted job is never lost); new submissions are refused as
        soon as the socket closes.
        """
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join()
        return self._dispatcher.stop()

    def serve_forever(self) -> list[JobRecord]:
        """Block until ``KeyboardInterrupt``; then drain and return."""
        self.start()
        try:
            while True:
                if self._thread is not None:
                    self._thread.join(timeout=1.0)
        except KeyboardInterrupt:
            pass
        return self.stop()


def _make_handler(door: FrontDoor) -> type:
    """Build the request-handler class closed over one front door.

    ``http.server`` instantiates the handler per request on the
    server's worker threads; everything shared lives on ``door``.
    """

    class Handler(BaseHTTPRequestHandler):
        """Per-request handler; one instance per request, on a stdlib
        server thread.  All shared state lives on ``door`` and is
        guarded by the door's condition / the service lock."""

        def log_message(self, format, *args):  # noqa: A002 - stdlib API
            """Quiet: no per-request lines on stderr."""

        def _reply(
            self, status: int, body: bytes, content_type: str
        ) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _reply_json(self, status: int, payload: dict) -> None:
            self._reply(
                status,
                (json.dumps(payload, sort_keys=True) + "\n").encode(),
                "application/json",
            )

        def do_GET(self) -> None:  # noqa: D102 - dispatch table below
            parsed = urlparse(self.path)
            if parsed.path == "/healthz":
                self._healthz()
            elif parsed.path == "/stats":
                self._stats()
            elif parsed.path == "/stream":
                self._stream(parse_qs(parsed.query))
            else:
                self._reply_json(404, {"error": "not found"})

        def do_POST(self) -> None:  # noqa: D102 - dispatch table below
            path = urlparse(self.path).path
            if path == "/submit":
                self._submit()
            elif path == "/resolve":
                self._resolve()
            else:
                self._reply_json(404, {"error": "not found"})

        def _healthz(self) -> None:
            service = door.service
            self._reply_json(
                200,
                {
                    "status": "ok",
                    "queue_depth": len(service.queue),
                    "completed": len(door.records),
                    "tier": int(service.tier),
                },
            )

        def _stats(self) -> None:
            telemetry = door.service.telemetry
            if telemetry is None:
                self._reply_json(
                    404, {"error": "service has no telemetry attached"}
                )
                return
            self._reply_json(
                200,
                {
                    "line": telemetry.stats_line(),
                    "jobs": telemetry.jobs,
                    "succeeded": telemetry.succeeded,
                    "energy_j_total": telemetry.energy_j_total,
                    "queue_depth": telemetry.queue_depth,
                },
            )

        def _submit(self) -> None:
            length = int(self.headers.get("Content-Length", 0))
            body = self.rfile.read(length).decode("utf-8")
            acks = []
            for line in body.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                    if (
                        isinstance(data, dict)
                        and data.get("base_job_id") is not None
                    ):
                        raise ValueError(
                            "re-solve specs go to POST /resolve"
                        )
                    spec = JobSpec.from_dict(data)
                except (ValueError, TypeError) as exc:
                    acks.append(
                        {"accepted": False, "error": str(exc)}
                    )
                    continue
                pending = door.service.try_submit(spec)
                if pending is None:
                    acks.append(
                        {
                            "job_id": spec.job_id,
                            "accepted": False,
                            "error": "admission rejected (queue or "
                            "tenant bound)",
                        }
                    )
                else:
                    acks.append(
                        {"job_id": spec.job_id, "accepted": True}
                    )
            payload = "".join(
                json.dumps(ack, sort_keys=True) + "\n" for ack in acks
            )
            self._reply(200, payload.encode(), "application/jsonl")

        def _resolve(self) -> None:
            length = int(self.headers.get("Content-Length", 0))
            body = self.rfile.read(length).decode("utf-8")
            acks = []
            for line in body.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    spec = ResolveSpec.from_dict(json.loads(line))
                except (ValueError, TypeError) as exc:
                    acks.append({"accepted": False, "error": str(exc)})
                    continue
                try:
                    pending = door.service.try_submit(spec)
                except UnknownJobError as exc:
                    # Client error, structured: the caller named a base
                    # job the service never admitted.
                    acks.append(
                        {
                            "job_id": spec.job_id,
                            "accepted": False,
                            "code": 404,
                            "error": str(exc),
                        }
                    )
                    continue
                if pending is None:
                    acks.append(
                        {
                            "job_id": spec.job_id,
                            "accepted": False,
                            "error": "admission rejected (queue or "
                            "tenant bound)",
                        }
                    )
                else:
                    acks.append(
                        {"job_id": spec.job_id, "accepted": True}
                    )
            status = (
                404
                if acks and all(ack.get("code") == 404 for ack in acks)
                else 200
            )
            payload = "".join(
                json.dumps(ack, sort_keys=True) + "\n" for ack in acks
            )
            self._reply(status, payload.encode(), "application/jsonl")

        def _stream(self, query: dict) -> None:
            try:
                since = int(query.get("since", ["0"])[0])
                timeout = float(query.get("timeout", ["0"])[0])
            except ValueError:
                self._reply_json(
                    400, {"error": "since/timeout must be numeric"}
                )
                return
            with door._cond:
                if timeout > 0 and len(door._records) <= since:
                    door._cond.wait_for(
                        lambda: len(door._records) > since,
                        timeout=timeout,
                    )
                tail = list(door._records[since:])
            payload = "".join(
                json.dumps(
                    {"seq": since + offset, **record.to_dict()},
                    sort_keys=True,
                )
                + "\n"
                for offset, record in enumerate(tail)
            )
            self._reply(200, payload.encode(), "application/jsonl")

    return Handler
