"""The solver service: scheduler over the pool, queue, and cache.

:class:`SolverService` turns the one-shot solvers into a serving
layer.  Jobs enter through ``submit`` / ``try_submit`` / ``batch``
(admission-controlled by the bounded :class:`~repro.service.queue.
JobQueue`); ``drain`` pops them in priority order and runs each
attempt on a :class:`~repro.service.pool.CrossbarPool` member:

1. the job's problem is derived deterministically from its spec
   (:mod:`repro.service.jobs`) and its structural fingerprint computed
   (:mod:`repro.service.fingerprint`);
2. the pool places it — *warm* on a member already holding that
   fingerprint (diagonal rewrites only), else *cold* (full program);
3. the solve runs via :meth:`~repro.core.crossbar_solver.
   CrossbarPDIPSolver.solve_on` under a per-job ``service.job`` span
   on a private :class:`~repro.obs.tracer.RecordingTracer`, absorbed
   into the service tracer afterwards (the sweep engine's merge
   discipline), so a batch trace attributes every analog op and cell
   write to its job;
4. failures are isolated, never fatal: the failing member is excluded
   and — on a health-probe rejection — drained and recovered; the job
   is *requeued* (exempt from the admission bound: an accepted job is
   never lost) up to ``max_attempts``, then optionally handed to the
   digital fallback.

Determinism: with ``workers=1`` (the default) the scheduler is
serial, placement is by deterministic preference order, and every
attempt's randomness comes from ``attempt_seed(base_seed, job_id,
attempt)`` — two services with equal config and job stream produce
identical records *and* identical traces, byte for byte.

Concurrency (``workers > 1``) keeps the same scheduler code but splits
each step into three phases: ``_dispatch`` (pop + placement, under the
service lock), ``_execute`` (the solve, lock-free), and ``_conclude``
(requeue-or-finalize + telemetry, under the lock again).  A
:class:`~repro.service.dispatch.ConcurrentDispatcher` runs N worker
threads through those phases, optionally shipping the numeric solve to
a worker *process* (``executor="process"``) to sidestep the GIL.
Concurrent completion order is timing-dependent, so byte-identical
replay is not promised — but per-attempt results stay deterministic
(seeds derive from ``(base_seed, job_id, attempt)`` exactly as in
serial mode) and telemetry totals still reconcile exactly: the live
registry, the record stream, and trace replay all accumulate in the
one completion order the lock serializes (see DESIGN.md §15).

Multi-tenancy: every job bills to its spec's ``tenant``; the queue
runs deficit-round-robin weighted fair election across tenants
(:class:`~repro.service.queue.TenantPolicy` sets weights and caps) and
the dispatcher enforces per-tenant in-flight caps by passing capped
tenants as ``blocked`` to :meth:`~repro.service.queue.JobQueue.pop`.

Fault tolerance (:mod:`repro.service.resilience`) is layered on the
same scheduler without changing the no-fault path: per-job deadlines
and retry budgets bound how long an accepted job can occupy the
service, per-member circuit breakers keep placements off arrays that
fail repeatedly without tripping the health probe, a brownout
controller sheds work to cheaper execution tiers when the failure-rate
window degrades, and a :class:`~repro.service.resilience.FaultCampaign`
drives all of it under seeded, declarative chaos scenarios.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.crossbar_solver import CrossbarPDIPSolver
from repro.core.result import (
    FailureReason,
    SolverResult,
    SolveStatus,
)
from repro.core.problem import LinearProgram
from repro.core.settings import CrossbarSolverSettings
from repro.core.warmstart import warm_start_state
from repro.costmodel.energy import estimate_energy_from_counts
from repro.devices import variation_from_percent
from repro.exceptions import UnknownJobError
from repro.obs.clock import Deadline, Stopwatch, monotonic
from repro.obs.merge import absorb_events
from repro.obs.metrics import exact_quantile
from repro.obs.tracer import NOOP, RecordingTracer, Tracer
from repro.presolve import detect_infeasible, infeasible_result
from repro.reliability.policy import RecoveryPolicy
from repro.reliability.probe import ProbePolicy
from repro.reliability.recovery import run_digital_fallback
from repro.service.fingerprint import structural_fingerprint
from repro.service.jobs import (
    JobSpec,
    ResolveSpec,
    attempt_seed,
    build_problem,
    build_resolve_problem,
)
from repro.service.pool import CrossbarPool, PoolMember
from repro.service.queue import JobQueue, PendingJob, TenantPolicy
from repro.service.resilience import (
    BackoffPolicy,
    BreakerPolicy,
    DegradationController,
    DegradationPolicy,
    DegradationTier,
    FaultCampaign,
    FaultEvent,
)
from repro.service.telemetry import ServiceTelemetry


#: Default ``scale_headroom`` for served solves.  The library default
#: (2.0) maps the initial matrix snugly, so growing PDIP diagonals
#: trigger mid-solve remaps — full-array rewrites that both dominate
#: the write budget and leave the array's scale drifted, forcing the
#: next warm placement to renormalize (another full rewrite).  A 4x
#: headroom keeps typical diagonal excursions inside the programmed
#: window: empirically it minimizes total cells written per batch and
#: lets warm placements pay only the O(N) diagonal writes.
SERVING_SCALE_HEADROOM = 4.0


def default_serving_settings() -> CrossbarSolverSettings:
    """Solver settings tuned for array reuse (see module note)."""
    return dataclasses.replace(
        CrossbarSolverSettings(), scale_headroom=SERVING_SCALE_HEADROOM
    )


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Serving-layer configuration.

    Parameters
    ----------
    pool_size:
        Number of crossbar fleet members.
    queue_depth:
        Admission bound of the job queue (requeues are exempt).
    max_attempts:
        Analog attempts per job before giving up / falling back.
    cache_enabled:
        Whether equal structural fingerprints share programmed arrays;
        disabling forces every placement cold (the control arm of the
        cache-savings measurement).
    batch_by_fingerprint:
        Whether the scheduler groups same-fingerprint jobs: within the
        top priority level, the next job popped prefers the fingerprint
        the last one ran, so a warm pool member executes consecutive
        jobs with zero structural rewrites.  Priority ordering is never
        violated; only FIFO order *within* a priority level bends.
        Requires ``cache_enabled`` to have any effect.
    base_seed:
        Root of every derived seed (problems, attempts, recovery).
    settings:
        Solver + hardware model; a job's ``variation`` percent, when
        positive, overrides the variation model per job.  The serving
        default raises ``scale_headroom`` to ``SERVING_SCALE_HEADROOM``
        (see module note below): with the library default of 2 the
        PDIP diagonals outgrow the programmed window in most solves,
        and every mid-solve remap is a full-array rewrite that erases
        the programming cache's advantage.
    probe:
        Health-probe policy gating every analog attempt and recovery;
        ``None`` disables probing (not recommended with fault
        injection: a corrupted array then fails slow, not fast).
    digital_fallback:
        ``"reference"`` / ``"scipy"`` rung after analog attempts are
        exhausted, or ``None`` to report the failure.
    max_drains:
        Drain/recover cycles before a pool member is retired.
    trace_iterations:
        Record per-iteration diagnostics in each job's result.
    breaker:
        Per-pool-member circuit-breaker policy, or ``None`` to disable
        breakers.
    degradation:
        Brownout policy watching the sliding failure-rate window, or
        ``None`` to always run the full pipeline.
    backoff:
        Retry-backoff policy for requeued jobs, or ``None`` for
        immediate requeue with no delay accounting.
    deadline_s:
        Default per-job wall-clock budget (seconds from first
        dispatch); a spec's own ``deadline_s`` overrides it.  ``None``
        means unbounded.
    campaign:
        Chaos campaign fired at dispatch indices, or ``None`` for a
        fault-free run.
    workers:
        Dispatcher worker threads draining the queue.  ``1`` (the
        default) runs the serial scheduler with its byte-identical
        replay guarantee; ``> 1`` runs a
        :class:`~repro.service.dispatch.ConcurrentDispatcher` that
        overlaps attempts across IDLE pool members (deterministic
        per-attempt results, timing-dependent completion order).
    executor:
        Where a concurrent attempt's numeric solve runs: ``"thread"``
        (in the worker thread — simple, but the GIL serializes the
        Python-loop-heavy PDIP iterations) or ``"process"`` (a
        pre-warmed worker-process pool — true parallel solves;
        operator state round-trips by pickling).  Ignored when
        ``workers == 1``.
    tenants:
        Per-tenant :class:`~repro.service.queue.TenantPolicy` entries
        (weights, in-flight caps, queue caps) for the queue's weighted
        fair scheduler.  Tenants not listed get defaults (weight 1, no
        caps); the empty default means single-tenant behaviour.
    presolve:
        Screen every job's problem through the presolve reduction
        pipeline (:mod:`repro.presolve`) at first dispatch: a detected
        infeasibility certificate finalizes the job as INFEASIBLE with
        failure reason ``INFEASIBLE_PRESOLVE`` and *zero* crossbar
        programming, instead of burning a full structural program on a
        doomed instance.  The screen is deterministic and conclusive,
        so records stay replayable.
    warm_start:
        Warm-start re-solve (:class:`~repro.service.jobs.ResolveSpec`)
        attempts from the base job's stored optimum
        (:mod:`repro.core.warmstart`) on their first attempt; retries
        always run the seeded cold start.  Disabling it is the control
        arm of the re-solve benchmark.
    device_latency_s:
        Hardware-in-the-loop emulation: each analog attempt occupies
        its pool member for this many extra wall-clock seconds after
        the simulated solve, modeling the fixed settle/readout time a
        host spends blocked on a *physical* crossbar array.  The wait
        releases the GIL, so it is the honest workload for measuring
        dispatcher overlap (capacity planning for real hardware, where
        solve wall-time is array time, not host CPU).  ``0`` (the
        default) disables it; it never changes records or traces —
        only wall-clock.
    """

    pool_size: int = 2
    queue_depth: int = 64
    max_attempts: int = 3
    cache_enabled: bool = True
    batch_by_fingerprint: bool = True
    base_seed: int = 0
    settings: CrossbarSolverSettings = dataclasses.field(
        default_factory=default_serving_settings
    )
    probe: ProbePolicy | None = dataclasses.field(
        default_factory=ProbePolicy
    )
    digital_fallback: str | None = None
    max_drains: int = 2
    trace_iterations: bool = False
    breaker: BreakerPolicy | None = dataclasses.field(
        default_factory=BreakerPolicy
    )
    degradation: DegradationPolicy | None = dataclasses.field(
        default_factory=DegradationPolicy
    )
    backoff: BackoffPolicy | None = dataclasses.field(
        default_factory=BackoffPolicy
    )
    deadline_s: float | None = None
    campaign: FaultCampaign | None = None
    workers: int = 1
    executor: str = "thread"
    tenants: tuple[TenantPolicy, ...] = ()
    presolve: bool = True
    warm_start: bool = True
    device_latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.pool_size < 1:
            raise ValueError("pool_size must be positive")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive when set")
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if self.executor not in ("thread", "process"):
            raise ValueError(
                f"unknown executor {self.executor!r}; expected 'thread' "
                f"or 'process'"
            )
        if self.device_latency_s < 0:
            raise ValueError("device_latency_s must be non-negative")


@dataclasses.dataclass(frozen=True)
class JobAttempt:
    """One analog (or fallback) attempt of one job.

    ``tier`` is the degradation tier the attempt ran under,
    ``backoff_s`` the (deterministic, seeded) retry delay charged
    after the attempt failed, and ``injected_fault`` the chaos fault
    injected into the member *while this attempt was in flight* —
    post-mortem attribution that the failure was the fault's doing.

    ``energy_j`` is the attempt's estimated energy, priced from the
    attempt tracer's op counts by the Fig. 7 cost model — so a cold
    placement's full structural program is charged to the attempt
    that caused it.  Derived purely from deterministic counters, it
    replays byte-identically and is safe to serialize.

    ``program_cells`` isolates the *placement* cost within
    ``cells_written``: the cells written while acquiring the member
    (full structural program on a cold placement, 0 on a warm one) as
    opposed to the per-iteration diagonal rewrites.  The re-solve
    tier's "warm re-solves write zero programming cells" guarantee is
    asserted against exactly this field.
    """

    index: int
    member: int | None
    warm: bool
    seed: int | None
    status: str
    failure_reason: str
    iterations: int
    cells_written: int
    tier: int = 0
    backoff_s: float = 0.0
    injected_fault: str | None = None
    energy_j: float = 0.0
    program_cells: int = 0

    def to_dict(self) -> dict:
        """Plain-dict form (nested in the job's JSONL record)."""
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class JobRecord:
    """Final outcome of one job, with its full attempt history.

    ``elapsed_seconds`` (first dispatch to completion, wall-clock) and
    ``queue_wait_s`` (admission to first dispatch) are deliberately
    **excluded** from :meth:`to_dict`: the JSONL record stream is part
    of the determinism contract — identical seed and scenario must
    produce byte-identical records — and wall-clock never replays.
    Latency reporting reads the attributes directly.  ``energy_j``
    (the sum of per-attempt cost-model estimates) *is* serialized:
    it derives only from deterministic op counters.
    """

    spec: JobSpec
    result: SolverResult
    attempts: tuple[JobAttempt, ...]
    member: int | None
    warm: bool
    requeues: int
    fallback: bool = False
    elapsed_seconds: float = 0.0
    queue_wait_s: float = 0.0
    energy_j: float = 0.0

    @property
    def success(self) -> bool:
        """Whether the job's final result is conclusive."""
        return self.result.success

    def to_dict(self) -> dict:
        """JSONL-ready summary (the ``repro batch`` output record)."""
        return {
            "job_id": self.spec.job_id,
            "base_job_id": getattr(self.spec, "base_job_id", None),
            "group": self.spec.group,
            "kind": self.spec.kind,
            "constraints": self.spec.constraints,
            "priority": self.spec.priority,
            "status": self.result.status.value,
            "failure_reason": self.result.failure_reason.value,
            "objective": float(self.result.objective),
            "iterations": self.result.iterations,
            "member": self.member,
            "warm": self.warm,
            "requeues": self.requeues,
            "fallback": self.fallback,
            "energy_j": self.energy_j,
            "message": self.result.message,
            "attempts": [attempt.to_dict() for attempt in self.attempts],
        }


@dataclasses.dataclass(frozen=True)
class ServiceSummary:
    """Batch-level throughput and cache accounting."""

    jobs: int
    succeeded: int
    failed: int
    warm_acquires: int
    cold_acquires: int
    requeues: int
    fallbacks: int
    cells_written: int
    elapsed_seconds: float
    energy_j: float = 0.0
    latency_p50_s: float = 0.0
    latency_p99_s: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Warm share of analog placements (0 when none happened)."""
        placements = self.warm_acquires + self.cold_acquires
        return self.warm_acquires / placements if placements else 0.0

    @property
    def jobs_per_second(self) -> float:
        """Batch throughput (0 when no wall-clock elapsed)."""
        return (
            self.jobs / self.elapsed_seconds
            if self.elapsed_seconds > 0
            else 0.0
        )

    def render(self) -> str:
        """Human-readable block for the CLI."""
        return "\n".join(
            [
                f"jobs:          {self.jobs} "
                f"({self.succeeded} ok, {self.failed} failed)",
                f"placements:    {self.warm_acquires} warm, "
                f"{self.cold_acquires} cold "
                f"(cache hit rate {self.cache_hit_rate:.1%})",
                f"reschedules:   {self.requeues} requeues, "
                f"{self.fallbacks} digital fallbacks",
                f"cells written: {self.cells_written}",
                f"latency:       p50 {self.latency_p50_s * 1e3:.1f} ms, "
                f"p99 {self.latency_p99_s * 1e3:.1f} ms",
                f"energy:        {self.energy_j:.3g} J total "
                f"({self.energy_j / self.jobs if self.jobs else 0.0:.3g} "
                f"J/job)",
                f"throughput:    {self.jobs_per_second:.2f} jobs/s "
                f"({self.elapsed_seconds:.2f} s)",
            ]
        )


@dataclasses.dataclass
class _WorkItem:
    """One dispatched attempt in flight between the scheduler phases.

    ``_dispatch`` fills the placement fields under the service lock,
    ``_execute`` (or the dispatcher's process-executor path) fills the
    outcome fields lock-free, and ``_conclude`` folds everything back
    into the scheduler under the lock.  Owned by exactly one worker
    from dispatch to conclusion — never shared across threads.
    """

    pending: PendingJob
    index: int
    problem: object
    settings: CrossbarSolverSettings
    tier: DegradationTier
    fingerprint: str
    mode: str = "analog"  # "analog" | "brownout"
    seed: int | None = None
    rng: np.random.Generator | None = None
    solver: CrossbarPDIPSolver | None = None
    programmer: object | None = None
    member: PoolMember | None = None
    warm: bool = False
    remote: bool = False
    job_tracer: RecordingTracer | None = None
    span: object | None = None
    #: Warm-start iterates for a re-solve's first attempt, or None.
    initial_state: tuple | None = None
    #: Cells written while *acquiring* the member (0 on warm placement).
    program_cells: int = 0
    # Outcome, filled by the execute phase:
    result: SolverResult | None = None
    operator: object | None = None  # child-returned state (remote)
    cells: int = 0
    energy_j: float = 0.0
    events: list | None = None


def attempt_energy(
    result: SolverResult | None,
    counters: dict,
    settings: CrossbarSolverSettings,
) -> float:
    """Price one attempt's energy from its private tracer counters.

    The Fig. 7 cost-model estimate, a pure function of deterministic
    op counts — it replays byte-identically and is safe to compute in
    a worker process.  Returns 0 when the attempt never reached the
    analog array.
    """
    if result is None or result.crossbar is None:
        return 0.0
    return estimate_energy_from_counts(
        multiplies=counters.get("analog.multiplies", 0.0),
        solves=counters.get("analog.solves", 0.0),
        cells_written=counters.get("crossbar.cells_written", 0.0),
        write_energy_j=counters.get("crossbar.write_energy_j", 0.0),
        array_size=result.crossbar.array_size,
        iterations=result.iterations,
        device=settings.device,
    ).total_j


def _failed_result(
    problem, message: str, reason: FailureReason
) -> SolverResult:
    """A synthetic failure record when no solver ran (or one crashed)."""
    m, n = problem.A.shape
    return SolverResult(
        status=SolveStatus.NUMERICAL_FAILURE,
        x=np.zeros(n),
        y=np.zeros(m),
        w=np.zeros(m),
        z=np.zeros(n),
        objective=0.0,
        iterations=0,
        message=message,
        failure_reason=reason,
    )


class SolverService:
    """Scheduler over a crossbar fleet: serial or concurrent.

    With ``config.workers == 1`` this is the serial, deterministic
    scheduler (byte-identical replay); with more workers, ``drain`` /
    ``batch`` hand the same three scheduler phases to a
    :class:`~repro.service.dispatch.ConcurrentDispatcher`.

    Thread safety: ``submit`` / ``try_submit`` are safe from any
    thread (front-door handlers call them directly); everything else
    is driven either by the single serial caller or by dispatcher
    workers that hold :attr:`lock` around the scheduler phases.  The
    pool shares this same lock, so pool transitions, queue decisions,
    and tracer emission all serialize together.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        tracer: Tracer | None = None,
        telemetry: ServiceTelemetry | None = None,
        clock: Callable[[], float] = monotonic,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.tracer = tracer if tracer is not None else NOOP
        self.telemetry = telemetry
        self.clock = clock
        #: The service-wide scheduler lock: admission, dispatch,
        #: conclusion, pool transitions, and all service-tracer
        #: emission happen under it.  Solves never hold it.
        self.lock = threading.RLock()
        self.pool = CrossbarPool(
            self.config.pool_size,
            probe=self.config.probe,
            max_drains=self.config.max_drains,
            rng=np.random.default_rng(
                attempt_seed(self.config.base_seed, "__pool__", 0)
            ),
            tracer=self.tracer,
            breaker=self.config.breaker,
            on_breaker_transition=(
                telemetry.on_breaker if telemetry is not None else None
            ),
            lock=self.lock,
        )
        self.queue = JobQueue(
            self.config.queue_depth, tenants=self.config.tenants
        )
        self.degradation = (
            DegradationController(
                self.config.degradation,
                tracer=self.tracer,
                on_transition=(
                    telemetry.on_tier if telemetry is not None else None
                ),
            )
            if self.config.degradation is not None
            else None
        )
        #: Scheduler steps taken so far; chaos-campaign events fire on
        #: this index *before* the step's job is popped.
        self._dispatched = 0
        # Re-solve tier state (all guarded by the service lock).  The
        # catalog and problem/optimum stores are grow-only: a rolling
        # horizon may chain a resolve off any earlier job, so ancestry
        # must stay resolvable for the life of the service.
        self._catalog: dict[str, JobSpec | ResolveSpec] = {}
        self._problems: dict[str, LinearProgram] = {}
        self._optima: dict[str, SolverResult] = {}
        # Last observed cold programming cost per fingerprint — what a
        # warm re-solve *saved* (the cells-saved telemetry counter).
        self._program_cost: dict[str, int] = {}
        self._resolve_counter = 0
        # Fingerprint of the most recently attempted job: the batching
        # scheduler prefers it on the next pop, so same-structure jobs
        # run back to back on a warm member.
        self._last_fingerprint: str | None = None

    # -- admission -----------------------------------------------------------

    def submit(self, spec: JobSpec | ResolveSpec) -> PendingJob:
        """Admit one job; raises
        :class:`~repro.exceptions.QueueFullError` at a depth bound.

        Accepts :class:`~repro.service.jobs.ResolveSpec` too — a
        resolve whose ``base_job_id`` was never admitted raises
        :class:`~repro.exceptions.UnknownJobError`.  Thread-safe
        (atomic under the service lock); the front door calls it from
        handler threads.
        """
        with self.lock:
            spec = self._normalize(spec)
            pending = self.queue.submit(spec)
            self._admit(pending)
            return pending

    def try_submit(self, spec: JobSpec | ResolveSpec) -> PendingJob | None:
        """Non-raising :meth:`submit`; ``None`` when a bound rejects.

        An unknown ``base_job_id`` on a resolve still raises
        :class:`~repro.exceptions.UnknownJobError` — that is a client
        error, not admission backpressure.  Thread-safe (atomic under
        the service lock).
        """
        with self.lock:
            spec = self._normalize(spec)
            pending = self.queue.try_submit(spec)
            if pending is not None:
                self._admit(pending)
            return pending

    def resolve(
        self,
        base_job_id: str,
        new_b=None,
        new_c=None,
        *,
        job_id: str | None = None,
        perturb: float = 0.0,
        priority: int | None = None,
        tenant: str | None = None,
        deadline_s: float | None = None,
        max_attempts: int | None = None,
    ) -> PendingJob:
        """Admit a parameter-only re-solve of an already-admitted job.

        Builds a :class:`~repro.service.jobs.ResolveSpec` against
        ``base_job_id`` (which may itself be an earlier resolve — the
        rolling-horizon chain), inheriting the base's structure,
        priority, and tenant unless overridden, and admits it through
        :meth:`submit`.  ``new_b`` / ``new_c`` replace the parameter
        vectors; ``perturb`` applies the seeded drift instead.  The
        scheduler then routes the job to the pool member already
        holding the structure's fingerprint (zero programming) and
        warm-starts the PDIP iterates from the base's stored optimum.

        Raises :class:`~repro.exceptions.UnknownJobError` for an
        unknown base and :class:`~repro.exceptions.QueueFullError` at
        the admission bound.
        """
        with self.lock:
            base = self._catalog.get(base_job_id)
            if base is None:
                raise UnknownJobError(
                    f"resolve names unknown base job {base_job_id!r}"
                )
            self._resolve_counter += 1
            spec = ResolveSpec(
                job_id=(
                    job_id
                    if job_id is not None
                    else f"{base_job_id}~r{self._resolve_counter:04d}"
                ),
                base_job_id=base_job_id,
                constraints=base.constraints,
                group=base.group,
                kind=base.kind,
                priority=base.priority if priority is None else priority,
                tenant=base.tenant if tenant is None else tenant,
                variation=base.variation,
                deadline_s=deadline_s,
                max_attempts=max_attempts,
                b=(
                    tuple(float(v) for v in np.asarray(new_b).ravel())
                    if new_b is not None
                    else None
                ),
                c=(
                    tuple(float(v) for v in np.asarray(new_c).ravel())
                    if new_c is not None
                    else None
                ),
                perturb=perturb,
            )
            return self.submit(spec)

    def _normalize(self, spec: JobSpec | ResolveSpec):
        """Inherit a resolve's structural fields from its base spec.

        A :class:`ResolveSpec` may arrive from a JSONL line carrying
        default (or stale) structure fields; the admitted spec always
        takes ``constraints`` / ``group`` / ``kind`` / ``variation``
        from the base job so it can never name a structure other than
        the one whose array it reuses.  Raises
        :class:`~repro.exceptions.UnknownJobError` when the base was
        never admitted.  Caller holds the service lock.
        """
        if not isinstance(spec, ResolveSpec):
            return spec
        base = self._catalog.get(spec.base_job_id)
        if base is None:
            raise UnknownJobError(
                f"resolve {spec.job_id!r} names unknown base job "
                f"{spec.base_job_id!r}"
            )
        return dataclasses.replace(
            spec,
            constraints=base.constraints,
            group=base.group,
            kind=base.kind,
            variation=base.variation,
        )

    def _admit(self, pending: PendingJob) -> None:
        """Post-admission bookkeeping shared by both submit paths."""
        pending.submitted_s = self.clock()
        spec = pending.spec
        self._catalog[spec.job_id] = spec
        if isinstance(spec, ResolveSpec):
            pending.problem = build_resolve_problem(
                spec,
                self._problem_for(spec.base_job_id),
                self.config.base_seed,
            )
            self.tracer.count("service.resolve.submitted")
        self._stamp_fingerprint(pending)
        if pending.problem is not None:
            self._problems[spec.job_id] = pending.problem
        self.tracer.count("service.jobs_submitted")
        if self.telemetry is not None:
            self.telemetry.on_submit(pending.spec)

    def _problem_for(self, job_id: str) -> LinearProgram:
        """The materialized problem of an admitted job (memoized).

        Resolve jobs store their problem at admission, so only plain
        :class:`JobSpec` bases ever need a build here.  Caller holds
        the service lock.
        """
        problem = self._problems.get(job_id)
        if problem is None:
            problem = build_problem(
                self._catalog[job_id], self.config.base_seed
            )
            self._problems[job_id] = problem
        return problem

    def _stamp_fingerprint(self, pending: PendingJob) -> None:
        """Memoize the job's structural fingerprint at admission.

        Computed once per job (the per-attempt path reuses it), and
        only when both the programming cache and batching are on —
        without them the fingerprint never influences scheduling.
        Resolve jobs arrive with their problem already materialized;
        plain jobs build it here.
        """
        config = self.config
        if not (config.cache_enabled and config.batch_by_fingerprint):
            return
        spec = pending.spec
        problem = (
            pending.problem
            if pending.problem is not None
            else build_problem(spec, config.base_seed)
        )
        pending.problem = problem
        pending.fingerprint = structural_fingerprint(
            problem, self._settings_for(spec)
        )

    # -- execution -----------------------------------------------------------

    def drain(
        self,
        *,
        on_record: Callable[[JobRecord], None] | None = None,
    ) -> list[JobRecord]:
        """Run until the queue is empty; return the completed records.

        ``on_record`` is invoked with each record as it completes —
        the hook behind live ``--stats-every`` printing (always called
        under the service lock, so the callback itself need not be
        thread-safe).  Call from one thread at a time; with
        ``workers > 1`` the concurrent dispatcher drains the queue.
        """
        if self.config.workers == 1:
            records: list[JobRecord] = []
            while self.queue:
                record = self._step()
                if record is not None:
                    records.append(record)
                    if on_record is not None:
                        on_record(record)
            return records
        from repro.service.dispatch import ConcurrentDispatcher

        return ConcurrentDispatcher(self).run(on_record=on_record)

    def batch(
        self,
        specs: Iterable[JobSpec],
        *,
        on_record: Callable[[JobRecord], None] | None = None,
    ) -> tuple[list[JobRecord], ServiceSummary]:
        """Submit a stream of jobs with backpressure and run it dry.

        When the queue bound is hit, the service makes room before
        admitting the next spec: serially by completing queued work
        inline, concurrently by blocking the producer until a
        dispatcher worker frees a slot.  ``on_record`` fires per
        completed record (under the service lock), including the
        backpressure ones.  Call from one thread at a time.
        """
        if self.config.workers == 1:
            records: list[JobRecord] = []
            with Stopwatch() as clock:
                for spec in specs:
                    while self.try_submit(spec) is None:
                        record = self._step()
                        if record is not None:
                            records.append(record)
                            if on_record is not None:
                                on_record(record)
                records.extend(self.drain(on_record=on_record))
            return records, summarize(records, clock.elapsed_seconds)
        from repro.service.dispatch import ConcurrentDispatcher

        with Stopwatch() as clock:
            records = ConcurrentDispatcher(self).run(
                specs, on_record=on_record
            )
        return records, summarize(records, clock.elapsed_seconds)

    # -- internals -----------------------------------------------------------

    def _settings_for(self, spec: JobSpec) -> CrossbarSolverSettings:
        if spec.variation > 0:
            return dataclasses.replace(
                self.config.settings,
                variation=variation_from_percent(spec.variation),
            )
        return self.config.settings

    @property
    def tier(self) -> DegradationTier:
        """Current brownout tier (NORMAL when degradation is off)."""
        return (
            self.degradation.tier
            if self.degradation is not None
            else DegradationTier.NORMAL
        )

    def _fire_campaign_events(self) -> None:
        campaign = self.config.campaign
        if campaign is None:
            return
        for position, event in enumerate(
            campaign.events_at(self._dispatched)
        ):
            self._fire_event(campaign, event, position)

    def _fire_event(
        self, campaign: FaultCampaign, event: FaultEvent, position: int
    ) -> None:
        """Apply one chaos event to the live service.

        Member ids wrap modulo the pool size, so a scenario written
        for one fleet replays on any.
        """
        self.tracer.count("service.chaos.events")
        campaign.fired += 1
        if self.telemetry is not None:
            self.telemetry.on_chaos(event)
        if event.kind == "queue_pulse":
            # Saturation pulse: filler jobs through *admission control*
            # (try_submit), so an already-full queue sheds them — the
            # pulse pressures the bound, it never breaks it.
            for offset in range(event.jobs):
                spec = JobSpec(
                    job_id=(
                        f"pulse-{campaign.name}-{event.at_job:04d}-"
                        f"{position}-{offset:02d}"
                    ),
                    constraints=event.constraints,
                    group=1_000_000 + event.at_job,
                )
                if self.try_submit(spec) is None:
                    self.tracer.count("service.chaos.pulse_rejected")
            return
        assert event.member is not None  # validated on construction
        member_id = event.member % len(self.pool.members)
        if event.kind == "stuck_cells":
            self.pool.inject_fault(
                member_id, event.row_fraction, sticky=event.sticky
            )
        elif event.kind == "member_death":
            # A full-array sticky fault: every reprogram re-breaks it,
            # so the member drains, fails recovery, and retires.
            self.pool.inject_fault(member_id, 1.0, sticky=True)
            self.tracer.count("service.chaos.member_deaths")
        elif event.kind == "drift":
            self.pool.inject_drift(member_id, event.magnitude)

    def _step(self) -> JobRecord | None:
        """Run one attempt of the next queued job (serial phase chain).

        Returns the final record if the job finished (either way), or
        ``None`` if it was requeued for another attempt.  Single-
        threaded callers only; the concurrent dispatcher drives the
        three phases itself.
        """
        dispatched = self._dispatch()
        if dispatched is None:
            raise IndexError("step on an empty job queue")
        kind, payload = dispatched
        if kind == "record":
            return payload
        self._execute(payload)
        return self._conclude(payload)

    def _dispatch(
        self,
        *,
        blocked: frozenset | set = frozenset(),
        remote: bool = False,
    ) -> tuple[str, JobRecord | _WorkItem] | None:
        """Pop and place the next attempt (the under-lock phase).

        Returns ``("record", JobRecord)`` when the job completed with
        no compute (its deadline expired in the queue), ``("work",
        item)`` when an execute phase must run, or ``None`` when
        nothing is dispatchable (queue empty, or every backlogged
        tenant in ``blocked``).  ``remote`` reserves the pool member
        without programming it (the process-executor path).  The
        caller must hold the service lock (the serial path trivially
        does: it is single-threaded).
        """
        config = self.config
        if not self.queue.eligible(blocked):
            return None
        self._fire_campaign_events()
        self._dispatched += 1
        prefer = (
            self._last_fingerprint if config.batch_by_fingerprint else None
        )
        pending = self.queue.pop(prefer=prefer, blocked=blocked)
        if pending is None:
            return None
        spec = pending.spec
        index = len(pending.attempts)
        problem = (
            pending.problem
            if pending.problem is not None
            else build_problem(spec, config.base_seed)
        )
        base_settings = self._settings_for(spec)
        tier = self.tier

        # Arm the wall-clock budget at first dispatch: queue wait
        # before admission-to-dispatch is the caller's to bound.
        if pending.first_dispatch_s is None:
            pending.first_dispatch_s = self.clock()
            budget = (
                spec.deadline_s
                if spec.deadline_s is not None
                else config.deadline_s
            )
            if budget is not None:
                pending.deadline = Deadline(budget, clock=self.clock)

        if pending.deadline is not None and pending.deadline.expired:
            # The budget ran out while the job waited for this
            # dispatch: fail terminally, no fallback — the caller has
            # already given up on the answer.
            result = _failed_result(
                problem,
                f"deadline of {pending.deadline.budget_s:.3g}s expired "
                f"before attempt {index}",
                FailureReason.DEADLINE_EXCEEDED,
            )
            pending.attempts.append(
                JobAttempt(
                    index=index,
                    member=None,
                    warm=False,
                    seed=None,
                    status=result.status.value,
                    failure_reason=result.failure_reason.value,
                    iterations=0,
                    cells_written=0,
                    tier=int(tier),
                )
            )
            return (
                "record",
                self._finalize(pending, result, member=None, warm=False),
            )

        if config.presolve and index == 0:
            # Admission screen: a trivially-provable infeasible
            # instance is finalized here, before any placement — the
            # whole point is that the verdict costs zero programming
            # cells.  Deterministic (pure function of the problem), so
            # replay is unaffected.
            certificate = detect_infeasible(problem)
            if certificate is not None:
                result = infeasible_result(problem, certificate)
                self.tracer.count("service.presolve.infeasible")
                pending.attempts.append(
                    JobAttempt(
                        index=index,
                        member=None,
                        warm=False,
                        seed=None,
                        status=result.status.value,
                        failure_reason=result.failure_reason.value,
                        iterations=0,
                        cells_written=0,
                        tier=int(tier),
                    )
                )
                return (
                    "record",
                    self._finalize(
                        pending, result, member=None, warm=False
                    ),
                )

        if (
            tier is DegradationTier.DIGITAL_ONLY
            and config.digital_fallback is not None
        ):
            # Full brownout: analog is browned out, route straight to
            # the digital solver.  The outcome still feeds the window —
            # that is what lets the tier recover once the storm passes.
            # The digital solve itself is compute, so it runs in the
            # lock-free execute phase.
            return (
                "work",
                _WorkItem(
                    pending=pending,
                    index=index,
                    problem=problem,
                    settings=base_settings,
                    tier=tier,
                    fingerprint="",
                    mode="brownout",
                ),
            )

        settings = base_settings
        if (
            tier >= DegradationTier.SKIP_VERIFY
            and settings.write_verify is not None
        ):
            # Tier 1+ sheds closed-loop write-verify.  The admission-
            # stamped fingerprint (whose identity includes the verify
            # policy) is deliberately kept: nominal targets do not
            # change, so warm reuse across tiers stays valid and the
            # cache is not cold-started by a brownout.
            settings = dataclasses.replace(settings, write_verify=None)

        seed = attempt_seed(config.base_seed, spec.job_id, index)
        rng = np.random.default_rng(seed)
        recovery = RecoveryPolicy(
            reprograms=0,
            remaps=0,
            digital_fallback=None,
            probe=config.probe,
        )
        if config.cache_enabled:
            fingerprint = (
                pending.fingerprint
                if pending.fingerprint is not None
                else structural_fingerprint(problem, base_settings)
            )
        else:
            # Unique per attempt: no two placements can ever match, so
            # every job pays the full structural program (control arm).
            fingerprint = f"nocache:{spec.job_id}:{index}"

        def programmer(prng, ptracer):
            """Build this job's operator on a cold member."""
            return CrossbarPDIPSolver(
                problem,
                settings,
                rng=prng,
                recovery=recovery,
                tracer=ptracer,
            ).build_operator(prng)

        item = _WorkItem(
            pending=pending,
            index=index,
            problem=problem,
            settings=settings,
            tier=tier,
            fingerprint=fingerprint,
            seed=seed,
            rng=rng,
            programmer=programmer,
            remote=remote,
        )
        if (
            config.warm_start
            and index == 0
            and isinstance(spec, ResolveSpec)
        ):
            # Parameter-streaming tier: seed the interior-point
            # iterates from the base job's stored optimum.  Retries
            # (index > 0) always fall back to the cold flat start —
            # if the warm iterate stalled once, it is not retried.
            base_result = self._optima.get(spec.base_job_id)
            if base_result is not None and base_result.is_optimal:
                try:
                    item.initial_state = warm_start_state(
                        base_result, problem, settings
                    )
                except ValueError:
                    item.initial_state = None
        if remote:
            # Process-executor path: select + mark BUSY only; the
            # worker child programs / solves, the parent installs the
            # returned state at conclusion.
            item.member, item.warm = self.pool.reserve(
                fingerprint, exclude=pending.excluded_members
            )
            return ("work", item)

        job_tracer = RecordingTracer()
        item.job_tracer = job_tracer
        item.solver = CrossbarPDIPSolver(
            problem,
            settings,
            rng=rng,
            recovery=recovery,
            tracer=job_tracer,
            deadline=pending.deadline,
        )
        span = job_tracer.span(
            "service.job",
            job_id=spec.job_id,
            group=spec.group,
            kind=spec.kind,
            attempt=index,
            fingerprint=fingerprint,
        )
        span.__enter__()
        item.span = span
        item.member, item.warm = self.pool.acquire(
            fingerprint,
            programmer,
            rng=rng,
            tracer=job_tracer,
            exclude=pending.excluded_members,
        )
        # Cells written so far are all placement (structural program);
        # per-iteration diagonal rewrites land later, in the execute
        # phase.  A warm placement must leave this at exactly zero.
        item.program_cells = int(
            job_tracer.counters.get("crossbar.cells_written", 0.0)
        )
        span.set(
            member=(
                item.member.member_id if item.member is not None else None
            ),
            warm=item.warm,
        )
        return ("work", item)

    def _execute(self, item: _WorkItem) -> None:
        """Run a dispatched attempt's compute (the lock-free phase).

        Covers thread-mode analog attempts and brownout fallbacks;
        the concurrent dispatcher executes ``remote`` items in a
        worker process instead.  Touches no shared scheduler state
        except releasing the BUSY member (atomic in the pool), so any
        number of executes may overlap.
        """
        if item.mode == "brownout":
            item.result = run_digital_fallback(
                self.config.digital_fallback, item.problem
            )
            return
        member = item.member
        span = item.span
        result: SolverResult | None = None
        if member is not None:
            try:
                result = item.solver.solve_on(
                    member.operator,
                    trace=self.config.trace_iterations,
                    initial_state=item.initial_state,
                )
            except Exception as exc:  # noqa: BLE001 - isolation
                result = _failed_result(
                    item.problem,
                    f"attempt crashed: {type(exc).__name__}: {exc}",
                    FailureReason.SINGULAR_SYSTEM,
                )
            finally:
                if self.config.device_latency_s > 0:
                    # Emulated array occupancy: the member stays BUSY
                    # for the modeled hardware settle/readout window.
                    time.sleep(self.config.device_latency_s)
                self.pool.release(member)
            span.set(status=result.status.value)
        span.__exit__(None, None, None)
        job_tracer = item.job_tracer
        item.result = result
        item.cells = int(
            job_tracer.counters.get("crossbar.cells_written", 0.0)
        )
        item.energy_j = attempt_energy(
            result, job_tracer.counters, item.settings
        )
        item.events = job_tracer.event_dicts()

    def _conclude(self, item: _WorkItem) -> JobRecord | None:
        """Fold an executed attempt back into the scheduler.

        Requeue-or-finalize, breaker / brownout feedback, trace
        absorption, and telemetry — everything that mutates shared
        state, in one fixed order per attempt, so a concurrent run
        accumulates its totals in exactly the completion order the
        lock serializes (the reconciliation guarantee).  Returns the
        final record, or ``None`` when the job was requeued.  The
        caller must hold the service lock.
        """
        config = self.config
        pending = item.pending
        spec = pending.spec
        index = item.index
        tier = item.tier

        if item.mode == "brownout":
            fallback = item.result
            assert fallback is not None
            self.tracer.count("service.fallbacks")
            self.tracer.count("service.degradation.browned_out")
            if self.degradation is not None:
                self.degradation.record(fallback.success)
            pending.attempts.append(
                JobAttempt(
                    index=index,
                    member=None,
                    warm=False,
                    seed=None,
                    status=fallback.status.value,
                    failure_reason=fallback.failure_reason.value,
                    iterations=fallback.iterations,
                    cells_written=0,
                    tier=int(tier),
                )
            )
            return self._finalize(
                pending, fallback, member=None, warm=False, fallback=True
            )

        member = item.member
        warm = item.warm
        result = item.result
        if item.remote and member is not None:
            self.pool.install(
                member,
                item.operator,
                fingerprint=item.fingerprint,
                programmer=item.programmer,
                rng=item.rng,
            )
            self.pool.release(member)
        if item.events and isinstance(self.tracer, RecordingTracer):
            absorb_events(self.tracer, item.events)
        self._last_fingerprint = pending.fingerprint
        success = result is not None and result.success
        injected = (
            member.consume_inflight_fault() if member is not None else None
        )
        if member is not None:
            self.pool.note_result(member, success)
            if self.degradation is not None:
                self.degradation.record(success)

        # Retry budget: the spec's override, the service default, or —
        # under CAP_RECOVERY brownout — a single attempt.
        cap = (
            spec.max_attempts
            if spec.max_attempts is not None
            else config.max_attempts
        )
        if tier >= DegradationTier.CAP_RECOVERY:
            cap = 1
        timed_out = (
            pending.deadline is not None and pending.deadline.expired
        ) or (
            result is not None
            and result.failure_reason is FailureReason.DEADLINE_EXCEEDED
        )
        will_requeue = (
            not success
            and result is not None
            and not timed_out
            and index + 1 < cap
        )
        backoff_s = 0.0
        if will_requeue and config.backoff is not None:
            backoff_s = config.backoff.delay_s(
                config.base_seed, spec.job_id, index + 1
            )
            pending.backoff_total_s += backoff_s
            self.tracer.count("service.backoff_seconds", backoff_s)

        if member is not None and not warm and item.program_cells > 0:
            # Remember what a cold structural program of this
            # fingerprint costs, so warm placements can report exactly
            # how many cell writes they avoided.
            self._program_cost[item.fingerprint] = item.program_cells
        if isinstance(spec, ResolveSpec) and member is not None:
            self.tracer.count("service.resolve.attempts")
            self.tracer.count(
                "service.resolve.program_cells", float(item.program_cells)
            )
            if warm:
                self.tracer.count("service.resolve.warm_placements")
                saved = self._program_cost.get(item.fingerprint, 0)
                if saved > 0:
                    self.tracer.count(
                        "service.resolve.cells_saved", float(saved)
                    )
            else:
                self.tracer.count("service.resolve.cold_placements")

        pending.attempts.append(
            JobAttempt(
                index=index,
                member=member.member_id if member is not None else None,
                warm=warm,
                seed=item.seed,
                status=(
                    result.status.value if result is not None else "rejected"
                ),
                failure_reason=(
                    result.failure_reason.value
                    if result is not None
                    else FailureReason.NO_CAPACITY.value
                ),
                iterations=result.iterations if result is not None else 0,
                cells_written=item.cells,
                tier=int(tier),
                backoff_s=backoff_s,
                injected_fault=injected,
                energy_j=item.energy_j,
                program_cells=item.program_cells,
            )
        )

        if success:
            assert result is not None
            return self._finalize(
                pending,
                result,
                member=member.member_id if member is not None else None,
                warm=warm,
            )

        # Failure isolation: never run this job on the same member
        # again, and pull a probe-rejected member out for recovery.
        if member is not None:
            pending.excluded_members.add(member.member_id)
            if (
                result is not None
                and result.failure_reason is FailureReason.PROBE_UNHEALTHY
            ):
                self.pool.drain(member)
                self.pool.recover(member)

        if will_requeue:
            self.tracer.count("service.requeues")
            if (
                config.backoff is not None
                and config.backoff.sleep
                and backoff_s > 0
            ):
                time.sleep(backoff_s)
            self.queue.requeue(pending)
            return None

        # Analog attempts exhausted (or no member can take the job).
        # A timed-out job skips the fallback: its caller is gone.
        if config.digital_fallback is not None and not timed_out:
            fallback = run_digital_fallback(
                config.digital_fallback, item.problem
            )
            self.tracer.count("service.fallbacks")
            pending.attempts.append(
                JobAttempt(
                    index=len(pending.attempts),
                    member=None,
                    warm=False,
                    seed=None,
                    status=fallback.status.value,
                    failure_reason=fallback.failure_reason.value,
                    iterations=fallback.iterations,
                    cells_written=0,
                    tier=int(tier),
                )
            )
            return self._finalize(
                pending, fallback, member=None, warm=False, fallback=True
            )
        if result is None:
            result = _failed_result(
                item.problem,
                "no schedulable pool member (all excluded or retired)",
                FailureReason.NO_CAPACITY,
            )
        return self._finalize(
            pending,
            result,
            member=member.member_id if member is not None else None,
            warm=warm,
        )

    def _finalize(
        self,
        pending: PendingJob,
        result: SolverResult,
        *,
        member: int | None,
        warm: bool,
        fallback: bool = False,
    ) -> JobRecord:
        analog_attempts = sum(
            1 for attempt in pending.attempts if attempt.member is not None
        )
        elapsed = (
            self.clock() - pending.first_dispatch_s
            if pending.first_dispatch_s is not None
            else 0.0
        )
        queue_wait = (
            pending.first_dispatch_s - pending.submitted_s
            if pending.first_dispatch_s is not None
            and pending.submitted_s is not None
            else 0.0
        )
        energy_j = sum(attempt.energy_j for attempt in pending.attempts)
        record = JobRecord(
            spec=pending.spec,
            result=result,
            attempts=tuple(pending.attempts),
            member=member,
            warm=warm,
            requeues=max(0, analog_attempts - 1),
            fallback=fallback,
            elapsed_seconds=elapsed,
            queue_wait_s=max(queue_wait, 0.0),
            energy_j=energy_j,
        )
        if result.is_optimal:
            # The stored optimum is the warm-start source for any
            # later re-solve that names this job as its base.
            self._optima[pending.spec.job_id] = result
        if isinstance(pending.spec, ResolveSpec):
            self.tracer.count(
                "service.resolve.completed"
                if record.success
                else "service.resolve.failed"
            )
        if record.success:
            self.tracer.count("service.jobs_completed")
        else:
            self.tracer.count("service.jobs_failed")
            if result.failure_reason is FailureReason.DEADLINE_EXCEEDED:
                self.tracer.count("service.deadline_exceeded")
        # Live-telemetry emission: the deterministic record is fully
        # built first, so nothing below can alter what the service did
        # or will serialize.  ``service.energy_j`` replays exactly via
        # count events; latency / queue wait stream as ``hist`` events
        # for the offline quantile audit.
        if energy_j > 0:
            self.tracer.count("service.energy_j", energy_j)
        if elapsed > 0:
            self.tracer.observe("service.latency_s", elapsed)
        if record.queue_wait_s > 0:
            self.tracer.observe("service.queue_wait_s", record.queue_wait_s)
        self.tracer.gauge("service.queue.depth", float(len(self.queue)))
        if self.telemetry is not None:
            self.telemetry.on_job(
                record,
                queue_depth=len(self.queue),
                tier=int(self.tier),
            )
        return record


def summarize(
    records: Sequence[JobRecord], elapsed_seconds: float
) -> ServiceSummary:
    """Aggregate a batch's records into a :class:`ServiceSummary`."""
    warm = cold = requeues = fallbacks = 0
    cells = 0
    energy = 0.0
    for record in records:
        requeues += record.requeues
        fallbacks += 1 if record.fallback else 0
        energy += record.energy_j
        for attempt in record.attempts:
            cells += attempt.cells_written
            if attempt.member is not None:
                if attempt.warm:
                    warm += 1
                else:
                    cold += 1
    succeeded = sum(1 for record in records if record.success)
    latencies = [
        record.elapsed_seconds
        for record in records
        if record.elapsed_seconds > 0
    ]
    return ServiceSummary(
        jobs=len(records),
        succeeded=succeeded,
        failed=len(records) - succeeded,
        warm_acquires=warm,
        cold_acquires=cold,
        requeues=requeues,
        fallbacks=fallbacks,
        cells_written=cells,
        elapsed_seconds=elapsed_seconds,
        energy_j=energy,
        latency_p50_s=exact_quantile(latencies, 0.5),
        latency_p99_s=exact_quantile(latencies, 0.99),
    )
