"""Concurrent dispatch: worker threads draining the service in parallel.

:class:`ConcurrentDispatcher` runs ``config.workers`` threads through
the service's three scheduler phases.  Dispatch and conclusion happen
under the service lock (one Condition wraps it, so workers sleep when
nothing is dispatchable and wake on submits / requeues / completions);
the solve in between runs lock-free, overlapped across IDLE pool
members.

Two executor modes, chosen by ``config.executor``:

- ``"thread"`` — the solve runs in the worker thread.  Simple and
  state-sharing-free (each BUSY member is owned by one worker), but
  the PDIP iteration loop is Python-heavy, so the GIL caps the speedup
  well below the worker count.  Useful when jobs spend their time in
  BLAS or when latency overlap (not throughput) is the goal.
- ``"process"`` — the numeric attempt ships to a pre-warmed
  :class:`~concurrent.futures.ProcessPoolExecutor` via
  :func:`_remote_attempt`: the parent *reserves* a pool member
  (select + mark BUSY, no programming), the child programs-or-adopts
  the operator, solves, and returns (result, trace events, operator
  state, write counts); the parent *installs* the returned state and
  concludes.  True parallel solves — this is the mode the sustained-
  load benchmark scales with.

Fairness: the dispatcher tracks per-tenant in-flight counts and passes
tenants at their :attr:`~repro.service.queue.TenantPolicy.max_in_flight`
cap as ``blocked`` to the queue's DRR election, so a tenant can never
hold more than its cap of the fleet no matter its submit rate.

Reconciliation: every ``_conclude`` (registry increments, record
append, trace absorption) runs under the one lock in completion
order, so live telemetry totals, the record stream, and trace replay
agree exactly even though that order is timing-dependent.  Scheduler-
lock contention is itself measured: each worker's lock-acquisition
wait feeds the ``service.lock.acquires`` / ``service.lock.wait_s``
registry counters (registry only — never the tracer, which must stay
byte-identical in ``workers=1`` replay and deterministic-total in
concurrent runs).

Threads never fork: in process mode all children are spawned before
the first worker thread starts, so no lock can be held across a fork.
"""

from __future__ import annotations

import pickle
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable

import numpy as np

from repro.core.crossbar_solver import CrossbarPDIPSolver
from repro.core.result import FailureReason
from repro.obs.clock import Deadline
from repro.obs.tracer import NOOP, RecordingTracer
from repro.reliability.policy import RecoveryPolicy
from repro.service.service import (
    JobRecord,
    SolverService,
    _failed_result,
    _WorkItem,
    attempt_energy,
)

#: How long a worker sleeps waiting for dispatchable work before
#: rechecking (guards against a missed notify; exits are prompt).
_WAIT_S = 0.05


def _warm_child() -> int:
    """No-op task submitted once per child to force pre-thread forks."""
    return 0


def _remote_attempt(
    problem,
    settings,
    probe,
    seed: int,
    job_id: str,
    group: int,
    kind: str,
    index: int,
    fingerprint: str,
    member_id: int,
    operator_blob: bytes | None,
    trace_iterations: bool,
    deadline_budget_s: float | None,
    initial_state=None,
):
    """One analog attempt, executed inside a worker process.

    Mirrors the in-process attempt exactly: same seed derivation, same
    ``service.job`` span attributes, same RNG call order (operator
    program / adopt, then solve), so for a given ``(job, attempt,
    warm-state)`` the child computes the same result the serial
    scheduler would.  Returns ``(result, trace event dicts, pickled
    operator state or None, cells_written, program_cells, energy_j)``
    — everything the parent needs to install the member and conclude
    the attempt.

    Runs single-threaded in its own process; needs no locks.
    """
    rng = np.random.default_rng(seed)
    recovery = RecoveryPolicy(
        reprograms=0, remaps=0, digital_fallback=None, probe=probe
    )
    job_tracer = RecordingTracer()
    deadline = (
        Deadline(max(deadline_budget_s, 1e-9))
        if deadline_budget_s is not None
        else None
    )
    solver = CrossbarPDIPSolver(
        problem,
        settings,
        rng=rng,
        recovery=recovery,
        tracer=job_tracer,
        deadline=deadline,
    )
    warm = operator_blob is not None
    with job_tracer.span(
        "service.job",
        job_id=job_id,
        group=group,
        kind=kind,
        attempt=index,
        fingerprint=fingerprint,
    ) as span:
        if warm:
            operator = pickle.loads(operator_blob)
            operator.rng = rng
            operator.tracer = job_tracer
            operator.array.rng = rng
            operator.array.tracer = job_tracer
        else:
            operator = CrossbarPDIPSolver(
                problem,
                settings,
                rng=rng,
                recovery=recovery,
                tracer=job_tracer,
            ).build_operator(rng)
        span.set(member=member_id, warm=warm)
        # Placement cost so far (structural program on a cold member,
        # zero on a warm adopt) — everything after this point is
        # per-iteration diagonal rewrites.
        program_cells = int(
            job_tracer.counters.get("crossbar.cells_written", 0.0)
        )
        try:
            result = solver.solve_on(
                operator,
                trace=trace_iterations,
                initial_state=initial_state,
            )
        except Exception as exc:  # noqa: BLE001 - isolation
            result = _failed_result(
                problem,
                f"attempt crashed: {type(exc).__name__}: {exc}",
                FailureReason.SINGULAR_SYSTEM,
            )
        span.set(status=result.status.value)
    cells = int(job_tracer.counters.get("crossbar.cells_written", 0.0))
    energy_j = attempt_energy(result, job_tracer.counters, settings)
    # Detach the child-local tracer before shipping the operator back:
    # the parent re-attaches its own, and the blob stays compact.
    operator.tracer = NOOP
    operator.array.tracer = NOOP
    return (
        result,
        job_tracer.event_dicts(),
        pickle.dumps(operator),
        cells,
        program_cells,
        energy_j,
    )


class ConcurrentDispatcher:
    """Drains a :class:`~repro.service.service.SolverService` with N
    worker threads (see module note for the execution model).

    One-shot: build, call :meth:`run`, discard.  :meth:`run` must be
    called from a single thread (it doubles as the producer); the
    internal worker threads are an implementation detail.  All shared
    state below is guarded by the service lock via ``_cond``.
    """

    def __init__(self, service: SolverService) -> None:
        self.service = service
        config = service.config
        self.workers = config.workers
        self.remote = config.executor == "process"
        self._cond = threading.Condition(service.lock)
        self._inflight: dict[str, int] = {}
        self._inflight_total = 0
        self._records: list[JobRecord] = []
        self._on_record: Callable[[JobRecord], None] | None = None
        self._producing = False
        self._failure: BaseException | None = None
        self._executor: ProcessPoolExecutor | None = None
        self._threads: list[threading.Thread] = []

    def _spawn(self) -> None:
        """Warm the process pool (if any) and start the worker threads.

        Children are forked *before* any worker thread exists, so no
        thread can hold a lock across the fork.  Call once, from the
        coordinating thread.
        """
        if self.remote:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
            for future in [
                self._executor.submit(_warm_child)
                for _ in range(self.workers)
            ]:
                future.result()
        self._threads = [
            threading.Thread(
                target=self._worker,
                name=f"repro-dispatch-{index}",
                daemon=True,
            )
            for index in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()

    def _join(self) -> None:
        """Signal end-of-input, wait for workers, tear down the pool.

        Workers finish everything queued or in flight before exiting
        (an accepted job is never lost).  Call from the coordinating
        thread; rethrows the first worker failure.
        """
        with self._cond:
            self._producing = False
            self._cond.notify_all()
        for thread in self._threads:
            thread.join()
        if self._executor is not None:
            self._executor.shutdown()
        if self._failure is not None:
            raise self._failure

    def run(
        self,
        specs: Iterable | None = None,
        *,
        on_record: Callable[[JobRecord], None] | None = None,
    ) -> list[JobRecord]:
        """Drain the queue (and optionally feed ``specs`` through
        admission backpressure) to completion; returns records in
        completion order.

        Rethrows the first worker failure after all threads stop.
        ``on_record`` fires under the service lock.
        """
        self._on_record = on_record
        self._producing = specs is not None
        self._spawn()
        try:
            if specs is not None:
                self._produce(specs)
        finally:
            self._join()
        return self._records

    def start(
        self,
        *,
        on_record: Callable[[JobRecord], None] | None = None,
    ) -> None:
        """Begin draining continuously (the front-door serving mode).

        Workers run until :meth:`stop`, sleeping while the queue is
        empty and waking on submits from any thread — jobs arrive
        through ``service.submit`` / ``try_submit`` instead of a specs
        iterable.  Pair every ``start`` with exactly one ``stop``.
        """
        self._on_record = on_record
        self._producing = True
        self._spawn()

    def stop(self) -> list[JobRecord]:
        """End continuous draining; returns all completed records.

        Blocks until in-flight and queued jobs finish (an accepted job
        is never lost), then rethrows the first worker failure if any.
        """
        self._join()
        return self._records

    # -- producer ------------------------------------------------------------

    def _produce(self, specs: Iterable) -> None:
        """Admit specs with backpressure: block while the queue is
        full, waking as workers make room (the multi-threaded version
        of serial ``batch``'s complete-then-admit loop)."""
        service = self.service
        for spec in specs:
            with self._cond:
                while True:
                    if self._failure is not None:
                        return
                    if service.try_submit(spec) is not None:
                        self._cond.notify_all()
                        break
                    self._cond.wait(timeout=_WAIT_S)

    # -- workers -------------------------------------------------------------

    def _blocked_tenants(self) -> frozenset:
        """Tenants at their in-flight cap (lock held)."""
        queue = self.service.queue
        blocked = set()
        for tenant, count in self._inflight.items():
            if count <= 0:
                continue
            cap = queue.policy_for(tenant).max_in_flight
            if cap is not None and count >= cap:
                blocked.add(tenant)
        return frozenset(blocked)

    def _note_lock_wait(self, waited_s: float) -> None:
        """Feed one lock-acquisition wait into the telemetry registry
        (lock held; registry-only so traces stay deterministic)."""
        telemetry = self.service.telemetry
        if telemetry is not None:
            telemetry.on_lock_wait(waited_s)

    def _deliver(self, record: JobRecord) -> None:
        """Append a completed record and fire the callback (lock held,
        so completion order and callback order agree)."""
        self._records.append(record)
        if self._on_record is not None:
            self._on_record(record)

    def _worker(self) -> None:
        """One dispatcher thread: dispatch → execute → conclude until
        the queue is dry, nothing is in flight, and the producer is
        done."""
        service = self.service
        try:
            while True:
                item = self._next_item()
                if item is None:
                    return
                if item.remote:
                    self._execute_remote(item)
                else:
                    service._execute(item)
                started = time.perf_counter()
                with self._cond:
                    self._note_lock_wait(time.perf_counter() - started)
                    record = service._conclude(item)
                    tenant = item.pending.tenant
                    self._inflight[tenant] -= 1
                    self._inflight_total -= 1
                    if record is not None:
                        self._deliver(record)
                    self._cond.notify_all()
        except BaseException as exc:  # noqa: BLE001 - propagated by run()
            with self._cond:
                if self._failure is None:
                    self._failure = exc
                self._cond.notify_all()

    def _next_item(self) -> _WorkItem | None:
        """Block until a dispatchable attempt exists; ``None`` means
        shut down (drained, or another worker failed)."""
        service = self.service
        started = time.perf_counter()
        with self._cond:
            self._note_lock_wait(time.perf_counter() - started)
            while True:
                if self._failure is not None:
                    return None
                dispatched = service._dispatch(
                    blocked=self._blocked_tenants(), remote=self.remote
                )
                if dispatched is not None:
                    kind, payload = dispatched
                    if kind == "record":
                        # Completed with no compute (deadline expired
                        # in queue): deliver and keep looking.
                        self._deliver(payload)
                        self._cond.notify_all()
                        continue
                    tenant = payload.pending.tenant
                    self._inflight[tenant] = (
                        self._inflight.get(tenant, 0) + 1
                    )
                    self._inflight_total += 1
                    return payload
                if (
                    not self._producing
                    and self._inflight_total == 0
                    and not service.queue
                ):
                    return None
                self._cond.wait(timeout=_WAIT_S)

    def _execute_remote(self, item: _WorkItem) -> None:
        """Run one reserved attempt in the process pool (lock-free).

        Ships the problem + (for warm placements) the member's pickled
        operator state to :func:`_remote_attempt`, then unpacks the
        outcome into the item for ``_conclude`` to install.  A crashed
        or broken child becomes a failed attempt, never a lost job —
        the retry / fallback ladder handles it like any other failure.
        """
        member = item.member
        if member is None:
            # Reservation found no capacity; _conclude turns this into
            # the NO_CAPACITY path exactly as in serial mode.
            item.events = []
            return
        service = self.service
        spec = item.pending.spec
        blob = (
            pickle.dumps(member.operator)
            if item.warm and member.operator is not None
            else None
        )
        deadline = item.pending.deadline
        budget = deadline.remaining_s() if deadline is not None else None
        try:
            future = self._executor.submit(
                _remote_attempt,
                item.problem,
                item.settings,
                service.config.probe,
                item.seed,
                spec.job_id,
                spec.group,
                spec.kind,
                item.index,
                item.fingerprint,
                member.member_id,
                blob,
                service.config.trace_iterations,
                budget,
                item.initial_state,
            )
            (
                result,
                events,
                operator_blob,
                cells,
                program_cells,
                energy_j,
            ) = future.result()
            operator = (
                pickle.loads(operator_blob)
                if operator_blob is not None
                else None
            )
        except Exception as exc:  # noqa: BLE001 - isolation
            result = _failed_result(
                item.problem,
                f"attempt crashed in worker process: "
                f"{type(exc).__name__}: {exc}",
                FailureReason.SINGULAR_SYSTEM,
            )
            events, operator, cells, program_cells, energy_j = (
                [],
                None,
                0,
                0,
                0.0,
            )
        if service.config.device_latency_s > 0:
            # Emulated array occupancy (see ServiceConfig): the member
            # stays reserved for the modeled hardware settle window.
            time.sleep(service.config.device_latency_s)
        item.result = result
        item.events = events
        item.operator = operator
        item.cells = cells
        item.program_cells = program_cells
        item.energy_j = energy_j
