"""Tiled analog matrix operations across a NoC of crossbar tiles.

:class:`TiledMatrixOperator` is the scale-out counterpart of
:class:`repro.crossbar.ops.AnalogMatrixOperator`: a logical matrix too
large for one array is split over a grid of fixed-size tiles
(Section 3.4, Fig. 3), all programmed with one *shared* conductance
scale so their analog outputs are commensurable.

- **multiply** is exact (up to hardware noise): every tile evaluates
  its block, the partial output currents of each tile row are routed
  through the NoC to that row's aggregation point and summed in
  analog, and the total is converted once.
- **solve** has no single-crossbar analogue across tiles — current
  balance only constrains one array.  It is implemented as
  block-preconditioned Richardson iteration (analog iterative
  refinement): diagonal tiles *solve* their blocks, the full tiled
  *multiply* provides residuals, and the loop repeats until the
  residual is below tolerance.  Each refinement step costs O(1) analog
  time, preserving the pseudo-O(N) character.

Communication costs are accounted per phase through the chosen
:class:`~repro.noc.arbiter.NocTopology` and surfaced via
:attr:`TiledMatrixOperator.noc_latency_s` /
:attr:`~TiledMatrixOperator.noc_energy_j`.
"""

from __future__ import annotations

import numpy as np

from repro.crossbar.array import CrossbarArray
from repro.crossbar.programming import WriteReport
from repro.crossbar.quantization import quantize_auto
from repro.devices.models import HP_TIO2, DeviceParameters
from repro.devices.variation import NoVariation, VariationModel
from repro.exceptions import CrossbarSolveError, MappingError, PartitionError
from repro.noc.arbiter import MeshNoc, NocParameters, NocTopology
from repro.noc.partition import BlockPartition


class TiledMatrixOperator:
    """A large matrix realized on a NoC-coordinated grid of tiles.

    Parameters
    ----------
    matrix:
        Non-negative coefficient matrix, shape (n_out, n_in).
    tile_size:
        Physical crossbar dimension; tiles are ``tile_size**2`` cells.
    params, variation, rng, dac_bits, adc_bits, quantization, g_sense:
        Hardware model, as for
        :class:`~repro.crossbar.ops.AnalogMatrixOperator`.
    scale_headroom:
        Headroom multiplier on the shared conductance scale.
    topology:
        A :class:`NocTopology` instance, or ``None`` for a mesh over
        the partition's grid.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        tile_size: int,
        *,
        params: DeviceParameters = HP_TIO2,
        variation: VariationModel | None = None,
        rng: np.random.Generator | None = None,
        dac_bits: int | None = 8,
        adc_bits: int | None = 8,
        quantization: str = "entry",
        scale_headroom: float = 1.0,
        topology: NocTopology | None = None,
        noc_params: NocParameters | None = None,
        g_sense: float | None = None,
    ) -> None:
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise MappingError("expected a 2-D coefficient matrix")
        if np.any(matrix < 0):
            raise MappingError(
                "matrix contains negative coefficients; eliminate them "
                "first (Eqn. 13)"
            )
        if scale_headroom < 1.0:
            raise ValueError("scale_headroom must be >= 1")
        self.params = params
        self.variation = variation if variation is not None else NoVariation()
        self.rng = rng if rng is not None else np.random.default_rng()
        self.dac_bits = dac_bits
        self.adc_bits = adc_bits
        self.quantization = quantization
        self.scale_headroom = float(scale_headroom)

        self.n_out, self.n_in = matrix.shape
        self._coefficients = matrix.copy()
        self.partition = BlockPartition(self.n_out, self.n_in, tile_size)
        if topology is None:
            topology = MeshNoc(
                self.partition.grid_rows,
                self.partition.grid_cols,
                noc_params,
            )
        self.topology = topology

        a_max = float(matrix.max(initial=0.0))
        if a_max <= 0.0:
            a_max = 1.0
        self.scale = params.g_on / (a_max * self.scale_headroom)

        self._tiles: dict[tuple[int, int], CrossbarArray] = {}
        for r, c in self.partition.tiles():
            block = self.partition.block(matrix, r, c)
            rows_out, cols_in = block.shape
            tile = CrossbarArray(
                cols_in,
                rows_out,
                params=params,
                variation=self.variation,
                g_sense=g_sense,
                rng=self.rng,
            )
            tile.program(self._block_targets(block))
            self._tiles[(r, c)] = tile
        self.noc_latency_s = 0.0
        self.noc_energy_j = 0.0
        self.noc_transfers = 0
        self.multiplies = 0
        self.tile_solves = 0

    def _block_targets(self, block: np.ndarray) -> np.ndarray:
        targets = self.scale * block.T
        return np.where(targets < self.params.g_off, 0.0, targets)

    # -- accounting -----------------------------------------------------------

    @property
    def n_tiles(self) -> int:
        """Number of physical tiles in the grid."""
        return self.partition.n_tiles

    @property
    def write_report(self) -> WriteReport:
        """Accumulated programming cost across all tiles."""
        total = WriteReport(0, 0, 0.0, 0.0)
        for tile in self._tiles.values():
            total = total + tile.total_write_report
        return total

    def _account_row_reduction(self, grid_row: int) -> None:
        sources = [(grid_row, c) for c in range(self.partition.grid_cols)]
        destination = (grid_row, 0)
        report = self.topology.route_reduction(sources, destination)
        self.noc_latency_s += report.latency_s
        self.noc_energy_j += report.energy_j
        self.noc_transfers += report.transfers

    # -- operations -----------------------------------------------------------

    def multiply(self, x: np.ndarray) -> np.ndarray:
        """Tiled analog product ``y ≈ A x`` with NoC reduction."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self.n_in,):
            raise ValueError(
                f"expected vector of shape ({self.n_in},), got {x.shape}"
            )
        peak = float(np.max(np.abs(x)))
        if peak == 0.0:
            return np.zeros(self.n_out)
        s_x = self.params.v_read / peak
        v_in = quantize_auto(x * s_x, self.dac_bits, self.quantization)

        y = np.zeros(self.n_out)
        for r in range(self.partition.grid_rows):
            row_slice = self.partition.row_slice(r)
            currents = np.zeros(row_slice.stop - row_slice.start)
            for c in range(self.partition.grid_cols):
                tile = self._tiles[(r, c)]
                col_slice = self.partition.col_slice(c)
                v_out = tile.multiply(v_in[col_slice])
                currents = currents + v_out * tile.nominal_denominators()
            # One conversion per logical output after analog summation.
            currents = quantize_auto(
                currents, self.adc_bits, self.quantization
            )
            y[row_slice] = currents / (self.scale * s_x)
            self._account_row_reduction(r)
        self.multiplies += 1
        return y

    def solve(
        self,
        b: np.ndarray,
        *,
        tolerance: float = 1e-6,
        max_refinements: int = 200,
        relaxation: float = 1.0,
    ) -> np.ndarray:
        """Block-preconditioned Richardson solve of ``A x = b``.

        Iterates ``x <- x + omega * D^{-1} (b - A x)`` where ``D`` is
        the block-diagonal of A, inverted by the diagonal tiles' analog
        solve mode.  Requires a square logical matrix and square
        diagonal blocks (``n_out == n_in``).

        Raises
        ------
        CrossbarSolveError
            If the matrix is not square, a diagonal tile is singular,
            or the refinement fails to converge within the cap.
        """
        if self.n_out != self.n_in:
            raise CrossbarSolveError(
                "tiled solve requires a square logical matrix"
            )
        if self.partition.grid_rows != self.partition.grid_cols:
            raise CrossbarSolveError("tiled solve requires a square grid")
        b = np.asarray(b, dtype=float)
        if b.shape != (self.n_out,):
            raise ValueError(
                f"expected vector of shape ({self.n_out},), got {b.shape}"
            )
        b_scale = float(np.max(np.abs(b)))
        if b_scale == 0.0:
            return np.zeros(self.n_in)

        # The converters bound the reachable residual: each tiled
        # multiply carries ~2^-bits relative error of its output peak,
        # so demanding less would loop forever at the noise floor.
        bits = [v for v in (self.dac_bits, self.adc_bits) if v is not None]
        noise_floor = 4.0 * 2.0 ** -min(bits) if bits else 0.0
        effective_tolerance = max(tolerance, noise_floor)

        x = np.zeros(self.n_in)
        for _ in range(max_refinements):
            residual = b - self.multiply(x)
            if float(
                np.max(np.abs(residual))
            ) <= effective_tolerance * b_scale:
                return x
            for d in range(self.partition.grid_rows):
                row_slice = self.partition.row_slice(d)
                tile = self._tiles[(d, d)]
                correction = self._diagonal_solve(
                    tile, residual[row_slice]
                )
                x[row_slice] = x[row_slice] + relaxation * correction
        raise CrossbarSolveError(
            f"tiled refinement did not converge in {max_refinements} steps"
        )

    def _diagonal_solve(
        self, tile: CrossbarArray, r: np.ndarray
    ) -> np.ndarray:
        peak = float(np.max(np.abs(r)))
        if peak == 0.0:
            return np.zeros(tile.n_rows)
        s_b = self.params.v_read / peak
        v_out = quantize_auto(r * s_b, self.dac_bits, self.quantization)
        v_in = tile.solve(v_out)
        v_in = quantize_auto(v_in, self.adc_bits, self.quantization)
        self.tile_solves += 1
        return v_in * self.scale / (tile.g_sense * s_b)
