"""Analog NoC topologies: transfer routing and cost accounting.

Fig. 3 of the paper sketches two analog NoC organizations for
coordinating many crossbar tiles:

- **(a) hierarchical** — groups of four tiles under one arbiter, four
  such groups under a higher-level arbiter, recursively (a quad-tree),
  with a centralized controller;
- **(b) mesh** — tiles at the nodes of a 2-D mesh with distributed
  XY routing, "resembl[ing] the mesh network-based NoC structure in
  multi-core systems".

Data stays analog end to end: arbiters are built from analog buffers
and switches [21], so every hop costs one buffer traversal.  The
classes here compute hop counts for tile-to-aggregator transfers and
price them with representative buffer constants; they do not move
payloads themselves (the numerical work happens in
:mod:`repro.noc.multiply`, which asks a topology how expensive its
communication pattern is).
"""

from __future__ import annotations

import abc
import dataclasses


@dataclasses.dataclass(frozen=True)
class NocParameters:
    """Analog-link constants.

    Attributes
    ----------
    hop_latency_s:
        Analog buffer + switch traversal time per hop.
    hop_energy_per_line_j:
        Energy to drive one analog line through one hop.
    lines_per_transfer:
        Parallel analog lines per tile-output transfer (a tile moves a
        vector of up to ``tile_size`` voltages at once).
    """

    hop_latency_s: float = 2e-9
    hop_energy_per_line_j: float = 0.5e-12
    lines_per_transfer: int = 128


@dataclasses.dataclass(frozen=True)
class TransferReport:
    """Cost of one communication phase across the NoC.

    Attributes
    ----------
    transfers:
        Number of tile-output transfers routed.
    total_hops:
        Hop count summed over all transfers.
    critical_path_hops:
        Largest hop count of any single transfer — transfers proceed in
        parallel, so phase latency follows the critical path.
    latency_s / energy_j:
        Priced with :class:`NocParameters`.
    """

    transfers: int
    total_hops: int
    critical_path_hops: int
    latency_s: float
    energy_j: float


class NocTopology(abc.ABC):
    """Interface: hop counts for tile-to-aggregation-point routing."""

    def __init__(
        self,
        grid_rows: int,
        grid_cols: int,
        params: NocParameters | None = None,
    ) -> None:
        if grid_rows < 1 or grid_cols < 1:
            raise ValueError("grid dimensions must be positive")
        self.grid_rows = grid_rows
        self.grid_cols = grid_cols
        self.params = params if params is not None else NocParameters()

    @abc.abstractmethod
    def hops(self, src: tuple[int, int], dst: tuple[int, int]) -> int:
        """Hop count from tile ``src`` to tile/aggregator ``dst``."""

    def route_reduction(
        self, sources: list[tuple[int, int]], destination: tuple[int, int]
    ) -> TransferReport:
        """Cost of gathering all ``sources`` at ``destination``.

        Models a row-reduction phase: each source tile streams its
        partial output vector toward the aggregation point, where the
        analog summing stage combines them.  Transfers are parallel;
        the phase latency is set by the farthest source.
        """
        hop_counts = [self.hops(src, destination) for src in sources]
        total = int(sum(hop_counts))
        critical = int(max(hop_counts, default=0))
        latency = critical * self.params.hop_latency_s
        energy = (
            total
            * self.params.lines_per_transfer
            * self.params.hop_energy_per_line_j
        )
        return TransferReport(
            transfers=len(sources),
            total_hops=total,
            critical_path_hops=critical,
            latency_s=latency,
            energy_j=energy,
        )

    def _check(self, node: tuple[int, int]) -> None:
        r, c = node
        if not (0 <= r < self.grid_rows and 0 <= c < self.grid_cols):
            raise ValueError(
                f"node {node} outside grid "
                f"{self.grid_rows}x{self.grid_cols}"
            )


class MeshNoc(NocTopology):
    """Fig. 3(b): 2-D mesh with dimension-ordered (XY) routing.

    Hop count is the Manhattan distance; the distributed controller of
    a mesh NoC needs no global arbitration, so no extra levels are
    charged.
    """

    def hops(self, src: tuple[int, int], dst: tuple[int, int]) -> int:
        self._check(src)
        self._check(dst)
        return abs(src[0] - dst[0]) + abs(src[1] - dst[1])


class HierarchicalNoc(NocTopology):
    """Fig. 3(a): quad-tree of arbiters over 2x2 tile groups.

    A transfer climbs to the lowest common ancestor of source and
    destination and descends: each level halves the grid coordinates.
    The centralized controller grants one arbiter per level, so hop
    count is twice the LCA depth distance.
    """

    def hops(self, src: tuple[int, int], dst: tuple[int, int]) -> int:
        self._check(src)
        self._check(dst)
        if src == dst:
            return 0
        sr, sc = src
        dr, dc = dst
        levels = 0
        while (sr, sc) != (dr, dc):
            sr //= 2
            sc //= 2
            dr //= 2
            dc //= 2
            levels += 1
        return 2 * levels
