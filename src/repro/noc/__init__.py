"""Analog network-on-chip scale-out for multiple crossbar tiles.

Implements the Section 3.4 / Fig. 3 architecture: block partitioning
of large matrices onto fixed-size tiles, hierarchical (quad-tree) and
mesh topologies with analog arbiters, and tiled multiply/solve
orchestration with communication-cost accounting.
"""

from repro.noc.arbiter import (
    HierarchicalNoc,
    MeshNoc,
    NocParameters,
    NocTopology,
    TransferReport,
)
from repro.noc.multiply import TiledMatrixOperator
from repro.noc.partition import BlockPartition

__all__ = [
    "BlockPartition",
    "NocParameters",
    "NocTopology",
    "MeshNoc",
    "HierarchicalNoc",
    "TransferReport",
    "TiledMatrixOperator",
]
