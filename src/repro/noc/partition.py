"""Block partitioning of large matrices onto fixed-size crossbar tiles.

A single memristor crossbar has a manufacturing-limited size
(Section 3.4 cites [20]); matrices beyond it must be split into a grid
of tiles.  :class:`BlockPartition` owns the geometry: a logical
``(n_out, n_in)`` matrix is covered by ``grid_rows x grid_cols`` tiles
of ``tile_size x tile_size`` cells (edge tiles are partially
populated; the unused crosspoints stay in the OFF state).

Tile (r, c) covers coefficient rows
``r*tile_size : min((r+1)*tile_size, n_out)`` and columns likewise —
note *coefficient* rows map to crossbar bit-lines, so one tile's
word-lines carry a slice of the input vector and its bit-lines a slice
of the output.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.exceptions import PartitionError


@dataclasses.dataclass(frozen=True)
class BlockPartition:
    """Geometry of a tiled matrix.

    Attributes
    ----------
    n_out, n_in:
        Logical matrix shape.
    tile_size:
        Physical tile dimension (square tiles).
    """

    n_out: int
    n_in: int
    tile_size: int

    def __post_init__(self) -> None:
        if self.n_out < 1 or self.n_in < 1:
            raise PartitionError("matrix dimensions must be positive")
        if self.tile_size < 1:
            raise PartitionError("tile_size must be positive")

    @property
    def grid_rows(self) -> int:
        """Tile-grid rows (over logical output rows)."""
        return -(-self.n_out // self.tile_size)

    @property
    def grid_cols(self) -> int:
        """Tile-grid columns (over logical input columns)."""
        return -(-self.n_in // self.tile_size)

    @property
    def n_tiles(self) -> int:
        """Total number of tiles in the grid."""
        return self.grid_rows * self.grid_cols

    def row_slice(self, grid_row: int) -> slice:
        """Logical output rows covered by tile-grid row ``grid_row``."""
        self._check(grid_row, self.grid_rows, "grid_row")
        start = grid_row * self.tile_size
        return slice(start, min(start + self.tile_size, self.n_out))

    def col_slice(self, grid_col: int) -> slice:
        """Logical input columns covered by tile-grid col ``grid_col``."""
        self._check(grid_col, self.grid_cols, "grid_col")
        start = grid_col * self.tile_size
        return slice(start, min(start + self.tile_size, self.n_in))

    def block(self, matrix: np.ndarray, grid_row: int, grid_col: int
              ) -> np.ndarray:
        """Extract the coefficient block for tile ``(grid_row, grid_col)``."""
        matrix = np.asarray(matrix, dtype=float)
        if matrix.shape != (self.n_out, self.n_in):
            raise PartitionError(
                f"matrix shape {matrix.shape} does not match partition "
                f"({self.n_out}, {self.n_in})"
            )
        return matrix[self.row_slice(grid_row), self.col_slice(grid_col)]

    def tiles(self) -> list[tuple[int, int]]:
        """All (grid_row, grid_col) coordinates, row-major."""
        return [
            (r, c)
            for r in range(self.grid_rows)
            for c in range(self.grid_cols)
        ]

    @staticmethod
    def _check(index: int, bound: int, label: str) -> None:
        if not 0 <= index < bound:
            raise PartitionError(f"{label} {index} out of range [0, {bound})")
