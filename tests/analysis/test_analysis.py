"""Tests for metrics and table rendering."""

import pytest

from repro.analysis import (
    SampleStats,
    format_cell,
    relative_error,
    render_table,
)


class TestRelativeError:
    def test_basic(self):
        assert relative_error(11.0, 10.0) == pytest.approx(1.0 / 11.0)

    def test_symmetric_sign(self):
        assert relative_error(9.0, 10.0) == pytest.approx(1.0 / 11.0)

    def test_zero_reference_guarded(self):
        # A zero optimum must not explode the statistic.
        assert relative_error(0.01, 0.0) == pytest.approx(0.01)

    def test_exact_match(self):
        assert relative_error(5.0, 5.0) == 0.0


class TestSampleStats:
    def test_moments(self):
        stats = SampleStats.from_samples([1.0, 2.0, 3.0])
        assert stats.count == 3
        assert stats.mean == pytest.approx(2.0)
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.std == pytest.approx((2.0 / 3.0) ** 0.5)

    def test_empty(self):
        stats = SampleStats.from_samples([])
        assert stats.count == 0
        assert stats.mean == 0.0


class TestRenderTable:
    def test_alignment_and_rule(self):
        text = render_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", " "}
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="width"):
            render_table(["a"], [[1, 2]])

    def test_empty_rows_ok(self):
        text = render_table(["a"], [])
        assert "a" in text

    def test_no_columns_rejected(self):
        with pytest.raises(ValueError):
            render_table([], [])


class TestFormatCell:
    def test_float_formats(self):
        assert format_cell(0.0) == "0"
        assert "e" in format_cell(1.23e-7)
        assert format_cell(3.14159) == "3.142"

    def test_non_floats_passthrough(self):
        assert format_cell(7) == "7"
        assert format_cell("x") == "x"
        assert format_cell(True) == "True"
