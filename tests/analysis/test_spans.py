"""Tests for trace replay and counter reconciliation."""

import numpy as np
import pytest

from repro.analysis import (
    reconcile_with_counters,
    render_reconciliation,
    render_span_summary,
    replay_counters,
    replay_gauges,
    span_totals,
)
from repro.core.crossbar_solver import CrossbarPDIPSolver
from repro.core.reference_pdip import solve_reference
from repro.core.result import SolveStatus
from repro.obs import RecordingTracer
from repro.workloads import random_feasible_lp


def _span(name, span_id, parent_id=None, duration=1.0):
    return {
        "kind": "span",
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "start_s": 0.0,
        "duration_s": duration,
        "attrs": {},
    }


def _count(name, value, span_id):
    return {
        "kind": "count",
        "name": name,
        "value": value,
        "t_s": 0.0,
        "span_id": span_id,
    }


#: Two attempts: counts in the first must not leak into a replay
#: scoped to the last one.
TWO_ATTEMPTS = [
    _count("analog.multiplies", 3.0, span_id=2),
    _span("iteration", 2, parent_id=1),
    _span("attempt", 1, duration=2.0),
    _count("analog.multiplies", 5.0, span_id=4),
    _span("iteration", 4, parent_id=3),
    _span("attempt", 3, duration=2.0),
    _count("outside.any.span", 1.0, span_id=None),
]


class TestReplay:
    def test_span_totals_accumulate_calls_and_seconds(self):
        totals = span_totals(TWO_ATTEMPTS)
        assert totals["attempt"] == (2, 4.0)
        assert totals["iteration"] == (2, 2.0)

    def test_unscoped_replay_sums_everything(self):
        totals = replay_counters(TWO_ATTEMPTS)
        assert totals["analog.multiplies"] == 8.0
        assert totals["outside.any.span"] == 1.0

    def test_scoped_replay_uses_last_attempt_subtree(self):
        totals = replay_counters(TWO_ATTEMPTS, within="attempt")
        assert totals["analog.multiplies"] == 5.0
        assert "outside.any.span" not in totals

    def test_scoping_to_missing_span_errors(self):
        with pytest.raises(ValueError, match="no span named"):
            replay_counters(TWO_ATTEMPTS, within="nonexistent")

    def test_gauge_replay_last_wins(self):
        events = [
            {"kind": "gauge", "name": "g", "value": 1.0, "t_s": 0.0,
             "span_id": None},
            {"kind": "gauge", "name": "g", "value": 7.0, "t_s": 1.0,
             "span_id": None},
        ]
        assert replay_gauges(events) == {"g": 7.0}

    def test_render_span_summary_sorted_by_seconds(self):
        table = render_span_summary(TWO_ATTEMPTS)
        lines = table.splitlines()
        assert "span" in lines[0]
        assert lines[2].split()[0] == "attempt"  # 4.0 s before 2.0 s


class TestReconciliation:
    @pytest.fixture(scope="class")
    def traced_solve(self):
        problem = random_feasible_lp(16, rng=np.random.default_rng(11))
        tracer = RecordingTracer()
        solver = CrossbarPDIPSolver(
            problem, rng=np.random.default_rng(5), tracer=tracer
        )
        result = solver.solve()
        assert result.status is SolveStatus.OPTIMAL
        return tracer, result

    def test_live_solve_reconciles_exactly(self, traced_solve):
        tracer, result = traced_solve
        rows = reconcile_with_counters(tracer.event_dicts(), result)
        assert [row.name for row in rows if not row.matches] == []
        names = {row.name for row in rows}
        assert "analog.multiplies" in names
        assert "solver.iterations" in names

    def test_render_marks_matches(self, traced_solve):
        tracer, result = traced_solve
        rows = reconcile_with_counters(tracer.event_dicts(), result)
        table = render_reconciliation(rows)
        assert "yes" in table
        assert "NO" not in table

    def test_mismatch_detected(self, traced_solve):
        tracer, result = traced_solve
        events = [
            e
            for e in tracer.event_dicts()
            if not (e["kind"] == "count" and e["name"] == "analog.solves")
        ]
        rows = reconcile_with_counters(events, result)
        bad = {row.name for row in rows if not row.matches}
        assert bad == {"analog.solves"}

    def test_software_result_rejected(self):
        problem = random_feasible_lp(8, rng=np.random.default_rng(0))
        result = solve_reference(problem)
        with pytest.raises(ValueError, match="no crossbar counters"):
            reconcile_with_counters([], result)
