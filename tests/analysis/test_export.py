"""Tests for experiment-row export."""

import csv
import json

import pytest

from repro.analysis import rows_to_records, write_csv, write_json
from repro.experiments import SweepConfig, accuracy_sweep

TINY = SweepConfig(sizes=(8,), variations=(0,), trials=1)


@pytest.fixture(scope="module")
def rows():
    return accuracy_sweep("reference", TINY)


class TestFlatten:
    def test_nested_stats_become_dotted_columns(self, rows):
        records = rows_to_records(rows)
        assert len(records) == 1
        record = records[0]
        assert record["constraints"] == 8
        assert "error.mean" in record
        assert "iterations.count" in record

    def test_rejects_non_dataclass(self):
        with pytest.raises(TypeError, match="dataclass"):
            rows_to_records([{"a": 1}])


class TestWriters:
    def test_csv_roundtrip(self, rows, tmp_path):
        path = write_csv(rows, tmp_path / "fig5.csv")
        with path.open() as handle:
            loaded = list(csv.DictReader(handle))
        assert len(loaded) == 1
        assert loaded[0]["solver"] == "reference"
        assert float(loaded[0]["error.mean"]) < 1e-3

    def test_json_roundtrip(self, rows, tmp_path):
        path = write_json(rows, tmp_path / "fig5.json")
        loaded = json.loads(path.read_text())
        assert loaded[0]["constraints"] == 8

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no rows"):
            write_csv([], tmp_path / "empty.csv")
