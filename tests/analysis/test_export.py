"""Tests for experiment-row export."""

import csv
import json

import numpy as np
import pytest

from repro.analysis import (
    attempt_records,
    rows_to_records,
    write_csv,
    write_json,
)
from repro.core.result import (
    FailureReason,
    SolverResult,
    SolveStatus,
    with_attempts,
)
from repro.experiments import SweepConfig, accuracy_sweep
from repro.reliability import AttemptRecord, ProbeReport, RecoveryAction

TINY = SweepConfig(sizes=(8,), variations=(0,), trials=1)


@pytest.fixture(scope="module")
def rows():
    return accuracy_sweep("reference", TINY)


class TestFlatten:
    def test_nested_stats_become_dotted_columns(self, rows):
        records = rows_to_records(rows)
        assert len(records) == 1
        record = records[0]
        assert record["constraints"] == 8
        assert "error.mean" in record
        assert "iterations.count" in record

    def test_accepts_plain_dict_rows(self):
        records = rows_to_records([{"a": 1, "stats": {"mean": 2.0}}])
        assert records == [{"a": 1, "stats.mean": 2.0}]

    def test_rejects_non_dataclass_non_dict(self):
        with pytest.raises(TypeError, match="dataclass"):
            rows_to_records([("a", 1)])

    def test_colliding_flattened_keys_error(self):
        with pytest.raises(ValueError, match="colliding"):
            rows_to_records([{"probe": {"label": 1}, "probe.label": 2}])
        with pytest.raises(ValueError, match="colliding"):
            rows_to_records([{"probe.label": 2, "probe": {"label": 1}}])


class TestWriters:
    def test_csv_roundtrip(self, rows, tmp_path):
        path = write_csv(rows, tmp_path / "fig5.csv")
        with path.open() as handle:
            loaded = list(csv.DictReader(handle))
        assert len(loaded) == 1
        assert loaded[0]["solver"] == "reference"
        assert float(loaded[0]["error.mean"]) < 1e-3

    def test_json_roundtrip(self, rows, tmp_path):
        path = write_json(rows, tmp_path / "fig5.json")
        loaded = json.loads(path.read_text())
        assert loaded[0]["constraints"] == 8

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no rows"):
            write_csv([], tmp_path / "empty.csv")


class TestAttemptRecords:
    """Round-trip the recovery-attempt history through the writers."""

    @pytest.fixture(scope="class")
    def records(self):
        probe = ProbeReport(
            max_rel_error=0.4,
            tolerance=0.05,
            vectors=2,
            healthy=False,
            label="M",
        )
        rejected = AttemptRecord(
            index=0,
            action=RecoveryAction.INITIAL,
            status=SolveStatus.NUMERICAL_FAILURE,
            failure_reason=FailureReason.PROBE_UNHEALTHY,
            iterations=0,
            seed=42,
            message="health probe rejected array 'M'",
            probe=probe,
        )
        recovered = AttemptRecord(
            index=1,
            action=RecoveryAction.REPROGRAM,
            status=SolveStatus.OPTIMAL,
            failure_reason=FailureReason.NONE,
            iterations=17,
            seed=43,
            verify_repulsed=3,
        )
        result = SolverResult(
            status=SolveStatus.OPTIMAL,
            x=np.zeros(2),
            y=np.zeros(2),
            w=np.zeros(2),
            z=np.zeros(2),
            objective=1.0,
            iterations=17,
        )
        return attempt_records(
            with_attempts(result, (rejected, recovered))
        )

    def test_enums_and_probe_flattened(self, records):
        assert len(records) == 2
        rejected, recovered = records
        assert rejected["action"] == "initial"
        assert rejected["failure_reason"] == "probe_unhealthy"
        assert rejected["iterations"] == 0
        assert rejected["probe.healthy"] is False
        assert rejected["probe.label"] == "M"
        # The recovered attempt ran without a probe.
        assert recovered["action"] == "reprogram"
        assert recovered["probe"] is None
        assert recovered["verify_repulsed"] == 3

    def test_json_roundtrip(self, records, tmp_path):
        path = write_json(records, tmp_path / "attempts.json")
        loaded = json.loads(path.read_text())
        assert loaded == records

    def test_csv_union_header_fills_missing_cells(self, records, tmp_path):
        path = write_csv(records, tmp_path / "attempts.csv")
        with path.open() as handle:
            reader = csv.DictReader(handle)
            rows = list(reader)
        # The probe-rejected attempt contributes probe.* columns the
        # recovered attempt lacks; both rows share the union header.
        assert "probe.max_rel_error" in reader.fieldnames
        assert rows[0]["probe.label"] == "M"
        assert rows[0]["iterations"] == "0"
        assert rows[1]["iterations"] == "17"
        assert rows[1]["probe.max_rel_error"] == ""
